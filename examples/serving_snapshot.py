"""A persistent matching service: snapshot → restart → warm-start → evolve.

A long-lived matching process should not pay cold-start costs — substrate
builds, full repository sweeps — every time it restarts, and should keep
serving (identical!) answers while its repository evolves.  This example
walks the serving subsystem end to end:

1. start a :class:`MatchingService` cold, serve the workload's queries
   as concurrent async requests (micro-batched under the hood),
2. checkpoint the full state — repository, similarity substrate,
   retained pair results — to a snapshot directory,
3. "restart": build a fresh objective/matcher (as a new process would)
   and warm-start a second service from the snapshot alone,
4. verify the warm service answers every retained query from state,
   without running a single search, byte-identically to the cold run,
5. apply a live churn delta to the running service and verify the
   re-served answers against an offline cold re-match.

Run:  python examples/serving_snapshot.py
"""

import asyncio
import tempfile
from time import perf_counter

from repro.evaluation import build_workload
from repro.evaluation.workloads import small_config
from repro.matching import ExhaustiveMatcher, MatchingService, canonical_answers
from repro.schema import churn_delta

#: δmax for every request; 0.3 keeps the demo quick
DELTA_MAX = 0.3

#: the one shared definition of "byte-identical answers"
canonical = canonical_answers


async def demo(snapshot_dir: str) -> None:
    # 1. Cold service: first requests pay for the matching.
    workload = build_workload(small_config())
    queries = [scenario.query for scenario in workload.suite.scenarios]
    service = MatchingService(
        ExhaustiveMatcher(workload.objective), DELTA_MAX,
        store=snapshot_dir, cache=False,
    )
    started = perf_counter()
    await service.start(workload.repository)
    baseline = await asyncio.gather(*[service.match(q) for q in queries])
    cold_seconds = perf_counter() - started
    print(
        f"cold start + first wave: {cold_seconds:.3f}s "
        f"({service.stats.batched_queries} queries matched in "
        f"{service.stats.batches} micro-batches)"
    )

    # 2. Checkpoint everything to disk.
    await service.checkpoint()
    await service.stop()
    print(f"checkpoint written to {snapshot_dir}")

    # 3. "Restart": a fresh universe, warm-started from the snapshot.
    fresh = build_workload(small_config())  # deterministic ⇒ same objective
    restarted = MatchingService(
        ExhaustiveMatcher(fresh.objective), DELTA_MAX,
        store=snapshot_dir, cache=False,
    )
    started = perf_counter()
    await restarted.start()          # no repository argument: all from disk
    warm = await asyncio.gather(*[restarted.match(q) for q in queries])
    warm_seconds = perf_counter() - started
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")

    # 4. Warm answers come from retained state — zero searches — and are
    #    byte-identical to the cold run's.
    stats = restarted.stats
    assert stats.warm_start and stats.served_from_state == len(queries)
    assert stats.batched_queries == 0, "warm start must not re-match!"
    assert canonical(warm) == canonical(baseline), "warm answers diverged!"
    print(
        f"warm start + same wave: {warm_seconds:.3f}s (~{speedup:.0f}x; "
        f"{stats.matrices_restored} score matrices restored, "
        f"{stats.served_from_state}/{len(queries)} answers from state)"
    )

    # 5. Evolve the repository live; serving continues, still identical
    #    to the offline path.
    delta = churn_delta(restarted.repository, churn=0.25, seed=11)
    report = await restarted.apply_delta(delta)
    evolved = await asyncio.gather(*[restarted.match(q) for q in queries])
    offline = restarted.matcher.batch_match(
        queries, restarted.repository, DELTA_MAX, cache=False
    )
    assert canonical(evolved) == canonical(offline), "served ≠ offline!"
    await restarted.stop()
    print(
        f"live delta ({report.summary()}): served answers verified "
        "byte-identical to the offline batch_match path"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        asyncio.run(demo(f"{tmp}/snapshot"))


if __name__ == "__main__":
    main()

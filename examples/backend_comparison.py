"""The similarity backends head to head, profile by profile.

The objective's name plane is pluggable: next to the established
lexical blend, the registry carries BM25 (``bm25``), hashed dense
vectors (``dense``) and a weighted blend (``ensemble``) as matcher
variants.  None dominates — which backend wins depends on *how* a
personal schema's vocabulary drifts from the repository's.  This study
makes that concrete:

1. build one repository, then derive a query suite per
   vocabulary-mutation profile (synonym-heavy, typo-heavy, ...);
2. run every backend family on every suite and score it against the
   oracle (micro-averaged P/R/F1 at the final threshold);
3. check the paper's bounds *inside* each family — a beam improvement
   against the family's own exhaustive baseline.  Backends are compared
   by the oracle only; the bounds technique never crosses objectives.

Run:  python examples/backend_comparison.py
"""

import os

from repro.evaluation import build_workload, run_system, validate_improvement
from repro.evaluation.scenario import build_scenarios
from repro.evaluation.workloads import small_config
from repro.matching import BeamMatcher, ExhaustiveMatcher, make_matcher
from repro.schema.mutations import MutationConfig
from repro.util.tables import format_table

#: each profile stresses one way query labels drift from their sources
PROFILES = [
    ("default", MutationConfig()),
    ("synonym-heavy", MutationConfig(synonym_probability=0.9, typo_probability=0.02)),
    ("typo-heavy", MutationConfig(synonym_probability=0.2, typo_probability=0.4)),
    ("abbrev-heavy", MutationConfig(synonym_probability=0.2, abbreviation_probability=0.7)),
]

#: registry names; "exhaustive" is the lexical default backend
FAMILIES = ["exhaustive", "bm25", "dense", "ensemble"]

BEAM_WIDTH = 8


def label(family: str) -> str:
    return "lexical" if family == "exhaustive" else family


def main() -> None:
    smoke = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))
    profiles = PROFILES[:2] if smoke else PROFILES
    num_queries = 3 if smoke else 6

    workload = build_workload(small_config())
    print(
        f"{len(workload.repository)} schemas, {num_queries} queries per "
        f"profile, final δ = {workload.schedule.final}\n"
    )

    winners = []
    for profile_name, mutation in profiles:
        suite = build_scenarios(
            workload.repository,
            num_queries=num_queries,
            seed=23,
            mutation=mutation,
        )
        rows = []
        for family in FAMILIES:
            matcher = make_matcher(family, workload.objective)
            run = run_system(matcher, suite, workload.schedule)
            counts = run.profile.final_counts()
            precision = counts.correct / counts.answers if counts.answers else 0.0
            recall = counts.correct / suite.relevant_size
            f1 = (
                2 * precision * recall / (precision + recall)
                if precision + recall
                else 0.0
            )
            rows.append((label(family), counts.answers, precision, recall, f1))
        rows.sort(key=lambda row: row[4], reverse=True)
        winners.append((profile_name, rows[0][0]))
        print(
            format_table(
                ["backend", "|A|", "P", "R", "F1"],
                rows,
                title=f"profile {profile_name!r} (|H| = {suite.relevant_size})",
            )
        )
        print()

    for profile_name, winner in winners:
        print(f"winner on {profile_name!r}: {winner}")
    print()

    # the bounds hold inside every backend family: same objective, so a
    # beam search's answers are a subset of that family's exhaustive run
    rows = []
    for family in FAMILIES:
        objective = make_matcher(family, workload.objective).objective
        original = run_system(
            ExhaustiveMatcher(objective), workload.suite, workload.schedule
        )
        improved = run_system(
            BeamMatcher(objective, beam_width=BEAM_WIDTH),
            workload.suite,
            workload.schedule,
        )
        validation = validate_improvement(original, improved)
        final = validation.bounds[len(validation.bounds) - 1]
        rows.append(
            (
                label(family),
                final.original.answers,
                final.improved_answers,
                float(final.worst.precision_or(0)),
                float(final.best.precision_or(1)),
                "yes" if validation.sound else "NO",
            )
        )
        assert validation.sound
    print(
        format_table(
            ["family", "|A1|", "|A2|", "worst P", "best P", "sound"],
            rows,
            title=f"per-family bounds (beam width {BEAM_WIDTH} vs own baseline)",
        )
    )


if __name__ == "__main__":
    main()

"""Bounding an improvement of a system you only know from the literature.

Section 4.1's scenario: the original system is *not available* — all you
have is its published 11-point P/R curve.  You rebuild the system from
its published objective function ("a reconstruction with the same
objective function exactly copies its behavior"), guess |H|, and the
interpolated curve turns back into the measured-style profile the bound
machinery needs.

We simulate the situation faithfully: the "published" curve is the
11-point interpolation of a run whose counts we then throw away; the
"rebuilt" system is the same exhaustive matcher.  The analysis then
bounds a clustering improvement using three different |H| guesses and
shows the guarantees barely move — the paper's "a rough estimate
suffices" suspicion.

Run:  python examples/published_curve_analysis.py
"""

from fractions import Fraction

from repro.core.incremental import SizeProfile, compute_incremental_bounds
from repro.core.bands import EffectivenessBand
from repro.evaluation import build_workload, run_system
from repro.evaluation.workloads import small_config
from repro.experiments.figure12_interpolated_input import (
    recover_profile_from_curve,
    trimmed_interpolated_curve,
)
from repro.matching import ClusteringMatcher, ExhaustiveMatcher
from repro.util.tables import format_table


def main() -> None:
    workload = build_workload(small_config())

    # The world we pretend not to know: a judged run of the original.
    hidden_run = run_system(
        ExhaustiveMatcher(workload.objective), workload.suite, workload.schedule
    )
    published_curve = trimmed_interpolated_curve(hidden_run.profile)
    print("published 11-point curve (all we are given):")
    print(
        format_table(
            ["recall level", "precision"],
            [(float(p.recall), float(p.precision)) for p in published_curve],
        )
    )
    true_relevant = workload.relevant_size
    print(f"\n(true |H| = {true_relevant}, unknown to the analyst)\n")

    # The rebuilt original system and the improvement under study.
    rebuilt_answers = hidden_run.answers  # same objective => same behaviour
    improvement = run_system(
        ClusteringMatcher(workload.objective, clusters_per_element=2),
        workload.suite,
        workload.schedule,
    )

    rows = []
    for guess in (true_relevant // 2, true_relevant, true_relevant * 2):
        profile, _clamped = recover_profile_from_curve(
            published_curve, guess, rebuilt_answers
        )
        sizes = []
        for delta, counts in zip(profile.schedule, profile.counts):
            size = min(improvement.answers.size_at(delta), counts.answers)
            sizes.append(max(size, sizes[-1] if sizes else 0))
        bounds = compute_incremental_bounds(
            profile, SizeProfile(profile.schedule, tuple(sizes))
        )
        band = EffectivenessBand(bounds)
        final = bounds[len(bounds) - 1]
        rows.append(
            (
                guess,
                float(band.mean_precision_width()),
                float(final.worst.precision_or(Fraction(0))),
                float(final.best.precision_or(Fraction(1))),
                float(band.guaranteed_recall_at_precision(0.5)),
            )
        )
    print(
        format_table(
            [
                "|H| guess",
                "mean P width",
                "P worst (final)",
                "P best (final)",
                "recall@P>=0.5",
            ],
            rows,
            title="Bounds for the clustering improvement under three |H| guesses",
        )
    )
    print(
        "\nnote: recall-axis guarantees scale with the guess, but the "
        "precision bounds and the shape of the band are stable — a rough "
        "|H| estimate suffices for the efficiency/effectiveness reading."
    )


if __name__ == "__main__":
    main()

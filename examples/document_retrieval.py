"""The bounds technique outside schema matching: a document retriever.

The paper closes its abstract with "we believe it to be more generically
applicable in other retrieval systems facing scalability problems", and
section 2.1 notes search-space elements "can in fact be anything such as
images, documents, etc.".  This example exercises :mod:`repro.core` with
no schema substrate at all: a tiny simulated document retrieval engine
(items are document ids, the score is a dissimilarity) and an early-
termination "improvement" that stops scanning each posting list after a
budget.

The flow is identical to the schema case — judged original profile,
improved sizes, incremental bounds — demonstrating the core layer's
domain independence.

Run:  python examples/document_retrieval.py
"""

from repro.core import (
    AnswerSet,
    EffectivenessBand,
    SizeProfile,
    SystemProfile,
    ThresholdSchedule,
    compute_incremental_bounds,
)
from repro.core.report import render_band_plot, render_bounds_table
from repro.util import rng as rng_util

NUM_DOCUMENTS = 4000
NUM_RELEVANT = 120
SCAN_BUDGET = 1500  # the improvement stops after this many candidates


def build_corpus(seed: int = 42):
    """Scores for every document; relevant ones score better on average.

    Dissimilarity of relevant documents ~ centred low, irrelevant ~ high;
    overlap makes the retrieval imperfect, like a real ranking function.
    """
    generator = rng_util.make_tagged(seed)
    scored: list[tuple[str, float]] = []
    relevant: set[str] = set()
    for i in range(NUM_DOCUMENTS):
        doc = f"doc-{i:05d}"
        if i < NUM_RELEVANT:
            relevant.add(doc)
            score = min(1.0, max(0.0, generator.gauss(0.25, 0.15)))
        else:
            score = min(1.0, max(0.0, generator.gauss(0.65, 0.18)))
        scored.append((doc, round(score, 6)))
    return scored, relevant


def main() -> None:
    scored, relevant = build_corpus()
    original = AnswerSet.from_pairs(scored)

    # The "improvement": scan documents in storage order, keep what fits
    # the budget — everything it returns the original also returns, with
    # the same score (same ranking function), so the subset property holds.
    generator = rng_util.make_tagged(7)
    storage_order = list(scored)
    generator.shuffle(storage_order)
    improved = AnswerSet.from_pairs(storage_order[:SCAN_BUDGET])
    improved.check_subset_of(original, "budgeted scan")

    schedule = ThresholdSchedule.linear(0.1, 0.9, 9)
    profile = SystemProfile.from_answer_set(schedule, original, relevant)
    sizes = SizeProfile.from_answer_set(schedule, improved)
    bounds = compute_incremental_bounds(profile, sizes)
    band = EffectivenessBand(bounds)

    print(
        f"corpus: {NUM_DOCUMENTS} documents, {NUM_RELEVANT} relevant; "
        f"improvement scans {SCAN_BUDGET}"
    )
    print()
    print(render_bounds_table(bounds, title="Budgeted-scan retriever"))
    print()
    print(render_band_plot(band, title="Document retrieval band"))
    print()
    # The budgeted scan picks uniformly at random w.r.t. relevance, so its
    # true behaviour should hug the random curve — verify with the oracle.
    actual = SystemProfile.from_answer_set(schedule, improved, relevant)
    report = band.check_containment(actual)
    print(report)
    random_curve = band.random_curve()
    actual_curve = actual.pr_curve()
    drift = max(
        abs(float(r.precision) - float(a.precision))
        for r, a in zip(random_curve, actual_curve)
    )
    print(
        f"max |P_actual - P_random| = {drift:.4f} (a uniformly random "
        "subset behaves like the section 3.4 random system, as expected)"
    )


if __name__ == "__main__":
    main()

"""Quickstart: effectiveness bounds for one improvement, end to end.

Walks the whole pipeline on a small workload:

1. generate a synthetic schema repository + personal-schema queries,
2. run the exhaustive matcher S1 and judge it (the one judged run the
   technique requires),
3. run a beam-search improvement S2 and record *only its answer sizes*,
4. compute guaranteed best/worst-case P/R bounds for S2,
5. (testbed bonus) judge S2 for real and confirm the truth sits inside.

Run:  python examples/quickstart.py
"""

from repro.core.report import (
    render_band_plot,
    render_bounds_table,
    render_containment,
    summarize_guarantees,
)
from repro.evaluation import (
    build_workload,
    run_system,
    small_config,
    validate_improvement,
)
from repro.matching import BeamMatcher, ExhaustiveMatcher


def main() -> None:
    # 1. Workload: repository, queries, oracle ground truth, objective.
    workload = build_workload(small_config())
    print(
        f"workload: {len(workload.repository)} schemas, "
        f"{len(workload.suite)} queries, |H| = {workload.relevant_size}"
    )

    # 2. The original, exhaustive system S1 (judged once).
    original = run_system(
        ExhaustiveMatcher(workload.objective), workload.suite, workload.schedule
    )
    print(f"S1 answers at final threshold: {len(original.answers)}")

    # 3. The improvement: same objective, beam-limited search.
    improved = run_system(
        BeamMatcher(workload.objective, beam_width=8),
        workload.suite,
        workload.schedule,
    )
    print(f"S2 answers at final threshold: {len(improved.answers)}")

    # 4. Bounds from sizes alone — no judgment of S2 involved.
    validation = validate_improvement(original, improved)
    print()
    print(render_bounds_table(validation.bounds, title="S2 bounds"))
    print()
    print(render_band_plot(validation.band, title="Best/worst/random band"))
    print()
    print(summarize_guarantees(validation.band))

    # 5. Synthetic-testbed bonus: verify the truth lies inside the band.
    print()
    print(render_containment(validation.containment))


if __name__ == "__main__":
    main()

"""Tuning a non-exhaustive matcher with bounds instead of judgments.

The paper's motivating use case: "get an impression on the
efficiency-effectiveness trade-off in an automated way allowing quick
evaluation of many different parameter settings and matching system
improvements".  Here we tune the clustering matcher's aggressiveness.

The only human-cost input is ONE judged run of the exhaustive system.
Every candidate configuration is then evaluated purely from its answer
sizes: we ask each for its guaranteed worst-case precision at a target
recall floor and pick the cheapest configuration whose guarantee holds.

Run:  python examples/clustering_tradeoff.py
"""

from fractions import Fraction

from repro.core.relative import relative_bounds
from repro.evaluation import build_workload, run_system, validate_improvement
from repro.evaluation.workloads import small_config
from repro.matching import ClusteringMatcher, ExhaustiveMatcher
from repro.util.tables import format_table

#: the guarantee we shop for: recall of at least this, in the worst case
TARGET_RECALL = 0.10


def main() -> None:
    workload = build_workload(small_config())
    original = run_system(
        ExhaustiveMatcher(workload.objective), workload.suite, workload.schedule
    )
    print(
        f"one judged S1 run: {len(original.answers)} answers, "
        f"|H| = {workload.relevant_size}\n"
    )

    rows = []
    winners = []
    for clusters_per_element in (1, 2, 3, 4, 5):
        matcher = ClusteringMatcher(
            workload.objective, clusters_per_element=clusters_per_element
        )
        improved = run_system(matcher, workload.suite, workload.schedule)
        validation = validate_improvement(original, improved)

        guaranteed_p = validation.band.guaranteed_precision_at_recall(
            TARGET_RECALL
        )
        relative = relative_bounds(validation.bounds)[-1]
        max_loss = relative.max_recall_loss
        rows.append(
            (
                clusters_per_element,
                len(improved.answers),
                float(validation.ratio.mean_ratio()),
                "-" if guaranteed_p is None else f"{float(guaranteed_p):.3f}",
                "-" if max_loss is None else f"{float(max_loss):.1%}",
            )
        )
        if guaranteed_p is not None and guaranteed_p >= Fraction(1, 2):
            winners.append((clusters_per_element, len(improved.answers)))

    print(
        format_table(
            [
                "clusters/elem",
                "|A2| final",
                "mean ratio",
                f"guaranteed P @ R>={TARGET_RECALL}",
                "max |T| loss",
            ],
            rows,
            title="Trade-off table (no judgment of any candidate needed)",
        )
    )
    print()
    if winners:
        best = min(winners, key=lambda w: w[1])
        print(
            "cheapest configuration guaranteeing P >= 0.5 at recall "
            f">= {TARGET_RECALL}: clusters_per_element = {best[0]} "
            f"({best[1]} answers)"
        )
    else:
        print(
            f"no configuration guarantees P >= 0.5 at recall >= {TARGET_RECALL}; "
            "widen the search or relax the target"
        )


if __name__ == "__main__":
    main()

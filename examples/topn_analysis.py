"""Top-N analysis: where the bounds are actually narrow.

The paper closes on a practical note: wide bounds at high recall are
unavoidable, "but, for schema matching systems as well as information
retrieval systems in general, the top-N is usually the most interesting
and for such recall levels, we can give useful, i.e., narrow
effectiveness bounds."

This example evaluates a beam improvement at top-10/25/50/... cutoffs of
the exhaustive ranking and prints, per cutoff, the guaranteed precision
window plus a midpoint estimate with its hard error bar
(``repro.core.estimators``) — the report a practitioner would actually
ship.

Run:  python examples/topn_analysis.py
"""

from fractions import Fraction

from repro.core.estimators import estimate_correct
from repro.core.topn import topn_bounds
from repro.evaluation import build_workload, run_system, small_config
from repro.matching import BeamMatcher, ExhaustiveMatcher
from repro.util.tables import format_table


def main() -> None:
    workload = build_workload(small_config())
    original = run_system(
        ExhaustiveMatcher(workload.objective), workload.suite, workload.schedule
    )
    improved = run_system(
        BeamMatcher(workload.objective, beam_width=40),
        workload.suite,
        workload.schedule,
    )
    truth = workload.suite.ground_truth.mappings

    bounds = topn_bounds(original.answers, improved.answers, truth)
    rows = []
    for entry in bounds:
        estimate = estimate_correct(entry, "midpoint")
        precision = estimate.precision
        error = estimate.precision_error()
        rows.append(
            (
                entry.original.answers,
                entry.improved_answers,
                float(entry.size_ratio),
                float(entry.worst.precision_or(Fraction(0))),
                float(entry.best.precision_or(Fraction(1))),
                "-" if precision is None else f"{float(precision):.3f}",
                "-" if error is None else f"±{float(error):.3f}",
            )
        )
    print(
        format_table(
            [
                "top-N",
                "|A2|",
                "ratio",
                "P worst",
                "P best",
                "P estimate",
                "guaranteed error",
            ],
            rows,
            title="Beam improvement, bounded at top-N cutoffs "
            "(no S2 judgments used)",
        )
    )
    print(
        "\nreading: at the top of the ranking the improvement retains almost "
        "everything, so the window is tight and the estimate carries a small "
        "hard error bar; deep cutoffs widen as the paper predicts."
    )


if __name__ == "__main__":
    main()

"""An evolving repository: replay churn deltas, re-match incrementally.

Production schema repositories are not fixed — schemas get registered,
revised and retired while queries keep arriving.  This example walks the
repository-evolution subsystem end to end:

1. build a workload and a cold matching baseline,
2. derive a deterministic churn-delta stream (5 %/10 % churn grid),
3. replay it through an :class:`EvolutionSession`, re-matching
   incrementally after every step,
4. verify, per step, that the incremental answers are byte-identical to
   a cold full re-match of the evolved repository,
5. report what incrementality saved (pairs reused, searches skipped by
   the static admissible bound, whole answer sets adopted).

Run:  python examples/evolving_repository.py
"""

import os

from repro.evaluation import EvolutionConfig, build_evolution, build_workload
from repro.evaluation.workloads import small_config
from repro.matching import EvolutionSession, ExhaustiveMatcher
from repro.util.tables import format_table

#: δmax for every match; 0.3 keeps the demo quick
DELTA_MAX = 0.3


def main() -> None:
    # 1. Workload + cold baseline.
    workload = build_workload(small_config())
    queries = [scenario.query for scenario in workload.suite.scenarios]
    matcher = ExhaustiveMatcher(workload.objective)
    session = EvolutionSession(matcher, queries, DELTA_MAX, cache=False)
    baseline = session.match(workload.repository)
    print(
        f"baseline: {len(workload.repository)} schemas, {len(queries)} "
        f"queries, {sum(len(a) for a in baseline.answer_sets)} answers "
        f"at δ={DELTA_MAX}"
    )

    # 2. A deterministic churn stream (the evolving-repository scenario
    #    family; rates sized for the 10-schema demo repository so every
    #    step touches something.  REPRO_EXAMPLE_SMOKE shortens it for CI.)
    steps_per_rate = 1 if os.environ.get("REPRO_EXAMPLE_SMOKE") else 2
    steps = build_evolution(
        workload,
        EvolutionConfig(
            churn_rates=(0.10, 0.25), steps_per_rate=steps_per_rate, seed=11
        ),
    )

    # 3.–5. Replay incrementally; verify byte-identity against cold runs.
    rows = []
    for step in steps:
        result, report = session.rebase(step.repository, step.report)
        stats = result.rematch
        cold = matcher.batch_match(
            queries, step.repository, DELTA_MAX, cache=False
        )
        identical = [a.answers() for a in cold] == [
            a.answers() for a in result.answer_sets
        ]
        assert identical, "incremental result diverged from cold re-match!"
        rows.append(
            (
                step.index,
                f"{step.churn:.0%}",
                report.summary(),
                stats.pairs_reused,
                stats.pairs_skipped,
                stats.pairs_recomputed,
                stats.answer_sets_reused,
                "yes",
            )
        )
    print()
    print(
        format_table(
            [
                "step", "churn", "delta", "pairs reused", "skipped",
                "recomputed", "answer sets reused", "identical",
            ],
            rows,
            title="incremental replay (verified against cold re-match)",
        )
    )

    # The evolved ground truth is rebased per step, so evaluation keeps
    # working across versions.
    final = steps[-1]
    print(
        f"\nfinal repository: {len(final.repository)} schemas, "
        f"|H| = {final.suite.relevant_size} "
        f"(baseline had {workload.suite.relevant_size})"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Profile the standard matcher × threshold repository sweep.

Runs the same sweep shape the perf contracts time (every matcher ×
threshold × query over a workload repository) under :mod:`cProfile` and
prints the top functions by cumulative time — the quickest way to see
where the scoring wall-clock goes before and after touching a hot path.

Usage (from the repository root)::

    PYTHONPATH=src python tools/profile_hotpath.py
    PYTHONPATH=src python tools/profile_hotpath.py --limit 30 --sort tottime
    PYTHONPATH=src python tools/profile_hotpath.py --pre-kernel   # PR-4 path
    PYTHONPATH=src python tools/profile_hotpath.py --no-numpy     # spec loops
    PYTHONPATH=src python tools/profile_hotpath.py --schemas 260  # repo scale

``--warm`` first replays the sweep once un-timed so the name-similarity
memo is hot and the profile shows steady-state scoring instead of
cold-universe similarity computation (the contract benches warm the
same way).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def _sweep(workload, thresholds):
    from repro.matching import (
        BeamMatcher,
        ClusteringMatcher,
        ExhaustiveMatcher,
        HybridMatcher,
        TopKCandidateMatcher,
    )

    matchers = [
        ExhaustiveMatcher(workload.objective),
        BeamMatcher(workload.objective, beam_width=8),
        ClusteringMatcher(workload.objective, clusters_per_element=2),
        TopKCandidateMatcher(workload.objective, candidates_per_element=4),
        HybridMatcher(workload.objective, clusters_per_element=3, beam_width=8),
    ]
    results = []
    for matcher in matchers:
        for delta in thresholds:
            for scenario in workload.suite.scenarios:
                results.append(
                    matcher.match(scenario.query, workload.repository, delta)
                )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--limit", type=int, default=20, help="rows to print (default 20)"
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort order (default cumulative)",
    )
    parser.add_argument(
        "--schemas",
        type=int,
        default=None,
        help="repository size (default: the standard workload's)",
    )
    parser.add_argument(
        "--thresholds",
        type=float,
        nargs="+",
        default=[0.2, 0.3, 0.4],
        help="threshold grid of the sweep (default 0.2 0.3 0.4)",
    )
    parser.add_argument(
        "--warm",
        action="store_true",
        help="replay the sweep once un-timed first (hot name memo)",
    )
    parser.add_argument(
        "--pre-kernel",
        action="store_true",
        help="profile the PR-4 scoring path (kernel + flat search off)",
    )
    parser.add_argument(
        "--no-numpy",
        action="store_true",
        help="profile the pure-python spec loops (numpy path off)",
    )
    args = parser.parse_args(argv)

    from contextlib import ExitStack

    from repro.evaluation import build_workload
    from repro.evaluation.workloads import WorkloadConfig
    from repro.matching import (
        flat_search_disabled,
        kernel_disabled,
        numpy_disabled,
    )

    config = None
    if args.schemas is not None:
        config = WorkloadConfig(
            num_schemas=args.schemas,
            min_schema_size=10,
            max_schema_size=24,
            num_queries=10,
            query_size=5,
        )
    workload = build_workload(config)
    if args.warm:
        _sweep(workload, args.thresholds[:1])

    profiler = cProfile.Profile()
    with ExitStack() as stack:
        if args.pre_kernel:
            stack.enter_context(kernel_disabled())
            stack.enter_context(flat_search_disabled())
        if args.no_numpy:
            stack.enter_context(numpy_disabled())
        profiler.enable()
        _sweep(workload, args.thresholds)
        profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.limit)
    return 0


if __name__ == "__main__":
    sys.exit(main())

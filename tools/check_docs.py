"""Execute the fenced ``python`` examples in README.md and docs/*.md.

Documentation rots when its examples stop running.  This tool extracts
every fenced code block tagged ``python`` from the repository's markdown
documentation and executes it — blocks of one document run top to bottom
in a single namespace, so later examples may build on earlier ones.
Blocks tagged anything else (``console``, ``text``, …) are ignored.

Run standalone::

    python tools/check_docs.py             # all documented files
    python tools/check_docs.py README.md   # one file
    python tools/check_docs.py --examples  # docs plus examples/*.py

``--examples`` additionally executes every ``examples/*.py`` script in a
subprocess (smoke mode: the scripts are written against the small
workload configs, so each finishes in about a second; the
``REPRO_EXAMPLE_SMOKE=1`` environment variable is set for any script
that wants to shrink further).  The docs CI job runs with the flag, so
an example script that stops running fails CI alongside a rotten doc
block.

Beyond executing blocks, the tool is a **reference linter**: every
dotted ``repro.*`` name mentioned anywhere in a documented file (prose,
tables, code) must resolve to a real module or attribute.  Renaming
``repro.matching.similarity.backends`` while a doc still points at the
old path fails the check even if no executed block imports it.

The test suite runs the markdown checks through
``tests/docs/test_doc_examples.py``, so a documented example that stops
executing fails CI.
"""

from __future__ import annotations

import argparse
import importlib
import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: seconds before a runaway example script fails the check
EXAMPLE_TIMEOUT = 300

#: a dotted reference into the library: ``repro.x``, ``repro.x.y``, ...
DOTTED_REF = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")


def documented_files() -> list[Path]:
    """The markdown files whose python examples must execute."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def example_files() -> list[Path]:
    """The runnable example scripts (``--examples``)."""
    return sorted((REPO_ROOT / "examples").glob("*.py"))


def run_example(path: Path) -> str | None:
    """Execute one example script in a subprocess; failure text or ``None``.

    Each script runs isolated (its own interpreter, ``PYTHONPATH=src``,
    ``REPRO_EXAMPLE_SMOKE=1``) so module-level state cannot leak between
    examples or into the doc checks.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.setdefault("REPRO_EXAMPLE_SMOKE", "1")
    try:
        completed = subprocess.run(
            [sys.executable, str(path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=EXAMPLE_TIMEOUT,
        )
    except subprocess.TimeoutExpired:
        return f"{path.name}: timed out after {EXAMPLE_TIMEOUT}s"
    if completed.returncode != 0:
        tail = (completed.stderr or completed.stdout).strip().splitlines()
        detail = tail[-1] if tail else "no output"
        return f"{path.name}: exit {completed.returncode}: {detail}"
    return None


def extract_python_blocks(text: str) -> list[tuple[int, str]]:
    """``(first_code_line, code)`` for every fenced ``python`` block."""
    blocks: list[tuple[int, str]] = []
    lines: list[str] = []
    start = 0
    in_python = False
    in_other = False
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not in_python and not in_other and stripped.startswith("```"):
            if stripped[3:].strip() == "python":
                in_python, start, lines = True, number + 1, []
            else:
                in_other = True
        elif in_python and stripped == "```":
            blocks.append((start, "\n".join(lines)))
            in_python = False
        elif in_other and stripped == "```":
            in_other = False
        elif in_python:
            lines.append(line)
    if in_python or in_other:
        raise ValueError("unclosed fenced code block")
    return blocks


def run_document(path: Path) -> list[str]:
    """Execute one document's python blocks; the list of failures.

    All blocks share one namespace (in order), mirroring a reader who
    pastes them into a session one after another.
    """
    namespace: dict[str, object] = {"__name__": f"doccheck_{path.stem}"}
    failures: list[str] = []
    for line, code in extract_python_blocks(path.read_text(encoding="utf-8")):
        try:
            exec(compile(code, f"{path.name}:{line}", "exec"), namespace)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(
                f"{path.name}:{line}: {type(exc).__name__}: {exc}"
            )
    return failures


def resolve_reference(reference: str) -> bool:
    """Can ``reference`` be imported, or import-then-getattr'd?

    Tries the longest importable module prefix, then walks the remaining
    parts as attributes — so ``repro.matching.similarity.backends``
    (a module), ``repro.matching.numpy_disabled`` (an attribute) and
    ``repro.core.bounds.bound_counts`` (module + attribute) all resolve.
    """
    parts = reference.split(".")
    for split in range(len(parts), 0, -1):
        try:
            obj: object = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def lint_references(path: Path) -> list[str]:
    """Unresolvable dotted ``repro.*`` references in one document.

    Scans the whole file — prose, tables and code blocks alike — so a
    module rename breaks the docs check even where no executed example
    imports the stale path.
    """
    failures: list[str] = []
    seen: set[str] = set()
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for reference in DOTTED_REF.findall(line):
            if reference in seen:
                continue
            seen.add(reference)
            if not resolve_reference(reference):
                failures.append(
                    f"{path.name}:{number}: unresolvable reference {reference!r}"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="execute fenced python examples in the markdown docs"
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="markdown files to check (default: README.md and docs/*.md)",
    )
    parser.add_argument(
        "--examples",
        action="store_true",
        help="also execute every examples/*.py script (smoke mode)",
    )
    args = parser.parse_args(argv)

    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))

    paths = (
        [Path(name).resolve() for name in args.files]
        if args.files
        else documented_files()
    )
    exit_code = 0
    for path in paths:
        blocks = extract_python_blocks(path.read_text(encoding="utf-8"))
        failures = run_document(path) + lint_references(path)
        status = "ok" if not failures else "FAILED"
        print(f"{path.name}: {len(blocks)} python block(s) {status}")
        for failure in failures:
            print(f"  {failure}")
            exit_code = 1
    if args.examples:
        for path in example_files():
            failure = run_example(path)
            print(f"{path.name}: {'ok' if failure is None else 'FAILED'}")
            if failure is not None:
                print(f"  {failure}")
                exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())

"""Execute the fenced ``python`` examples in README.md and docs/*.md.

Documentation rots when its examples stop running.  This tool extracts
every fenced code block tagged ``python`` from the repository's markdown
documentation and executes it — blocks of one document run top to bottom
in a single namespace, so later examples may build on earlier ones.
Blocks tagged anything else (``console``, ``text``, …) are ignored.

Run standalone::

    python tools/check_docs.py            # all documented files
    python tools/check_docs.py README.md  # one file

The test suite runs the same checks through
``tests/docs/test_doc_examples.py``, so a documented example that stops
executing fails CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def documented_files() -> list[Path]:
    """The markdown files whose python examples must execute."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def extract_python_blocks(text: str) -> list[tuple[int, str]]:
    """``(first_code_line, code)`` for every fenced ``python`` block."""
    blocks: list[tuple[int, str]] = []
    lines: list[str] = []
    start = 0
    in_python = False
    in_other = False
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not in_python and not in_other and stripped.startswith("```"):
            if stripped[3:].strip() == "python":
                in_python, start, lines = True, number + 1, []
            else:
                in_other = True
        elif in_python and stripped == "```":
            blocks.append((start, "\n".join(lines)))
            in_python = False
        elif in_other and stripped == "```":
            in_other = False
        elif in_python:
            lines.append(line)
    if in_python or in_other:
        raise ValueError("unclosed fenced code block")
    return blocks


def run_document(path: Path) -> list[str]:
    """Execute one document's python blocks; the list of failures.

    All blocks share one namespace (in order), mirroring a reader who
    pastes them into a session one after another.
    """
    namespace: dict[str, object] = {"__name__": f"doccheck_{path.stem}"}
    failures: list[str] = []
    for line, code in extract_python_blocks(path.read_text(encoding="utf-8")):
        try:
            exec(compile(code, f"{path.name}:{line}", "exec"), namespace)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(
                f"{path.name}:{line}: {type(exc).__name__}: {exc}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="execute fenced python examples in the markdown docs"
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="markdown files to check (default: README.md and docs/*.md)",
    )
    args = parser.parse_args(argv)

    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))

    paths = (
        [Path(name).resolve() for name in args.files]
        if args.files
        else documented_files()
    )
    exit_code = 0
    for path in paths:
        blocks = extract_python_blocks(path.read_text(encoding="utf-8"))
        failures = run_document(path)
        status = "ok" if not failures else "FAILED"
        print(f"{path.name}: {len(blocks)} python block(s) {status}")
        for failure in failures:
            print(f"  {failure}")
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())

"""Deterministic randomness helpers.

All stochastic behaviour in the library flows through explicitly seeded
:class:`random.Random` instances.  Components never touch the global
``random`` module, so any experiment is reproducible from its seed alone.

The central idiom is *derivation*: a component holding a generator spawns
an independent child generator for each named sub-task::

    root = rng.make(42)
    gen_schemas = rng.derive(root, "schemas")
    gen_queries = rng.derive(root, "queries")

Derivation is order-independent — the child for ``"queries"`` is the same
whether or not ``"schemas"`` was derived first — which keeps experiments
stable when code paths are reordered.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")

__all__ = ["make", "derive", "seed_from", "choice_weighted", "sample_fraction"]


def make(seed: int | None) -> random.Random:
    """Create a fresh generator from an integer seed.

    ``None`` is accepted for interactive convenience and maps to an
    OS-entropy seed, but library code always passes an int.
    """
    return random.Random(seed)


def seed_from(base_seed: int, *labels: str | int) -> int:
    """Compute a stable derived seed from a base seed and label path.

    The derivation hashes the labels with the base seed, so distinct label
    paths give (with overwhelming probability) independent streams while
    identical paths always give identical streams.
    """
    digest = hashlib.sha256()
    digest.update(str(base_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def derive(generator: random.Random, *labels: str | int) -> random.Random:
    """Spawn an independent child generator identified by a label path.

    The child depends only on the parent's *initial* seed material, never
    on how much of the parent stream has been consumed.  The parent must
    have been created by :func:`make` or :func:`derive` (we recover its
    identity via a dedicated, stable side-channel attribute).
    """
    base = getattr(generator, "_repro_seed", None)
    if base is None:
        # Fall back to drawing one value; still deterministic for seeded
        # generators, just order-sensitive.
        base = generator.randrange(2**63)
    child_seed = seed_from(base, *labels)
    child = random.Random(child_seed)
    child._repro_seed = child_seed  # type: ignore[attr-defined]
    return child


def _tag(generator: random.Random, seed: int) -> random.Random:
    generator._repro_seed = seed  # type: ignore[attr-defined]
    return generator


def make_tagged(seed: int) -> random.Random:
    """Create a generator that supports order-independent :func:`derive`."""
    return _tag(random.Random(seed), seed)


def choice_weighted(
    generator: random.Random, items: Sequence[T], weights: Sequence[float]
) -> T:
    """Pick one item with the given positive weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    pick = generator.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if pick < acc:
            return item
    return items[-1]


def sample_fraction(
    generator: random.Random, items: Sequence[T], fraction: float
) -> list[T]:
    """Sample ``round(fraction * len(items))`` items without replacement.

    The sample preserves no particular order.  ``fraction`` is clamped to
    [0, 1] so callers can pass ratios straight from measurements.
    """
    fraction = min(1.0, max(0.0, fraction))
    count = round(fraction * len(items))
    return generator.sample(list(items), count)

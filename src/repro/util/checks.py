"""Tiny argument-validation helpers.

These keep validation one-liners readable at call sites and make error
messages uniform across the package.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = [
    "require",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_strictly_increasing",
]


def require(condition: bool, message: str, error: type[Exception] = ValueError) -> None:
    """Raise ``error(message)`` unless ``condition`` holds."""
    if not condition:
        raise error(message)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_strictly_increasing(values: Iterable[float], name: str) -> list[float]:
    """Validate that ``values`` is non-empty and strictly increasing."""
    out = list(values)
    if not out:
        raise ValueError(f"{name} must not be empty")
    for left, right in zip(out, out[1:]):
        if not right > left:
            raise ValueError(
                f"{name} must be strictly increasing, "
                f"but {right!r} follows {left!r}"
            )
    return out

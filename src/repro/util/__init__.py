"""Shared low-level utilities (no domain knowledge lives here).

Submodules
----------
``rng``
    Deterministic random-number-generator helpers; every stochastic
    component in the library takes an explicit seed and derives
    sub-generators through :func:`repro.util.rng.derive`.
``text``
    From-scratch string similarity/distance functions used by the
    matching objective (Levenshtein, Jaro-Winkler, n-gram overlap,
    token-set similarity).
``fractions_ext``
    Helpers around :class:`fractions.Fraction`; the bound mathematics is
    carried out exactly in count space.
``tables``
    Plain-text table rendering used by the experiment harness.
``asciiplot``
    Dependency-free ASCII line/scatter plots for reproducing the paper's
    figures in a terminal.
``checks``
    Tiny argument-validation helpers shared across the package.
"""

from repro.util import asciiplot, checks, fractions_ext, rng, stats, tables, text

__all__ = ["asciiplot", "checks", "fractions_ext", "rng", "stats", "tables", "text"]

"""Bounded-mapping helpers shared by the hot-path memo caches.

One idiom, one definition: several layers keep insertion-ordered dict
memos whose entries re-derive exactly on a miss (normalised labels,
similarity scores, kernel rows and gathers, cluster nominations), so
eviction can never change an answer — bounding them only caps memory in
long-lived processes.  :func:`fifo_put` is that policy: evict the oldest
insertion when full, then insert.
"""

from __future__ import annotations

from collections.abc import MutableMapping

__all__ = ["fifo_put"]


def fifo_put(mapping: MutableMapping, key, value, limit: int) -> None:
    """Insert ``key: value``, first evicting the oldest entry when full.

    Relies on dict insertion order; intended for memos whose values are
    pure functions of their key, where eviction costs only a recompute.
    """
    if len(mapping) >= limit:
        mapping.pop(next(iter(mapping)))
    mapping[key] = value

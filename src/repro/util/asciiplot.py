"""Dependency-free ASCII plots.

Reproduces the paper's figures in a terminal: multiple named series are
drawn on a shared canvas with one marker character per series.  The plots
are deliberately simple — experiments also emit the raw series, which is
what EXPERIMENTS.md records.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

__all__ = ["Series", "AsciiPlot"]


@dataclass
class Series:
    """A named point series to draw on an :class:`AsciiPlot`."""

    name: str
    points: Sequence[tuple[float, float]]
    marker: str = "*"

    def __post_init__(self) -> None:
        if len(self.marker) != 1:
            raise ValueError(f"marker must be a single character, got {self.marker!r}")


@dataclass
class AsciiPlot:
    """A fixed-size character canvas holding multiple series.

    Example
    -------
    >>> plot = AsciiPlot(width=20, height=8, title="demo")
    >>> plot.add(Series("line", [(0, 0), (1, 1)], marker="o"))
    >>> print(plot.render())  # doctest: +SKIP
    """

    width: int = 60
    height: int = 20
    title: str = ""
    x_label: str = "x"
    y_label: str = "y"
    x_range: tuple[float, float] | None = None
    y_range: tuple[float, float] | None = None
    series: list[Series] = field(default_factory=list)

    def add(self, series: Series) -> "AsciiPlot":
        """Add a series; returns self for chaining."""
        self.series.append(series)
        return self

    def _ranges(self) -> tuple[float, float, float, float]:
        xs = [p[0] for s in self.series for p in s.points]
        ys = [p[1] for s in self.series for p in s.points]
        if self.x_range is not None:
            x_lo, x_hi = self.x_range
        else:
            x_lo, x_hi = (min(xs), max(xs)) if xs else (0.0, 1.0)
        if self.y_range is not None:
            y_lo, y_hi = self.y_range
        else:
            y_lo, y_hi = (min(ys), max(ys)) if ys else (0.0, 1.0)
        if x_hi <= x_lo:
            x_hi = x_lo + 1.0
        if y_hi <= y_lo:
            y_hi = y_lo + 1.0
        return x_lo, x_hi, y_lo, y_hi

    def render(self) -> str:
        """Render the canvas with axes, legend and title."""
        if self.width < 10 or self.height < 4:
            raise ValueError("plot must be at least 10x4 characters")
        x_lo, x_hi, y_lo, y_hi = self._ranges()
        grid = [[" "] * self.width for _ in range(self.height)]

        def to_cell(x: float, y: float) -> tuple[int, int] | None:
            if not (x_lo <= x <= x_hi and y_lo <= y <= y_hi):
                return None
            col = round((x - x_lo) / (x_hi - x_lo) * (self.width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (self.height - 1))
            return self.height - 1 - row, col

        for series in self.series:
            for x, y in series.points:
                cell = to_cell(x, y)
                if cell is None:
                    continue
                row, col = cell
                grid[row][col] = series.marker

        left_pad = max(len(f"{y_hi:.2f}"), len(f"{y_lo:.2f}"))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        for i, row in enumerate(grid):
            if i == 0:
                label = f"{y_hi:.2f}"
            elif i == self.height - 1:
                label = f"{y_lo:.2f}"
            else:
                label = ""
            lines.append(f"{label.rjust(left_pad)} |{''.join(row)}")
        lines.append(" " * left_pad + " +" + "-" * self.width)
        x_axis = f"{x_lo:.2f}".ljust(self.width - 6) + f"{x_hi:.2f}"
        lines.append(" " * left_pad + "  " + x_axis)
        legend = "   ".join(f"[{s.marker}] {s.name}" for s in self.series)
        if legend:
            lines.append(legend)
        return "\n".join(lines)

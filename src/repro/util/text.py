"""String similarity and distance functions, implemented from scratch.

The matching objective (:mod:`repro.matching.objective`) combines several
of these classic measures, mirroring the name-similarity heuristics the
schema matching literature builds on (Cupid, COMA, iMAP and friends all
layer such lexical measures under their structural logic).

All similarity functions return values in [0, 1] where 1 means identical;
all distance functions return non-negative values where 0 means identical.
Inputs are treated case-insensitively only where documented — callers
normalise via :func:`normalise_label` first.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable

__all__ = [
    "normalise_label",
    "tokenize_label",
    "levenshtein",
    "levenshtein_similarity",
    "jaro",
    "jaro_winkler",
    "character_ngrams",
    "ngram_profile",
    "ngram_similarity",
    "dice_coefficient",
    "jaccard",
    "token_set_similarity",
    "longest_common_prefix",
    "prefix_similarity",
]

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_NON_ALNUM = re.compile(r"[^0-9a-zA-Z]+")


def normalise_label(label: str) -> str:
    """Normalise a schema-element label for lexical comparison.

    Splits camelCase, replaces punctuation with spaces, lower-cases and
    collapses whitespace, e.g. ``"AuthorLast_Name "`` -> ``"author last name"``.
    """
    label = _CAMEL_BOUNDARY.sub(" ", label)
    label = _NON_ALNUM.sub(" ", label)
    return " ".join(label.lower().split())


def tokenize_label(label: str) -> list[str]:
    """Split a label into normalised word tokens."""
    normalised = normalise_label(label)
    return normalised.split() if normalised else []


def levenshtein(a: str, b: str) -> int:
    """Edit distance between two strings (insert/delete/substitute, cost 1).

    Uses the standard two-row dynamic program: O(len(a) * len(b)) time,
    O(min(len)) memory.
    """
    if a == b:
        return 0
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalised to a [0, 1] similarity."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)

    match_a = [False] * len_a
    match_b = [False] * len_b
    matches = 0
    for i, char_a in enumerate(a):
        lo = max(0, i - window)
        hi = min(len_b, i + window + 1)
        for j in range(lo, hi):
            if not match_b[j] and b[j] == char_a:
                match_a[i] = True
                match_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i in range(len_a):
        if match_a[i]:
            while not match_b[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted by a common prefix (<= 4 chars).

    ``prefix_scale`` must lie in [0, 0.25] to keep the result within [0, 1].
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale!r}")
    base = jaro(a, b)
    prefix = longest_common_prefix(a, b)
    prefix = min(prefix, 4)
    return base + prefix * prefix_scale * (1.0 - base)


def character_ngrams(text: str, n: int = 3, pad: bool = True) -> list[str]:
    """Character n-grams of ``text``; padded with ``#`` at both ends.

    Padding makes short strings comparable and weights word boundaries,
    the usual trick in approximate string matching.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    if pad:
        text = "#" * (n - 1) + text + "#" * (n - 1)
    if len(text) < n:
        return [text] if text else []
    return [text[i : i + n] for i in range(len(text) - n + 1)]


def ngram_profile(text: str, n: int = 3) -> Counter:
    """Multiset of character n-grams (used for clustering element names)."""
    return Counter(character_ngrams(text, n=n))


def ngram_similarity(a: str, b: str, n: int = 3) -> float:
    """Dice coefficient over character n-gram multisets."""
    return dice_coefficient(ngram_profile(a, n=n), ngram_profile(b, n=n))


def dice_coefficient(profile_a: Counter, profile_b: Counter) -> float:
    """Dice coefficient of two multisets: 2|A∩B| / (|A| + |B|)."""
    size_a = sum(profile_a.values())
    size_b = sum(profile_b.values())
    if size_a == 0 and size_b == 0:
        return 1.0
    if size_a == 0 or size_b == 0:
        return 0.0
    overlap = sum((profile_a & profile_b).values())
    return 2.0 * overlap / (size_a + size_b)


def jaccard(set_a: Iterable, set_b: Iterable) -> float:
    """Jaccard similarity of two iterables treated as sets."""
    sa, sb = set(set_a), set(set_b)
    if not sa and not sb:
        return 1.0
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def token_set_similarity(a: str, b: str) -> float:
    """Jaccard similarity over normalised word tokens of two labels."""
    return jaccard(tokenize_label(a), tokenize_label(b))


def longest_common_prefix(a: str, b: str) -> int:
    """Length of the longest common prefix of two strings."""
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return i
    return limit


def prefix_similarity(a: str, b: str) -> float:
    """Common-prefix length normalised by the longer string length."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return longest_common_prefix(a, b) / longest

"""Small statistics helpers, implemented from scratch.

Used by the ablations: rank correlation for "does tuning by bounds agree
with tuning by truth" (Kendall's tau) and simple summaries.  No numpy —
inputs are short experiment tables, clarity beats vectorisation.
"""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

__all__ = ["mean", "median", "variance", "kendall_tau"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; rejects empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median (average of the middle pair for even lengths)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def variance(values: Sequence[float]) -> float:
    """Population variance."""
    if not values:
        raise ValueError("variance of empty sequence")
    centre = mean(values)
    return sum((v - centre) ** 2 for v in values) / len(values)


def kendall_tau(a: Sequence[float], b: Sequence[float]) -> Fraction:
    """Kendall's tau-a rank correlation of two paired samples.

    ``(concordant − discordant) / (n·(n−1)/2)``; ties count as neither.
    Returns an exact rational in [−1, 1].  Needs at least two pairs.
    """
    if len(a) != len(b):
        raise ValueError("paired samples must have equal length")
    n = len(a)
    if n < 2:
        raise ValueError("kendall_tau needs at least 2 pairs")
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            da = (a[i] > a[j]) - (a[i] < a[j])
            db = (b[i] > b[j]) - (b[i] < b[j])
            product = da * db
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    return Fraction(concordant - discordant, n * (n - 1) // 2)

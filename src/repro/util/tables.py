"""Plain-text table rendering for experiment reports.

The offline environment has no plotting stack, so every experiment emits
its figure data as aligned text tables (plus ASCII plots).  This module
renders those tables; it knows nothing about the experiments themselves.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_kv", "format_csv"]


def _render_cell(value: object, float_digits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    if value is None:
        return "-"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_digits: int = 4,
) -> str:
    """Render a fixed-width text table.

    Numbers are right-aligned, text left-aligned; floats are formatted
    with ``float_digits`` decimals; ``None`` renders as ``-``.
    """
    rendered_rows = [
        [_render_cell(cell, float_digits) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric = [True] * len(headers)
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if cell != "-" and not _looks_numeric(cell):
                numeric[i] = False

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric[i]:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered_rows)
    return "\n".join(lines)


def _looks_numeric(cell: str) -> bool:
    try:
        float(cell.replace("%", ""))
    except ValueError:
        return "/" in cell and all(
            part.strip().lstrip("-").isdigit() for part in cell.split("/", 1)
        )
    return True


def format_kv(pairs: Iterable[tuple[str, object]], indent: str = "  ") -> str:
    """Render key/value pairs as aligned ``key : value`` lines."""
    items = [(str(k), _render_cell(v, 4)) for k, v in pairs]
    if not items:
        return ""
    width = max(len(k) for k, _ in items)
    return "\n".join(f"{indent}{k.ljust(width)} : {v}" for k, v in items)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a minimal CSV (no quoting; callers keep cells simple)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(_render_cell(c, 6) for c in row))
    return "\n".join(lines)

"""Helpers around :class:`fractions.Fraction`.

The paper emphasises that its bounds are "an analytical and exact result,
not an estimate".  To honour that, the count-space bound computations in
:mod:`repro.core` are carried out on exact rationals; these helpers cover
the small amount of plumbing that needs (safe ratios, clamping, pretty
printing and float conversion at the API boundary).
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Rational

__all__ = [
    "as_fraction",
    "safe_ratio",
    "clamp01",
    "frac_min",
    "frac_max",
    "format_fraction",
]

Number = int | float | Fraction

ZERO = Fraction(0)
ONE = Fraction(1)


def as_fraction(value: Number, max_denominator: int | None = None) -> Fraction:
    """Convert ints/floats/Fractions to an exact :class:`Fraction`.

    Floats are converted exactly by default (every float *is* a rational);
    pass ``max_denominator`` to snap measured floats like ``0.1`` to the
    nearby small rational instead of the exact binary expansion.
    """
    if isinstance(value, Rational):
        result = Fraction(value)
    elif isinstance(value, float):
        result = Fraction(value)
    else:
        raise TypeError(f"cannot convert {type(value).__name__} to Fraction")
    if max_denominator is not None:
        result = result.limit_denominator(max_denominator)
    return result


def safe_ratio(numerator: Number, denominator: Number, default: Fraction = ZERO) -> Fraction:
    """``numerator / denominator`` as a Fraction, or ``default`` when dividing by 0.

    Precision of an empty answer set is conventionally treated as the
    ``default`` (the library uses 1 for "no answers, none wrong" in some
    displays and 0 in conservative contexts — callers choose explicitly).
    """
    denominator = as_fraction(denominator)
    if denominator == 0:
        return default
    return as_fraction(numerator) / denominator


def clamp01(value: Fraction) -> Fraction:
    """Clamp a fraction to the closed interval [0, 1]."""
    if value < ZERO:
        return ZERO
    if value > ONE:
        return ONE
    return value


def frac_min(*values: Number) -> Fraction:
    """Exact minimum of mixed int/float/Fraction values."""
    return min(as_fraction(v) for v in values)


def frac_max(*values: Number) -> Fraction:
    """Exact maximum of mixed int/float/Fraction values."""
    return max(as_fraction(v) for v in values)


def format_fraction(value: Fraction, digits: int = 4) -> str:
    """Render ``value`` as ``p/q (0.dddd)`` for human-readable reports."""
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator} ({float(value):.{digits}f})"

"""Command-line front-end: ``repro-bounds`` (or ``python -m repro.cli``).

Subcommands
-----------
``list``
    Show every registered experiment (paper figures + ablations).
``figure <id>``
    Run one experiment and print its tables/plots.
``all``
    Run every experiment in order.
``demo``
    The quickstart: bounds for a beam improvement on a small workload.
``compare <spec> <spec>``
    Compare two improvements by their bounds alone — no judgments.  A
    spec is ``name`` or ``name:param=value[,param=value...]``, e.g.
    ``beam:beam_width=10`` or ``clustering:clusters_per_element=2``.
``evolve``
    Replay a churn-delta stream over the workload repository and
    re-match incrementally after every step (``--churn``/``--steps``
    control the grid, ``--matcher`` the system, ``--verify`` re-runs
    each step cold and checks byte-identity).
``snapshot <dir>``
    Match the workload's queries and persist repository + similarity
    substrate + retained results as a warm-start snapshot
    (``--matcher``/``--delta`` pick the system and threshold).
``serve [dir]``
    Run the asyncio :class:`~repro.matching.service.MatchingService`:
    warm-start from a snapshot directory when one exists (cold from the
    workload otherwise), replay the workload queries as concurrent
    requests, optionally apply live churn deltas (``--deltas``), verify
    byte-identity against the offline path (``--verify``) and write a
    checkpoint back to the directory.  ``--replicas N`` serves through
    a :class:`~repro.matching.replication.ReplicaGroup` (N replicas
    behind a replicated delta log); ``--remote-workers host:port,...``
    fans shard units out to socket workers; ``--status`` prints a
    per-wave operator health line (replica lag, worker breakers).
``worker``
    Run one socket shard worker
    (:class:`~repro.matching.remote.WorkerServer`) until interrupted;
    coordinators reach it via ``serve --remote-workers`` or a
    :class:`~repro.matching.remote.RemoteShardExecutor`.
``save-collection <dir>`` / ``show-collection <dir>``
    Freeze the default workload's test collection to disk / summarise a
    frozen one.

``--small`` runs on the reduced workload (seconds instead of minutes on
slow machines); ``--seed`` reseeds workload generation.  ``--workers``
fans repository matching out over worker processes through the sharded
pipeline (``--shards`` overrides the shard count, default one per
worker); both default to serial, which produces identical output.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.errors import ReproError
from repro.evaluation.workloads import WorkloadConfig, small_config

__all__ = ["main", "build_parser"]


def _config_from_args(args: argparse.Namespace) -> WorkloadConfig | None:
    config = small_config() if args.small else WorkloadConfig()
    if args.seed is not None:
        config = replace(
            config, repository_seed=args.seed, query_seed=args.seed + 16
        )
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bounds",
        description=(
            "Effectiveness bounds for non-exhaustive schema matching systems "
            "(ICDE 2006 reproduction)"
        ),
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="use the reduced workload (fast demos, CI)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="workload generation seed"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for repository matching (default: serial; "
        "results are identical either way)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="repository shards per matching batch (default: one per worker)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments")

    figure = sub.add_parser("figure", help="run one experiment")
    figure.add_argument("experiment_id", help="e.g. fig11 or abl-matchers")

    sub.add_parser("all", help="run every experiment")
    sub.add_parser("demo", help="quickstart bounds demo")

    compare = sub.add_parser(
        "compare", help="compare two improvements by bounds alone"
    )
    compare.add_argument("first", help="e.g. beam:beam_width=10")
    compare.add_argument("second", help="e.g. clustering:clusters_per_element=2")

    evolve = sub.add_parser(
        "evolve", help="replay a churn-delta stream with incremental re-matching"
    )
    evolve.add_argument(
        "--matcher",
        default="exhaustive",
        help="matcher spec, e.g. beam:beam_width=8 (default: exhaustive)",
    )
    evolve.add_argument(
        "--delta",
        type=float,
        default=0.3,
        help="matching threshold δmax (default: 0.3)",
    )
    evolve.add_argument(
        "--churn",
        default="0.05,0.10,0.25",
        help="comma-separated churn rates, each a fraction of schemas "
        "touched per step (default: 0.05,0.10,0.25)",
    )
    evolve.add_argument(
        "--steps",
        type=int,
        default=2,
        help="delta steps per churn rate (default: 2)",
    )
    evolve.add_argument(
        "--evolution-seed",
        type=int,
        default=97,
        help="seed for the churn-delta stream (default: 97)",
    )
    evolve.add_argument(
        "--verify",
        action="store_true",
        help="re-run every step cold and assert byte-identical answers",
    )

    snapshot = sub.add_parser(
        "snapshot", help="persist a warm-start snapshot of the workload"
    )
    snapshot.add_argument("directory", help="snapshot directory to write")
    snapshot.add_argument(
        "--matcher",
        default="exhaustive",
        help="matcher spec, e.g. beam:beam_width=8 (default: exhaustive)",
    )
    snapshot.add_argument(
        "--delta",
        type=float,
        default=0.3,
        help="matching threshold δmax (default: 0.3)",
    )

    serve = sub.add_parser(
        "serve", help="run the async matching service (warm- or cold-start)"
    )
    serve.add_argument(
        "directory",
        nargs="?",
        default=None,
        help="snapshot directory: warm-start source and checkpoint target "
        "(omit for a cold in-memory run)",
    )
    serve.add_argument(
        "--matcher",
        default="exhaustive",
        help="matcher spec; must match the snapshot's (default: exhaustive)",
    )
    serve.add_argument(
        "--delta",
        type=float,
        default=0.3,
        help="matching threshold δmax (default: 0.3)",
    )
    serve.add_argument(
        "--deltas",
        type=int,
        default=0,
        help="churn deltas to apply live between request waves (default: 0)",
    )
    serve.add_argument(
        "--churn",
        type=float,
        default=0.1,
        help="churn rate of each live delta (default: 0.1)",
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="times each workload query is submitted per wave (default: 2; "
        "repeats exercise retained-state serving)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="most distinct queries per micro-batch (default: 32)",
    )
    serve.add_argument(
        "--verify",
        action="store_true",
        help="assert byte-identity of served answers against the offline "
        "batch_match path, after every wave",
    )

    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="serve through a ReplicaGroup of N warm-started replicas with "
        "a replicated delta log (default: 1 = single service)",
    )
    serve.add_argument(
        "--remote-workers",
        default=None,
        help="comma-separated socket worker addresses (host:port,...) to "
        "fan shard units out to, e.g. started with 'repro worker'",
    )
    serve.add_argument(
        "--status",
        action="store_true",
        help="print one operator status line after every wave: replica "
        "serving/lagging state and, with --remote-workers, each worker's "
        "circuit-breaker state (see docs/distributed.md)",
    )

    worker = sub.add_parser(
        "worker", help="run one socket shard worker (see docs/distributed.md)"
    )
    worker.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    worker.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default: 0 = ephemeral; the bound port is "
        "printed on startup)",
    )
    worker.add_argument(
        "--parallel-units",
        type=int,
        default=1,
        help="work units this worker executes concurrently (private "
        "state slots; default: 1 = serial)",
    )
    worker.add_argument(
        "--op-timeout",
        type=float,
        default=None,
        help="seconds of mid-conversation silence before a hung peer's "
        "connection is dropped (default: unbounded; idle waits for a "
        "first byte are never bounded)",
    )

    save = sub.add_parser(
        "save-collection", help="freeze the workload's test collection"
    )
    save.add_argument("directory")

    show = sub.add_parser("show-collection", help="summarise a frozen collection")
    show.add_argument("directory")
    return parser


def _cmd_list() -> int:
    from repro.experiments import list_experiments

    for experiment_id, title in list_experiments():
        print(f"{experiment_id:16s} {title}")
    return 0


def _cmd_figure(experiment_id: str, config: WorkloadConfig | None) -> int:
    from repro.experiments import run_experiment

    print(run_experiment(experiment_id, config).render())
    return 0


def _cmd_all(config: WorkloadConfig | None) -> int:
    from repro.experiments import list_experiments, run_experiment

    for experiment_id, _title in list_experiments():
        print(run_experiment(experiment_id, config).render())
        print()
    return 0


def _cmd_demo(config: WorkloadConfig | None) -> int:
    from repro.core.report import render_band_plot, summarize_guarantees
    from repro.evaluation import build_workload, run_system, validate_improvement
    from repro.matching import BeamMatcher, ExhaustiveMatcher

    workload = build_workload(config)
    original = run_system(
        ExhaustiveMatcher(workload.objective), workload.suite, workload.schedule
    )
    improved = run_system(
        BeamMatcher(workload.objective, beam_width=10),
        workload.suite,
        workload.schedule,
    )
    validation = validate_improvement(original, improved)
    print(render_band_plot(validation.band, title="Demo: beam improvement band"))
    print()
    print(summarize_guarantees(validation.band))
    print()
    status = "contained" if validation.sound else "VIOLATED"
    print(f"actual (oracle-judged) curve: {status} in the band")
    return 0


def _parse_matcher_spec(spec: str) -> tuple[str, dict[str, int | float]]:
    """Parse ``name[:param=value,...]`` into a registry call."""
    name, _, params_part = spec.partition(":")
    params: dict[str, int | float] = {}
    if params_part:
        for pair in params_part.split(","):
            key, sep, value = pair.partition("=")
            if not sep or not key or not value:
                raise ReproError(
                    f"bad matcher spec {spec!r}; expected name:param=value,..."
                )
            try:
                params[key] = int(value)
            except ValueError:
                try:
                    params[key] = float(value)
                except ValueError:
                    raise ReproError(
                        f"parameter {key!r} of {spec!r} must be numeric"
                    ) from None
    return name, params


def _cmd_compare(
    first_spec: str, second_spec: str, config: WorkloadConfig | None
) -> int:
    from repro.core.comparison import Verdict, compare_bounds, dominates
    from repro.core.report import render_comparison
    from repro.evaluation import build_workload, run_system, validate_improvement
    from repro.matching import ExhaustiveMatcher, make_matcher

    workload = build_workload(config)
    # One exhaustive baseline per objective *family*: backend variants
    # (bm25/dense/ensemble) match through a derived objective, and the
    # bounds precondition only holds against an exhaustive run over that
    # same objective.  Plain specs share the workload objective, so the
    # single-baseline behaviour is unchanged for them.
    originals: dict[str, object] = {}
    families = []
    validations = []
    for spec in (first_spec, second_spec):
        name, params = _parse_matcher_spec(spec)
        matcher = make_matcher(name, workload.objective, **params)
        family = matcher.objective.fingerprint()
        families.append(family)
        original = originals.get(family)
        if original is None:
            original = run_system(
                ExhaustiveMatcher(matcher.objective),
                workload.suite,
                workload.schedule,
            )
            originals[family] = original
        run = run_system(matcher, workload.suite, workload.schedule)
        validations.append(validate_improvement(original, run))
    if families[0] != families[1]:
        # the bounds technique never ranks across objectives: each spec
        # is validated against its own family's exhaustive baseline and
        # reported side by side, but no dominance verdict is possible
        print(
            "specs score through different objective families; bounds "
            "never rank across objectives, so each is validated against "
            "its own exhaustive baseline:"
        )
        for spec, validation in zip((first_spec, second_spec), validations):
            final = validation.bounds[len(validation.bounds) - 1]
            print(
                f"  {spec}: |A1|={final.original.answers} "
                f"|A2|={final.improved_answers}, final precision in "
                f"[{float(final.worst.precision_or(0)):.3f}, "
                f"{float(final.best.precision_or(1)):.3f}], band "
                f"{'sound' if validation.sound else 'NOT SOUND'}"
            )
        return 0
    comparisons = compare_bounds(validations[0].bounds, validations[1].bounds)
    print(render_comparison(comparisons, first_spec, second_spec))
    print()
    if dominates(validations[0].bounds, validations[1].bounds):
        print(f"{first_spec} provably dominates {second_spec} at every threshold")
    elif dominates(validations[1].bounds, validations[0].bounds):
        print(f"{second_spec} provably dominates {first_spec} at every threshold")
    else:
        undecided = sum(
            1 for c in comparisons if c.correct_verdict is Verdict.UNDECIDED
        )
        print(
            f"no all-threshold dominance; {undecided}/{len(comparisons)} "
            "thresholds undecided (judgments would be needed there)"
        )
    return 0


def _parse_churn_rates(text: str) -> tuple[float, ...]:
    """Parse the ``--churn`` comma list into a tuple of rates."""
    try:
        rates = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ReproError(
            f"bad churn list {text!r}; expected comma-separated numbers"
        ) from None
    if not rates:
        raise ReproError(f"churn list {text!r} names no rates")
    return rates


def _cmd_evolve(args: argparse.Namespace, config: WorkloadConfig | None) -> int:
    from repro.evaluation import EvolutionConfig, build_evolution, build_workload
    from repro.matching import evolution_session
    from repro.util.tables import format_table

    name, params = _parse_matcher_spec(args.matcher)
    evolution = EvolutionConfig(
        churn_rates=_parse_churn_rates(args.churn),
        steps_per_rate=args.steps,
        seed=args.evolution_seed,
    )
    workload = build_workload(config)
    queries = [scenario.query for scenario in workload.suite.scenarios]
    steps = build_evolution(workload, evolution)
    session = evolution_session(
        name, workload.objective, queries, args.delta,
        params=params, cache=False,
    )
    baseline = session.match(workload.repository)
    print(
        f"baseline: {len(workload.repository)} schemas, {len(queries)} "
        f"queries, δmax={args.delta}, matcher={args.matcher} "
        f"({baseline.stats.wall_seconds:.3f}s cold)"
    )
    rows = []
    for step in steps:
        result, report = session.rebase(step.repository, step.report)
        stats = result.rematch
        assert stats is not None
        verified = ""
        if args.verify:
            cold = session.matcher.batch_match(
                queries, step.repository, args.delta, cache=False
            )
            # answers() carries items, scores and order — the strongest
            # equality the AnswerSet type offers
            same = [a.answers() for a in cold] == [
                a.answers() for a in result.answer_sets
            ]
            if not same:
                raise ReproError(
                    f"step {step.index}: incremental answers differ from "
                    "cold re-match"
                )
            verified = "identical"
        rows.append(
            (
                step.index,
                step.churn,
                report.summary(),
                stats.pairs_reused,
                stats.pairs_skipped,
                stats.pairs_recomputed,
                "full" if stats.full_recompute else "incremental",
                f"{stats.wall_seconds:.3f}s",
                verified,
            )
        )
    headers = [
        "step", "churn", "delta", "reused", "skipped", "recomputed",
        "mode", "wall", "verify" if args.verify else "",
    ]
    print()
    print(format_table(headers, rows, title="evolution replay"))
    total_reused = sum(row[3] for row in rows)
    total_recomputed = sum(row[5] for row in rows)
    print(
        f"\n{len(steps)} steps: {total_reused} pair searches reused, "
        f"{total_recomputed} recomputed"
    )
    return 0


def _cmd_snapshot(args: argparse.Namespace, config: WorkloadConfig | None) -> int:
    from repro.evaluation import build_workload
    from repro.matching import MatchingPipeline, make_matcher, save_snapshot

    name, params = _parse_matcher_spec(args.matcher)
    workload = build_workload(config)
    queries = [scenario.query for scenario in workload.suite.scenarios]
    matcher = make_matcher(name, workload.objective, **params)
    result = MatchingPipeline(matcher, cache=False).run(
        queries, workload.repository, args.delta
    )
    # the matcher's objective, not the workload's: backend variants
    # (bm25/dense/ensemble) match through a derived objective with its
    # own substrate, and that is the state a restart must reload
    substrate = matcher.objective.substrate()
    store = save_snapshot(
        args.directory,
        workload.repository,
        queries=queries,
        result=result,
        substrate=substrate,
    )
    print(
        f"snapshot written to {store.root}: {len(workload.repository)} "
        f"schemas, {len(queries)} retained queries, "
        f"{len(substrate.cached_matrices())} score matrices, "
        f"δmax={args.delta}, matcher={args.matcher} "
        f"({result.stats.wall_seconds:.3f}s to match cold)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace, config: WorkloadConfig | None) -> int:
    import asyncio
    from time import perf_counter

    from repro.evaluation import build_workload
    from repro.matching import MatchingService, canonical_answers, make_matcher
    from repro.schema import SnapshotStore, churn_delta
    from repro.util.tables import format_table

    if args.repeat < 1:
        raise ReproError(
            f"--repeat must be >= 1, got {args.repeat} (0 would issue no "
            "requests and make --verify vacuous)"
        )
    if args.deltas < 0:
        raise ReproError(f"--deltas must be >= 0, got {args.deltas}")
    if args.deltas and args.churn <= 0:
        raise ReproError(f"--churn must be > 0, got {args.churn}")
    if args.replicas < 1:
        raise ReproError(f"--replicas must be >= 1, got {args.replicas}")
    name, params = _parse_matcher_spec(args.matcher)
    workload = build_workload(config)
    queries = [scenario.query for scenario in workload.suite.scenarios]
    matcher = make_matcher(name, workload.objective, **params)
    store = SnapshotStore(args.directory) if args.directory else None
    executor = None
    if args.remote_workers:
        from repro.matching.remote import RemoteShardExecutor

        addresses = [
            address.strip()
            for address in args.remote_workers.split(",")
            if address.strip()
        ]
        executor = RemoteShardExecutor(addresses)
        print(f"shard fan-out: {len(addresses)} remote socket workers")

    async def run() -> list[tuple]:
        if args.replicas > 1:
            from repro.matching import replica_group

            front = replica_group(
                name, workload.objective, args.replicas, args.delta,
                params=params, store=store, max_batch=args.max_batch,
                cache=False, executor=executor,
            )
            first = front.services[0]
        else:
            front = MatchingService(
                matcher, args.delta, store=store, max_batch=args.max_batch,
                cache=False, executor=executor,
            )
            first = front
        started = perf_counter()
        if store is not None and store.exists():
            await front.start()  # warm start, loudly verified
        else:
            await front.start(workload.repository)
        start_seconds = perf_counter() - started
        mode = "warm" if first.stats.warm_start else "cold"
        print(
            f"{mode} start in {start_seconds:.3f}s "
            f"({first.stats.matrices_restored} matrices restored), "
            f"matcher={args.matcher}, δmax={args.delta}, "
            f"replicas={args.replicas}"
        )

        async def wave(label: str) -> tuple:
            wave_started = perf_counter()
            requests = [
                front.match(query)
                for _ in range(args.repeat)
                for query in queries
            ]
            answers = await asyncio.gather(*requests)
            seconds = perf_counter() - wave_started
            verified = ""
            if args.verify:
                offline = matcher.batch_match(
                    queries, front.repository, args.delta, cache=False
                )
                expected = canonical_answers(offline) * args.repeat
                if canonical_answers(answers) != expected:
                    raise ReproError(
                        f"wave {label!r}: served answers differ from the "
                        "offline batch_match path"
                    )
                if args.replicas > 1:
                    # every replica, same bytes — the group's acceptance
                    # property, checked replica by replica
                    for query, offline_answers in zip(queries, offline):
                        per_replica = await front.match_all(query)
                        if any(
                            canonical_answers([a])
                            != canonical_answers([offline_answers])
                            for a in per_replica
                        ):
                            raise ReproError(
                                f"wave {label!r}: replicas diverge on "
                                f"query {query.schema_id!r}"
                            )
                verified = "identical"
            if args.status:
                print(f"[{label}] {front.status()}")
            return (
                label,
                len(requests),
                sum(len(answers_) for answers_ in answers),
                f"{seconds:.3f}s",
                verified,
            )

        rows = [await wave("baseline")]
        for step in range(args.deltas):
            delta = churn_delta(front.repository, args.churn, seed=step)
            report = await front.apply_delta(delta)
            rows.append(await wave(f"delta {step} ({report.summary()})"))
        if store is not None:
            await front.checkpoint()
        await front.stop()

        print()
        print(
            format_table(
                ["wave", "requests", "answers", "wall",
                 "verify" if args.verify else ""],
                rows,
                title="serving waves",
            )
        )
        if args.replicas > 1:
            group_stats = front.stats
            services = front.services
            print(
                f"\n{group_stats.served} requests round-robined over "
                f"{len(services)} replicas "
                f"(per replica: {[s.stats.requests for s in services]}); "
                f"{group_stats.deltas_logged} deltas logged and "
                f"replicated ({group_stats.digest_checks} digest checks, "
                f"{group_stats.duplicates_ignored} duplicates, "
                f"{group_stats.gaps_buffered} gaps)"
            )
        else:
            stats = front.stats
            print(
                f"\n{stats.requests} requests: {stats.served_from_state} "
                f"from retained state, {stats.coalesced} coalesced, "
                f"{stats.batched_queries} matched in {stats.batches} "
                f"micro-batches; {stats.deltas_applied} live deltas, "
                f"{stats.checkpoints_written} checkpoints written"
            )
        if store is not None:
            print(f"checkpoint: {store.root} (next serve warm-starts from it)")
        return rows

    asyncio.run(run())
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.matching.remote import WorkerServer

    server = WorkerServer(
        args.host,
        args.port,
        parallel_units=args.parallel_units,
        op_timeout=args.op_timeout,
    )
    host, port = server.address
    suffix = (
        f" ({args.parallel_units} parallel units)"
        if args.parallel_units > 1
        else ""
    )
    print(f"worker listening on {host}:{port}{suffix}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    stats = server.stats
    print(
        f"worker stopped: {stats.connections} connections, "
        f"{stats.installs} installs ({stats.installs_reused} reused), "
        f"{stats.units} units, {stats.errors} errors"
    )
    return 0


def _cmd_save_collection(directory: str, config: WorkloadConfig | None) -> int:
    from repro.evaluation import build_workload, save_collection

    workload = build_workload(config)
    path = save_collection(workload.suite, directory)
    print(
        f"saved {len(workload.repository)} schemas, {len(workload.suite)} "
        f"queries, |H| = {workload.relevant_size} to {path}"
    )
    return 0


def _cmd_show_collection(directory: str) -> int:
    from repro.evaluation import load_collection

    suite = load_collection(directory)
    stats = suite.repository.stats()
    print(f"repository : {int(stats['schemas'])} schemas, "
          f"{int(stats['elements'])} elements")
    print(f"queries    : {len(suite)}")
    print(f"|H| pooled : {suite.relevant_size}")
    for scenario in suite:
        print(
            f"  {scenario.query.schema_id}: {len(scenario.query)} elements, "
            f"|H| = {scenario.relevant_size}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = _config_from_args(args)
    try:
        if args.workers is not None or args.shards is not None:
            from repro.matching import pipeline

            pipeline.configure(
                workers=args.workers,
                **({} if args.shards is None else {"shards": args.shards}),
            )
        if args.command == "list":
            return _cmd_list()
        if args.command == "figure":
            return _cmd_figure(args.experiment_id, config)
        if args.command == "all":
            return _cmd_all(config)
        if args.command == "demo":
            return _cmd_demo(config)
        if args.command == "compare":
            return _cmd_compare(args.first, args.second, config)
        if args.command == "evolve":
            return _cmd_evolve(args, config)
        if args.command == "snapshot":
            return _cmd_snapshot(args, config)
        if args.command == "serve":
            return _cmd_serve(args, config)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "save-collection":
            return _cmd_save_collection(args.directory, config)
        if args.command == "show-collection":
            return _cmd_show_collection(args.directory)
        raise AssertionError(f"unhandled command {args.command!r}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A schema tree is malformed (duplicate ids, cycles, bad labels...)."""


class SchemaParseError(SchemaError):
    """The textual schema format could not be parsed.

    Attributes
    ----------
    line:
        1-based line number at which parsing failed, or ``None`` when the
        failure is not attributable to a single line.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SnapshotError(ReproError):
    """A persisted snapshot is unusable (corrupt, foreign, or stale).

    Raised by the snapshot store (:mod:`repro.schema.store`,
    :mod:`repro.matching.similarity.persist`) whenever loading would
    yield state that does not provably match what was saved: truncated
    or tampered payloads, unsupported format versions, digest-addressed
    files whose content hashes elsewhere, or fingerprints recorded for a
    differently configured matcher/objective.  Loading **never** falls
    back to a silent cold start — wrong warm state must be impossible,
    so every mismatch is loud.
    """


class MatchingError(ReproError):
    """A matcher was configured or invoked incorrectly."""


class TransportError(ReproError):
    """A distributed-worker transport failed or delivered unusable bytes.

    Raised by the socket worker protocol (:mod:`repro.matching.remote`)
    whenever a frame cannot be trusted or a peer is gone: truncated
    streams (EOF mid-frame), frames whose payload bytes do not hash to
    the digest in their header (tampering, bit rot, a desynchronised
    stream), oversized or foreign frames, protocol-version mismatches,
    and workers that died with units still outstanding.  Liveness
    failures surface here too: a remote op that exceeds its
    :class:`~repro.matching.remote.DeadlineBudget` deadline (the hung
    peer is treated as crashed), and a fan-out whose every worker sits
    behind an open circuit breaker (every address failed recently and
    is still cooling down).  The transport **never** degrades a damaged
    frame into an answer: a served result either round-tripped
    digest-verified or this error is raised.
    """


class ReplicationError(ReproError):
    """A replica cannot serve or advance consistently with the delta log.

    Raised by :class:`~repro.matching.replication.ReplicaGroup` when a
    replica falls behind the replicated delta log (a sequence gap means
    its repository version is stale, so serving would break the
    byte-identity guarantee — it refuses until caught up), when a
    replica is **lagging** — backpressured out of delivery because its
    bounded queue overflowed ``max_lag``, a delivery raised, or it
    outlived the group's ``settle_timeout`` (``catch_up()`` is the road
    back) — when every replica is behind, or when a replica's
    repository digest diverges from the log's authoritative digest for
    that sequence.
    """


class ObjectiveMismatchError(MatchingError):
    """Two systems that must share an objective function do not.

    The bounds technique of the paper is only sound when the improved
    system ranks answers with the *same* objective function as the original
    system (paper section 2.3).  This error signals a violated precondition.
    """


class AnswerSetError(ReproError):
    """An answer set violates its invariants (e.g. subset property)."""


class NotASubsetError(AnswerSetError):
    """The improved system produced answers outside the original answer set.

    The paper's analysis assumes ``A2 ⊆ A1`` for every threshold; when the
    assumption is violated the bounds are meaningless, so the library
    refuses to compute them.
    """


class BoundsError(ReproError):
    """Effectiveness-bound computation received inconsistent inputs."""


class ThresholdError(BoundsError):
    """A threshold schedule is not strictly increasing or is empty."""


class CurveError(ReproError):
    """A P/R curve is malformed (non-monotone recall, out-of-range values...)."""


class GroundTruthError(ReproError):
    """Ground-truth construction or lookup failed."""


class ExperimentError(ReproError):
    """An experiment harness failure (unknown figure id, bad config...)."""

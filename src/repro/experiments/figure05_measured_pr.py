"""Figure 5: the measured P/R curve of the exhaustive system S1.

The paper's Figure 5 shows S1's precision falling as recall rises over a
threshold sweep — "the natural behavior of a schema matching system is to
loose precision with rising recall".  We regenerate it by running the
exhaustive matcher over the synthetic workload and judging every
threshold against the oracle ground truth.

Expected shape: precision starts near 1 at the tightest threshold and
decays monotonically-ish while recall climbs; both the rows and an ASCII
rendition of the curve are emitted.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.incremental import SystemProfile
from repro.evaluation.workloads import WorkloadConfig
from repro.experiments.harness import (
    ExperimentResult,
    base_runs,
    register,
)
from repro.util.asciiplot import AsciiPlot, Series

__all__ = ["profile_rows"]


def profile_rows(profile: SystemProfile) -> list[tuple]:
    """(δ, |A|, |T|, precision, recall) rows of a judged profile."""
    rows = []
    for delta, counts in zip(profile.schedule, profile.counts):
        precision = counts.precision_or(Fraction(1))
        recall = counts.recall
        rows.append(
            (
                delta,
                counts.answers,
                counts.correct,
                float(precision),
                None if recall is None else float(recall),
            )
        )
    return rows


@register("fig05", "Measured P/R curve of the exhaustive system S1")
def run(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    profile = bundle.original.profile
    curve = profile.pr_curve()

    result = ExperimentResult("fig05", "Measured P/R curve of S1")
    result.notes.append(
        f"workload: {len(bundle.workload.repository)} schemas, "
        f"{len(bundle.workload.suite)} queries, pooled |H| = "
        f"{bundle.workload.relevant_size}"
    )
    result.add_table(
        "S1 measured (threshold sweep)",
        ["delta", "|A1|", "|T1|", "precision", "recall"],
        profile_rows(profile),
    )
    plot = AsciiPlot(
        width=64,
        height=18,
        title="Figure 5: S1 measured P/R curve",
        x_range=(0.0, 1.0),
        y_range=(0.0, 1.0),
    )
    plot.add(Series("S1 measured", curve.as_xy(), marker="o"))
    result.plots.append(plot.render())
    return result

"""Extended ablations: top-N bounds, estimators, tuning agreement,
random-curve confidence.

These exercise the library's extensions beyond the paper's figures, each
tied to a claim the paper makes but does not quantify:

* ``abl-topn``       — "the top-N is usually the most interesting and for
  such recall levels, we can give useful, i.e., narrow effectiveness
  bounds" (conclusion): band width versus rank cutoff.
* ``abl-estimators`` — "assess the accuracy of an effectiveness estimate"
  (introduction): point estimates between the bounds with guaranteed
  error, validated against the oracle truth.
* ``abl-tuning``     — "quick evaluation of many different parameter
  settings" (introduction): does ranking configurations by their bound-
  derived scores agree with ranking by oracle truth?  (Kendall's tau.)
* ``abl-confidence`` — section 3.4 extension: Chebyshev intervals around
  the random curve, validated by simulating actual random subsets.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.confidence import random_curve_deviation
from repro.core.estimators import estimate_curve
from repro.core.incremental import SystemProfile, compute_incremental_bounds
from repro.core.topn import default_cutoffs, topn_bounds
from repro.evaluation.validation import run_system, validate_improvement
from repro.evaluation.workloads import WorkloadConfig
from repro.experiments.harness import ExperimentResult, base_runs, register
from repro.matching.beam import BeamMatcher
from repro.matching.clustering import ClusteringMatcher
from repro.matching.hybrid import HybridMatcher
from repro.matching.random_matcher import random_subset_like
from repro.matching.topk import TopKCandidateMatcher
from repro.util.stats import kendall_tau, mean

__all__: list[str] = []


@register("abl-topn", "Band width vs top-N cutoff (narrow at the top)")
def run_topn(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    truth = bundle.workload.suite.ground_truth.mappings
    cutoffs = default_cutoffs(len(bundle.original.answers))

    result = ExperimentResult(
        "abl-topn", "Effectiveness bounds evaluated at top-N cutoffs"
    )
    for name, improved in (
        ("S2-one (beam)", bundle.beam),
        ("S2-two (clustering)", bundle.clustering),
    ):
        bounds = topn_bounds(
            bundle.original.answers, improved.answers, truth, cutoffs
        )
        rows = []
        for entry in bounds:
            width = entry.best.precision_or(Fraction(1)) - entry.worst.precision_or(
                Fraction(0)
            )
            rows.append(
                (
                    entry.original.answers,  # effective N (ties included)
                    entry.improved_answers,
                    float(entry.size_ratio),
                    float(entry.worst.precision_or(Fraction(0))),
                    float(entry.best.precision_or(Fraction(1))),
                    float(width),
                )
            )
        result.add_table(
            f"{name}: bounds at top-N of the original ranking",
            ["N (effective)", "|A2|", "ratio", "P worst", "P best", "width"],
            rows,
        )
    result.notes.append(
        "the paper's conclusion, measured: at the top of the ranking the "
        "ratio stays near 1 and the band is narrow; at deep cutoffs the "
        "band opens up"
    )
    return result


@register("abl-estimators", "Point estimates between the bounds vs oracle truth")
def run_estimators(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    result = ExperimentResult(
        "abl-estimators",
        "Guaranteed-error point estimates, validated against the oracle",
    )
    validation = validate_improvement(bundle.original, bundle.beam)
    truth_counts = [c.correct for c in bundle.beam.profile.counts]
    summary_rows = []
    for strategy in ("midpoint", "random", "pessimistic", "optimistic"):
        estimates = estimate_curve(validation.bounds, strategy)
        abs_errors = [
            abs(float(e.correct) - t) for e, t in zip(estimates, truth_counts)
        ]
        guarantee_ok = all(
            abs(float(e.correct) - t) <= float(e.max_error) + 1e-9
            for e, t in zip(estimates, truth_counts)
        )
        summary_rows.append(
            (
                strategy,
                mean(abs_errors),
                max(abs_errors),
                mean([float(e.max_error) for e in estimates]),
                "yes" if guarantee_ok else "NO",
            )
        )
    result.add_table(
        "Estimation of |T2| for S2-one across the schedule",
        [
            "strategy",
            "mean |error|",
            "max |error|",
            "mean guaranteed bound",
            "within guarantee",
        ],
        summary_rows,
    )
    result.notes.append(
        "every strategy's observed error respects its guaranteed bound; "
        "the random-curve estimate is the most accurate in practice, the "
        "midpoint has the smallest *guaranteed* error (minimax)"
    )
    return result


@register("abl-tuning", "Does tuning by bounds agree with tuning by truth?")
def run_tuning(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    workload = bundle.workload
    configurations = [
        ("beam-5", BeamMatcher(workload.objective, beam_width=5)),
        ("beam-20", BeamMatcher(workload.objective, beam_width=20)),
        ("beam-80", BeamMatcher(workload.objective, beam_width=80)),
        ("clust-1", ClusteringMatcher(workload.objective, clusters_per_element=1)),
        ("clust-3", ClusteringMatcher(workload.objective, clusters_per_element=3)),
        ("topk-3", TopKCandidateMatcher(workload.objective, candidates_per_element=3)),
        ("topk-6", TopKCandidateMatcher(workload.objective, candidates_per_element=6)),
        ("hybrid", HybridMatcher(workload.objective)),
    ]
    rows = []
    truth_scores = []
    worst_scores = []
    random_scores = []
    for name, matcher in configurations:
        run = run_system(matcher, workload.suite, workload.schedule)
        validation = validate_improvement(bundle.original, run)
        final = validation.bounds[len(validation.bounds) - 1]
        truth = run.profile.final_counts().correct
        worst = final.worst.correct
        random_expected = float(final.random_correct)
        truth_scores.append(float(truth))
        worst_scores.append(float(worst))
        random_scores.append(random_expected)
        rows.append(
            (
                name,
                final.improved_answers,
                worst,
                f"{random_expected:.1f}",
                truth,
                final.best.correct,
            )
        )
    result = ExperimentResult(
        "abl-tuning",
        "Ranking configurations by bounds vs by oracle truth (|T2| at final δ)",
    )
    result.add_table(
        "Per-configuration scores",
        ["config", "|A2|", "worst |T2|", "E[random |T2|]", "true |T2|", "best |T2|"],
        rows,
    )
    tau_worst = kendall_tau(worst_scores, truth_scores)
    tau_random = kendall_tau(random_scores, truth_scores)
    result.add_table(
        "Rank agreement with the truth (Kendall tau)",
        ["ranking basis", "tau"],
        [
            ("worst-case bound", float(tau_worst)),
            ("random-curve expectation", float(tau_random)),
        ],
    )
    result.notes.append(
        "judgment-free rankings track the oracle ranking closely — the "
        "paper's 'evaluate many parameter settings in a less costly way' "
        "use case, quantified"
    )
    return result


@register("abl-confidence", "Chebyshev intervals around the random curve")
def run_confidence(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    truth = bundle.workload.suite.ground_truth.mappings
    schedule = bundle.workload.schedule
    bounds = compute_incremental_bounds(
        bundle.original.profile, bundle.beam.sizes
    )
    deviations = random_curve_deviation(bounds, k=3.0)

    trials = 30
    coverage = [0] * len(deviations)
    for seed in range(trials):
        subset = random_subset_like(
            bundle.original.answers,
            schedule,
            list(bundle.beam.sizes.sizes),
            seed=seed,
        )
        profile = SystemProfile.from_answer_set(schedule, subset, truth)
        for i, (deviation, counts) in enumerate(
            zip(deviations, profile.counts)
        ):
            if deviation.contains(counts.correct):
                coverage[i] += 1

    result = ExperimentResult(
        "abl-confidence",
        "Random-curve concentration: guaranteed >= 8/9 coverage at k=3",
    )
    rows = []
    for deviation, covered in zip(deviations, coverage):
        rows.append(
            (
                deviation.delta,
                float(deviation.expected),
                deviation.radius,
                deviation.lower,
                deviation.upper,
                covered / trials,
            )
        )
    result.add_table(
        f"Chebyshev k=3 intervals vs {trials} simulated random runs",
        ["delta", "E[|T|]", "radius", "lower", "upper", "observed coverage"],
        rows,
    )
    result.notes.append(
        "observed coverage meets or exceeds the distribution-free 8/9 "
        "guarantee everywhere (usually by a wide margin — Chebyshev is "
        "conservative); an 'improvement' falling below the lower bound is "
        "demonstrably worse than random selection (section 3.4's premise)"
    )
    return result

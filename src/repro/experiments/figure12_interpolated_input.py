"""Figure 12: bounds computed from an *interpolated* input curve.

Section 4.1's situation: the original system's effectiveness is only
available as a published 11-point P/R curve, so the thresholds and counts
behind it are lost.  Guessing ``|H|`` turns the interpolated curve back
into a measured-style profile (``|T| = R·|H|``, ``|A| = R·|H|/P``); the
rebuilt system's answer scores then recover a threshold for each point
(the δ at which the rebuilt S1 produces that many answers), and the bound
machinery runs as usual.

The paper's Figure 12 uses ``|H| = 15000`` and finds "the effectiveness
bounds become a little bit less accurate"; it suspects "a rough estimate
suffices".  We quantify that by sweeping the guess across 0.5×, 1× and 2×
the true ``|H|`` and reporting band widths plus precision-containment of
the actual (oracle-judged) improvement at the recovered thresholds.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.answers import AnswerSet
from repro.core.bands import EffectivenessBand
from repro.core.incremental import (
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
)
from repro.core.measures import Counts
from repro.core.pr_curve import PRCurve
from repro.core.reconstruction import reconstruct_profile
from repro.core.thresholds import ThresholdSchedule
from repro.errors import ExperimentError
from repro.evaluation.workloads import WorkloadConfig
from repro.experiments.harness import ExperimentResult, base_runs, register

__all__ = ["trimmed_interpolated_curve", "recover_profile_from_curve"]


def trimmed_interpolated_curve(profile: SystemProfile) -> PRCurve:
    """The 11-point curve of a profile, minus unreached recall levels."""
    interpolated = profile.pr_curve().interpolate()
    points = [p for p in interpolated if not (p.precision == 0 and p.recall > 0)]
    if len(points) < 2:
        raise ExperimentError(
            "interpolated curve has fewer than 2 reconstructible points"
        )
    return PRCurve(points)


def recover_profile_from_curve(
    curve: PRCurve, relevant_guess: int, rebuilt_answers: AnswerSet
) -> tuple[SystemProfile, int]:
    """Measured-style S1 profile with thresholds recovered from a rebuilt run.

    Returns the profile and the number of points whose reconstructed
    answer count had to be clamped to the rebuilt system's output (a
    symptom of guessing ``|H|`` too high).
    """
    base = reconstruct_profile(curve, relevant_guess)
    scores = rebuilt_answers.scores()
    if not scores:
        raise ExperimentError("rebuilt system produced no answers to align with")
    recovered: dict[float, Counts] = {}
    clamped = 0
    for counts in base.counts:
        answers = counts.answers
        if answers <= 0:
            continue
        if answers > len(scores):
            answers = len(scores)
            clamped += 1
        delta = scores[answers - 1]
        correct = min(counts.correct, answers)
        recovered[delta] = Counts(answers, correct, relevant_guess)
    if not recovered:
        raise ExperimentError("no thresholds could be recovered from the curve")
    deltas = sorted(recovered)
    counts_list = [recovered[d] for d in deltas]
    # Force monotone counts (rounding of nearby points can create dips).
    for i in range(1, len(counts_list)):
        prev = counts_list[i - 1]
        cur = counts_list[i]
        counts_list[i] = Counts(
            max(prev.answers, cur.answers),
            max(prev.correct, cur.correct),
            relevant_guess,
        )
    return SystemProfile(ThresholdSchedule(deltas), tuple(counts_list)), clamped


@register("fig12", "Bounds from an interpolated input curve (|H| guessed)")
def run(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    true_relevant = bundle.workload.relevant_size
    curve = trimmed_interpolated_curve(bundle.original.profile)
    improved_answers = bundle.beam.answers

    result = ExperimentResult(
        "fig12", "Bands computed from the interpolated curve of Figure 6"
    )
    result.notes.append(
        f"true |H| = {true_relevant}; the paper guesses a fixed |H| and "
        "observes slightly less accurate bounds"
    )
    summary_rows = []
    for factor in (Fraction(1, 2), Fraction(1), Fraction(2)):
        guess = max(1, int(true_relevant * factor))
        profile, clamped = recover_profile_from_curve(
            curve, guess, bundle.original.answers
        )
        sizes = []
        size_clamps = 0
        for delta, counts in zip(profile.schedule, profile.counts):
            size = improved_answers.size_at(delta)
            if size > counts.answers:
                size = counts.answers
                size_clamps += 1
            sizes.append(size)
        # Monotone repair after clamping.
        for i in range(1, len(sizes)):
            sizes[i] = max(sizes[i], sizes[i - 1])
        bounds = compute_incremental_bounds(
            profile, SizeProfile(profile.schedule, tuple(sizes))
        )
        band = EffectivenessBand(bounds)
        violations = 0
        rows = []
        for entry in bounds:
            actual_counts = improved_answers.at_threshold(entry.delta)
            actual_correct = sum(
                1
                for a in actual_counts
                if a.item in bundle.workload.suite.ground_truth
            )
            actual_p = (
                Fraction(actual_correct, len(actual_counts))
                if len(actual_counts)
                else Fraction(1)
            )
            worst_p = entry.worst.precision_or(Fraction(0))
            best_p = entry.best.precision_or(Fraction(1))
            if not worst_p <= actual_p <= best_p:
                violations += 1
            rows.append(
                (
                    entry.delta,
                    entry.original.answers,
                    entry.improved_answers,
                    float(worst_p),
                    float(actual_p),
                    float(best_p),
                )
            )
        result.add_table(
            f"guess |H| = {guess} ({float(factor):.2f}x true)",
            ["delta", "|A1| rec", "|A2|", "P worst", "P actual", "P best"],
            rows,
        )
        summary_rows.append(
            (
                f"{float(factor):.2f}x",
                guess,
                float(band.mean_precision_width()),
                violations,
                clamped + size_clamps,
            )
        )
    result.add_table(
        "Sensitivity to the |H| guess",
        ["guess", "|H|", "mean P band width", "P containment violations", "clamps"],
        summary_rows,
    )
    result.notes.append(
        "a wrong |H| guess distorts the recovered thresholds and counts; "
        "band widths grow mildly, matching the paper's 'a little bit less "
        "accurate' observation.  Small violation counts occur even at the "
        "true |H| because the 11-point max-interpolation itself discards "
        "information — they stem from the reconstructed input, not from "
        "the bound logic, which the fig11 run shows is exact on measured "
        "inputs"
    )
    return result

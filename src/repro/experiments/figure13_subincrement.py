"""Figure 13: interpolation boundaries at sub-increment level.

Section 4.2's worked example: with |H| = 100, the rebuilt system has
30/50 correct/answers at δ1 and 36/70 at δ2.  At any intermediate δ′ its
P/R point is pinned onto a line segment; at 54 answers the segment runs
from (30/100, 30/54) to (34/100, 34/54).  Sweeping δ′ produces the
three-sectioned boundary of the figure and the midpoint locus — "the
safest, i.e., with smallest error, interpolation choice".

This experiment is exact: the highlighted segment is checked against the
paper's fractions and the run fails if they deviate.
"""

from __future__ import annotations

from repro.core.subincrement import SubIncrementAnalyzer
from repro.errors import ExperimentError
from repro.evaluation.workloads import WorkloadConfig
from repro.experiments.harness import ExperimentResult, register
from repro.experiments.paper_data import (
    FIGURE13_EXPECTED,
    figure13_high,
    figure13_low,
)
from repro.util.asciiplot import AsciiPlot, Series


@register("fig13", "Sub-increment interpolation boundaries (exact)")
def run(config: WorkloadConfig | None = None) -> ExperimentResult:
    analyzer = SubIncrementAnalyzer(figure13_low(), figure13_high())
    highlighted = analyzer.segment(FIGURE13_EXPECTED["intermediate_answers"])

    checks = {
        "worst recall": (highlighted.worst.recall, FIGURE13_EXPECTED["worst_recall"]),
        "worst precision": (
            highlighted.worst.precision,
            FIGURE13_EXPECTED["worst_precision"],
        ),
        "best recall": (highlighted.best.recall, FIGURE13_EXPECTED["best_recall"]),
        "best precision": (
            highlighted.best.precision,
            FIGURE13_EXPECTED["best_precision"],
        ),
    }
    for label, (got, expected) in checks.items():
        if got != expected:
            raise ExperimentError(
                f"figure 13 reproduction failed: {label} = {got}, paper says "
                f"{expected}"
            )

    result = ExperimentResult(
        "fig13", "Boundaries for interpolation between two measured points"
    )
    rows = []
    for segment in analyzer.boundary(step=2):
        mid = segment.midpoint()
        rows.append(
            (
                segment.answers,
                float(segment.worst.recall),
                float(segment.worst.precision),
                float(segment.best.recall),
                float(segment.best.precision),
                float(mid.recall),
                float(mid.precision),
            )
        )
    result.add_table(
        "Admissible segment per intermediate answer count (|H| = 100)",
        ["answers", "R worst", "P worst", "R best", "P best", "R mid", "P mid"],
        rows,
    )
    plot = AsciiPlot(
        width=64,
        height=18,
        title="Figure 13: interpolation boundaries between (30/100,30/50) "
        "and (36/100,36/70)",
        x_range=(0.28, 0.38),
        y_range=(0.4, 0.7),
    )
    plot.add(
        Series(
            "worst ends",
            [s.worst.as_tuple() for s in analyzer.boundary()],
            marker="x",
        )
    )
    plot.add(
        Series(
            "best ends",
            [s.best.as_tuple() for s in analyzer.boundary()],
            marker="+",
        )
    )
    plot.add(
        Series(
            "midpoints",
            [p.as_tuple() for p in analyzer.midpoint_locus()],
            marker=".",
        )
    )
    result.plots.append(plot.render())
    result.notes.append(
        "the highlighted δ' (54 answers) segment matches the paper exactly: "
        "(30/100, 30/54) to (34/100, 34/54); note precision can rise along "
        "the locus, as TREC-1 already observed"
    )
    result.notes.append(
        "midpoints are NOT linear interpolation between the measured points "
        "— the locus bends in three sections, and taking midpoints is the "
        "smallest-error interpolation choice"
    )
    return result

"""Experiment harness: registry, shared base runs, result rendering.

Every paper figure (and every ablation) is an *experiment*: a callable
taking a :class:`~repro.evaluation.workloads.WorkloadConfig` and
returning an :class:`ExperimentResult` of titled tables, ASCII plots and
notes.  The benchmark files and the CLI both go through
:func:`run_experiment`, so the printed output of a bench *is* the figure.

Simulation-backed figures share one expensive artifact — the exhaustive
and improved systems' runs over the workload — cached per config in
:func:`base_runs`.  The cache is in-process and keyed by the (frozen,
hashable) config, so repeated figures in one session pay for matching
once.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import ExperimentError
from repro.evaluation.validation import SystemRun, run_system
from repro.evaluation.workloads import Workload, WorkloadConfig, build_workload
from repro.matching.beam import BeamMatcher
from repro.matching.clustering import ClusteringMatcher
from repro.matching.exhaustive import ExhaustiveMatcher
from repro.matching.topk import TopKCandidateMatcher
from repro.util.tables import format_table

__all__ = [
    "ExperimentTable",
    "ExperimentResult",
    "RunBundle",
    "base_runs",
    "register",
    "run_experiment",
    "list_experiments",
]

#: Parameters of the two named improvements of the paper's Figures 10/11.
#: S2-one (smooth ratio decline) is a generous beam; S2-two (rigorous
#: pruning, top answers retained) is aggressive clustering.
S2_ONE_BEAM_WIDTH = 40
S2_TWO_CLUSTERS_PER_ELEMENT = 3
S2_EXTRA_TOPK = 6


@dataclass
class ExperimentTable:
    """One titled table of an experiment's output."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]]

    def render(self, float_digits: int = 4) -> str:
        return format_table(
            self.headers, self.rows, title=self.title, float_digits=float_digits
        )


@dataclass
class ExperimentResult:
    """Everything an experiment produces, renderable as plain text."""

    experiment_id: str
    title: str
    tables: list[ExperimentTable] = field(default_factory=list)
    plots: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_table(
        self, title: str, headers: Sequence[str], rows: list[Sequence[object]]
    ) -> None:
        self.tables.append(ExperimentTable(title, headers, rows))

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for note in self.notes:
            parts.append(f"note: {note}")
        for table in self.tables:
            parts.append(table.render())
        parts.extend(self.plots)
        return "\n\n".join(parts)


@dataclass
class RunBundle:
    """The shared simulation artifact behind figures 5, 6, 9, 10, 11, 12."""

    workload: Workload
    original: SystemRun  # S1, exhaustive
    beam: SystemRun  # "S2-one"
    clustering: SystemRun  # "S2-two"
    topk: SystemRun  # third improvement, used by ablations

    def improvements(self) -> dict[str, SystemRun]:
        return {
            "S2-one (beam)": self.beam,
            "S2-two (clustering)": self.clustering,
            "topk": self.topk,
        }


@lru_cache(maxsize=8)
def base_runs(
    config: WorkloadConfig | None = None, workers: int | None = None
) -> RunBundle:
    """Build the workload and run all systems once (cached per config).

    All four system runs go through the sharded matching pipeline:
    ``workers`` (default: the module-wide pipeline configuration, which
    the CLI's ``--workers`` flag sets) fans the per-(query, shard)
    searches out across processes, and the shared candidate cache keeps
    repeated figure invocations from re-matching.
    """
    workload = build_workload(config)
    objective = workload.objective
    original = run_system(
        ExhaustiveMatcher(objective),
        workload.suite,
        workload.schedule,
        workers=workers,
    )
    beam = run_system(
        BeamMatcher(objective, beam_width=S2_ONE_BEAM_WIDTH),
        workload.suite,
        workload.schedule,
        workers=workers,
    )
    clustering = run_system(
        ClusteringMatcher(
            objective, clusters_per_element=S2_TWO_CLUSTERS_PER_ELEMENT
        ),
        workload.suite,
        workload.schedule,
        workers=workers,
    )
    topk = run_system(
        TopKCandidateMatcher(objective, candidates_per_element=S2_EXTRA_TOPK),
        workload.suite,
        workload.schedule,
        workers=workers,
    )
    return RunBundle(
        workload=workload,
        original=original,
        beam=beam,
        clustering=clustering,
        topk=topk,
    )


ExperimentFn = Callable[[WorkloadConfig | None], ExperimentResult]
_REGISTRY: dict[str, tuple[str, ExperimentFn]] = {}


def register(experiment_id: str, title: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering an experiment under a stable id."""

    def decorate(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"experiment {experiment_id!r} already registered")
        _REGISTRY[experiment_id] = (title, fn)
        return fn

    return decorate


def list_experiments() -> list[tuple[str, str]]:
    """(id, title) of every registered experiment."""
    _ensure_loaded()
    return sorted((eid, title) for eid, (title, _) in _REGISTRY.items())


def run_experiment(
    experiment_id: str, config: WorkloadConfig | None = None
) -> ExperimentResult:
    """Run one experiment by id."""
    _ensure_loaded()
    try:
        _title, fn = _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(eid for eid, _ in list_experiments())
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return fn(config)


def _ensure_loaded() -> None:
    """Import the experiment modules so their registrations run."""
    from repro.experiments import (  # noqa: F401  (import for side effect)
        ablations,
        ablations_backends,
        ablations_extended,
        ablations_macro,
        figures,
    )

"""Verbatim constants from the paper's worked examples.

Two of the paper's figures are fully specified numeric examples rather
than measurements; their inputs live here so the experiments and the
test suite share one authoritative copy.

* **Figure 8** — incremental worst-case estimation: S1 with stable
  precision 3/8 produces 40 answers at δ1 and 72 at δ2 (so 15/25 and
  27/45 correct/incorrect); the improvement produces 32 and 48.  Expected
  worst-case precisions: 7/32 at δ1; 1/16 at δ2 naive, 7/48 incremental.
* **Figure 13** — sub-increment boundaries: |H| = 100; 30 correct among
  50 answers at δ1; 36 among 70 at δ2; an intermediate δ′ yields 54
  answers, pinning the P/R point to the segment (30/100, 30/54) —
  (34/100, 34/54).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.incremental import SizeProfile, SystemProfile
from repro.core.measures import Counts
from repro.core.thresholds import ThresholdSchedule

__all__ = [
    "FIGURE8_SCHEDULE",
    "figure8_original_profile",
    "figure8_improved_sizes",
    "FIGURE8_EXPECTED",
    "figure13_low",
    "figure13_high",
    "FIGURE13_EXPECTED",
]

# -- Figure 8 ----------------------------------------------------------------

FIGURE8_SCHEDULE = ThresholdSchedule([1.0, 2.0])

#: |H| is unknown in the example; precision-side bounds never need it.
_FIGURE8_COUNTS = (Counts(40, 15), Counts(72, 27))
_FIGURE8_IMPROVED = (32, 48)

FIGURE8_EXPECTED = {
    "worst_precision_delta1": Fraction(7, 32),
    "worst_precision_delta2_naive": Fraction(1, 16),
    "worst_precision_delta2_incremental": Fraction(7, 48),
    "original_precision": Fraction(3, 8),
    "size_ratio_delta1": Fraction(4, 5),
    "size_ratio_delta2": Fraction(2, 3),
}


def figure8_original_profile() -> SystemProfile:
    """S1 of the Figure 8 example (|H| unknown)."""
    return SystemProfile(FIGURE8_SCHEDULE, _FIGURE8_COUNTS)


def figure8_improved_sizes() -> SizeProfile:
    """S2 of the Figure 8 example."""
    return SizeProfile(FIGURE8_SCHEDULE, _FIGURE8_IMPROVED)


# -- Figure 13 ---------------------------------------------------------------

_FIGURE13_RELEVANT = 100


def figure13_low() -> Counts:
    """The δ1 measurement: 30 correct among 50 answers, |H| = 100."""
    return Counts(50, 30, _FIGURE13_RELEVANT)


def figure13_high() -> Counts:
    """The δ2 measurement: 36 correct among 70 answers, |H| = 100."""
    return Counts(70, 36, _FIGURE13_RELEVANT)


FIGURE13_EXPECTED = {
    "intermediate_answers": 54,
    "worst_recall": Fraction(30, 100),
    "worst_precision": Fraction(30, 54),
    "best_recall": Fraction(34, 100),
    "best_precision": Fraction(34, 54),
}

"""Figure 6: the 11-point interpolated P/R curve.

"The intended way of constructing a P/R curve is by determining the
precision at 11 fixed recall levels 0, 0.1, ..., 1" — constructed from
the measured curve of Figure 5 with the standard max-interpolation rule.
Recall levels the system never reaches show precision 0; the note lists
the highest attained recall.
"""

from __future__ import annotations

from repro.core.pr_curve import STANDARD_RECALL_LEVELS
from repro.evaluation.workloads import WorkloadConfig
from repro.experiments.harness import ExperimentResult, base_runs, register
from repro.util.asciiplot import AsciiPlot, Series


@register("fig06", "Interpolated 11-point P/R curve of S1")
def run(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    measured = bundle.original.profile.pr_curve()
    interpolated = measured.interpolate(STANDARD_RECALL_LEVELS)

    result = ExperimentResult("fig06", "Interpolated 11-point P/R curve of S1")
    max_recall = max(measured.recalls())
    result.notes.append(
        f"max measured recall is {max_recall:.3f}; higher recall levels get "
        "interpolated precision 0 (the system never reaches them)"
    )
    result.add_table(
        "S1 interpolated (11 recall levels)",
        ["recall level", "interpolated precision"],
        [(float(p.recall), float(p.precision)) for p in interpolated],
    )
    plot = AsciiPlot(
        width=64,
        height=18,
        title="Figure 6: S1 interpolated P/R curve",
        x_range=(0.0, 1.0),
        y_range=(0.0, 1.0),
    )
    plot.add(Series("S1 measured", measured.as_xy(), marker="."))
    plot.add(Series("S1 interpolated", interpolated.as_xy(), marker="o"))
    result.plots.append(plot.render())
    return result

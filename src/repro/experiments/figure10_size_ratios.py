"""Figure 10: measured answer-size-ratio curves of two real improvements.

The paper contrasts two improvements from its XML schema matching work:
S2-one, "a smoothly declining ratio of retrieved answers, with an
increasing threshold", and S2-two, "more rigorous in missing answers"
while "the answers with the best score still have a high chance of being
retained".  Our stand-ins with the same behavioural signatures:

* **S2-one** = a generous beam search (ratio 1 at tight thresholds,
  declining smoothly as the beam can no longer carry every candidate);
* **S2-two** = aggressive cluster-restricted search (sharp drop once
  mappings need elements outside the nominated clusters, but the
  best-scoring mappings live inside them and survive).
"""

from __future__ import annotations

from repro.core.size_ratio import SizeRatioCurve
from repro.evaluation.workloads import WorkloadConfig
from repro.experiments.harness import ExperimentResult, base_runs, register
from repro.util.asciiplot import AsciiPlot, Series


@register("fig10", "Answer-size-ratio curves of two improvements")
def run(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    original = bundle.original
    curves = {
        "S2-one (beam)": SizeRatioCurve.from_profiles(
            original.profile, bundle.beam.sizes
        ),
        "S2-two (clustering)": SizeRatioCurve.from_profiles(
            original.profile, bundle.clustering.sizes
        ),
    }

    result = ExperimentResult(
        "fig10", "Measured answer-size ratios Â of S2-one and S2-two"
    )
    for name, curve in curves.items():
        result.add_table(
            f"{name}: |A2|/|A1| per threshold",
            ["delta", "|A1|", "|A2|", "ratio", "increment ratio"],
            curve.rows(),
        )
    plot = AsciiPlot(
        width=64,
        height=18,
        title="Figure 10: answer size ratio vs threshold",
        x_range=(
            bundle.workload.schedule[0],
            bundle.workload.schedule.final,
        ),
        y_range=(0.0, 1.0),
    )
    plot.add(Series("S2-one (beam)", curves["S2-one (beam)"].as_xy(), marker="o"))
    plot.add(
        Series(
            "S2-two (clustering)",
            curves["S2-two (clustering)"].as_xy(),
            marker="x",
        )
    )
    result.plots.append(plot.render())
    result.notes.append(
        "expected shape: S2-one declines smoothly from 1; S2-two drops "
        "sharply but keeps the best-scoring answers (ratio 1 at the "
        "tightest thresholds)"
    )
    return result

"""Figure 9: best/worst-case P/R band for a fixed answer-size ratio 0.9.

"Figure 9 shows the resulting effectiveness bounds for a hypothetical
system S2 that behaves with a fixed answer size ratio 0.9 for each
threshold δ.  In other words, it misses the same fraction of answers for
all increments."  We synthesise that hypothetical S2 from S1's measured
profile — per increment, keep 90% (rounded) of S1's answers — and run the
incremental bound computation.

Expected shape: a narrow band hugging S1's curve (Â close to 1 means
close to certainty; at Â = 1 the band collapses onto S1 exactly).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.bands import EffectivenessBand
from repro.core.incremental import (
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
)
from repro.evaluation.workloads import WorkloadConfig
from repro.experiments.harness import ExperimentResult, base_runs, register
from repro.core.report import render_band_plot

__all__ = ["fixed_ratio_sizes"]

FIXED_RATIO = Fraction(9, 10)


def fixed_ratio_sizes(
    original: SystemProfile, ratio: Fraction = FIXED_RATIO
) -> SizeProfile:
    """An S2 size profile missing the same fraction of every increment."""
    sizes = []
    total = 0
    for increment in original.increments():
        kept = round(increment.answers * ratio)
        kept = min(kept, increment.answers)
        total += kept
        sizes.append(total)
    return SizeProfile(original.schedule, tuple(sizes))


@register("fig09", "Best/worst case P/R band for fixed ratio 0.9")
def run(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    original = bundle.original.profile
    improved = fixed_ratio_sizes(original)
    bounds = compute_incremental_bounds(original, improved)
    band = EffectivenessBand(bounds)

    result = ExperimentResult(
        "fig09", "Effectiveness band for a hypothetical S2 with Â = 0.9"
    )
    rows = []
    for entry in bounds:
        best = entry.best_point()
        worst = entry.worst_point()
        s1 = entry.original_point()
        rows.append(
            (
                entry.delta,
                float(entry.size_ratio),
                float(s1.recall),
                float(s1.precision),
                float(worst.recall),
                float(worst.precision),
                float(best.recall),
                float(best.precision),
            )
        )
    result.add_table(
        "Band at each threshold",
        ["delta", "ratio", "R S1", "P S1", "R worst", "P worst", "R best", "P best"],
        rows,
    )
    result.plots.append(
        render_band_plot(
            band,
            title="Figure 9: band for fixed ratio 0.9",
            include_random=False,
        )
    )
    result.notes.append(
        f"mean precision band width: {float(band.mean_precision_width()):.4f} "
        "(narrow, as the paper shows for Â close to 1)"
    )
    return result

"""Ablation: micro- vs macro-averaged effectiveness and bounds.

The paper's P/R figures pool all matching problems into one evaluation
(micro-averaging).  The standard alternative weights every query equally
(macro-averaging, as in the schema-matching evaluation comparisons the
paper cites).  The bounds technique applies either way — per query, each
improved run is a subset of its exhaustive run — and this ablation shows
both views side by side, with the macro band verified to bracket the
macro truth.
"""

from __future__ import annotations

from fractions import Fraction

from repro.evaluation.macro import (
    macro_bound_rows,
    macro_pr_rows,
    per_query_bounds,
    per_query_runs,
)
from repro.evaluation.workloads import WorkloadConfig
from repro.experiments.harness import ExperimentResult, base_runs, register
from repro.matching.beam import BeamMatcher
from repro.matching.exhaustive import ExhaustiveMatcher

__all__: list[str] = []


@register("abl-macro", "Micro vs macro averaging, with macro bounds")
def run_macro(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    workload = bundle.workload
    original_runs = per_query_runs(
        ExhaustiveMatcher(workload.objective), workload.suite, workload.schedule
    )
    improved_runs = per_query_runs(
        BeamMatcher(workload.objective, beam_width=40),
        workload.suite,
        workload.schedule,
    )

    result = ExperimentResult(
        "abl-macro", "Micro vs macro effectiveness of S1 and macro bounds for S2-one"
    )
    micro_rows = []
    for delta, counts in zip(workload.schedule, bundle.original.profile.counts):
        micro_rows.append(
            (
                delta,
                float(counts.precision_or(Fraction(1))),
                float(counts.recall or 0),
            )
        )
    macro_rows = macro_pr_rows(original_runs)
    combined = [
        (delta, micro_p, macro_p, micro_r, macro_r)
        for (delta, micro_p, micro_r), (_d, macro_p, macro_r) in zip(
            micro_rows, macro_rows
        )
    ]
    result.add_table(
        "S1: micro vs macro averaging",
        ["delta", "P micro", "P macro", "R micro", "R macro"],
        combined,
    )

    bounds = per_query_bounds(original_runs, improved_runs)
    bound_rows = macro_bound_rows(bounds)
    truth_rows = macro_pr_rows(improved_runs)
    table = []
    violations = 0
    for (delta, p_worst, p_best, r_worst, r_best), (_d, p, r) in zip(
        bound_rows, truth_rows
    ):
        if not (p_worst - 1e-9 <= p <= p_best + 1e-9):
            violations += 1
        table.append((delta, p_worst, p, p_best, r_worst, r, r_best))
    result.add_table(
        "S2-one: macro bounds vs macro truth",
        ["delta", "P worst", "P actual", "P best", "R worst", "R actual", "R best"],
        table,
    )
    result.notes.append(
        f"macro containment violations: {violations} (0 expected — each "
        "per-query band contains its query's truth, so the averages nest)"
    )
    result.notes.append(
        "macro precision runs higher than micro at loose thresholds: "
        "queries with few candidate matches keep high per-query precision, "
        "while the pooled view is dominated by the noisiest queries"
    )
    return result

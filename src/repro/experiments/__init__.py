"""Experiment harness: every paper figure and ablation as a runnable unit.

Use :func:`~repro.experiments.harness.run_experiment` with an id from
:func:`~repro.experiments.harness.list_experiments`::

    from repro.experiments import run_experiment
    print(run_experiment("fig11").render())

Figure experiments (``fig05`` ... ``fig13``) regenerate the paper's
evaluation artifacts; ``abl-*`` experiments are this reproduction's
ablations.  See DESIGN.md for the per-experiment index.
"""

from repro.experiments.harness import (
    ExperimentResult,
    ExperimentTable,
    RunBundle,
    base_runs,
    list_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "ExperimentTable",
    "RunBundle",
    "base_runs",
    "list_experiments",
    "run_experiment",
]

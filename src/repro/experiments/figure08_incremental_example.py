"""Figure 8: the incremental worst-case estimation example.

The paper's fully-specified numeric example: S1 has stable precision 3/8
and produces 40/72 answers at δ1/δ2; the improvement produces 32/48.
Treating each threshold independently gives worst-case precisions 7/32
and 1/16 — but the 1/16 is inconsistent with the 7 correct answers
already guaranteed at δ1, and the increment-by-increment computation
tightens it to 7/48.  This experiment replays the example with the
library's naive and incremental engines and checks every value against
the paper's fractions (it raises if any deviates — this figure is exact,
not statistical).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.incremental import compute_incremental_bounds, compute_naive_bounds
from repro.errors import ExperimentError
from repro.evaluation.workloads import WorkloadConfig
from repro.experiments.harness import ExperimentResult, register
from repro.experiments.paper_data import (
    FIGURE8_EXPECTED,
    figure8_improved_sizes,
    figure8_original_profile,
)
from repro.util.fractions_ext import format_fraction


@register("fig08", "Incremental worst-case estimation example (exact)")
def run(config: WorkloadConfig | None = None) -> ExperimentResult:
    original = figure8_original_profile()
    improved = figure8_improved_sizes()
    naive = compute_naive_bounds(original, improved)
    incremental = compute_incremental_bounds(original, improved)

    naive_p = [e.worst.precision_or(Fraction(0)) for e in naive]
    incremental_p = [e.worst.precision_or(Fraction(0)) for e in incremental]

    checks = {
        "worst P(δ1)": (naive_p[0], FIGURE8_EXPECTED["worst_precision_delta1"]),
        "worst P(δ1) incremental": (
            incremental_p[0],
            FIGURE8_EXPECTED["worst_precision_delta1"],
        ),
        "worst P(δ2) naive": (
            naive_p[1],
            FIGURE8_EXPECTED["worst_precision_delta2_naive"],
        ),
        "worst P(δ2) incremental": (
            incremental_p[1],
            FIGURE8_EXPECTED["worst_precision_delta2_incremental"],
        ),
    }
    for label, (got, expected) in checks.items():
        if got != expected:
            raise ExperimentError(
                f"figure 8 reproduction failed: {label} = {got}, "
                f"paper says {expected}"
            )

    result = ExperimentResult(
        "fig08", "Incremental worst-case estimation (paper's exact numbers)"
    )
    result.add_table(
        "Inputs (Figure 8 left: S1, right: S2)",
        ["threshold", "|A1|", "|T1|", "|A1 incorrect|", "|A2|", "ratio"],
        [
            (
                "δ1",
                original.counts[0].answers,
                original.counts[0].correct,
                original.counts[0].incorrect,
                improved.sizes[0],
                float(FIGURE8_EXPECTED["size_ratio_delta1"]),
            ),
            (
                "δ2",
                original.counts[1].answers,
                original.counts[1].correct,
                original.counts[1].incorrect,
                improved.sizes[1],
                float(FIGURE8_EXPECTED["size_ratio_delta2"]),
            ),
        ],
    )
    result.add_table(
        "Worst-case precision of S2 (all values match the paper exactly)",
        ["threshold", "naive (per-threshold)", "incremental", "paper"],
        [
            (
                "δ1",
                format_fraction(naive_p[0]),
                format_fraction(incremental_p[0]),
                "7/32 (21.9%)",
            ),
            (
                "δ2",
                format_fraction(naive_p[1]),
                format_fraction(incremental_p[1]),
                "1/16 naive, 7/48 (14.6%) incremental",
            ),
        ],
    )
    result.notes.append(
        "the naive δ2 bound (1/16) contradicts the 7 correct answers already "
        "guaranteed among the first 32; computing increment-by-increment "
        "repairs this to 7/48 — the gain in accuracy of section 3.2"
    )
    return result

"""Ablation experiments beyond the paper's figures.

The paper motivates its technique with use cases it never quantifies:
evaluating "many different parameter settings ... in a less costly way",
robustness to imperfect inputs, and the relation to pooling.  These
ablations fill that in on the synthetic testbed:

* ``abl-increments`` — bound tightness versus threshold granularity
  (how fast the incremental bounds converge as the schedule refines);
* ``abl-hsize``    — section 4.1 sensitivity: reconstruction error and
  band width across |H| guesses;
* ``abl-matchers`` — the efficiency/effectiveness trade-off sweep over
  matcher parameters, bounded without judging any improved run;
* ``abl-pooling``  — TREC-style pooling estimates versus exact bounds on
  identical runs;
* ``abl-noise``    — what happens when the *input* S1 curve was judged
  noisily (the bounds are exact only relative to their input);
* ``abl-scaling``  — pure-math cost of the bound computation as the
  schedule grows (it is linear; the expensive part is always matching).
"""

from __future__ import annotations

import time
from fractions import Fraction

from repro.core.bands import EffectivenessBand
from repro.core.incremental import (
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
    compute_naive_bounds,
)
from repro.core.measures import Counts
from repro.core.reconstruction import reconstruction_error
from repro.core.thresholds import ThresholdSchedule
from repro.evaluation.judge import NoisyJudge
from repro.evaluation.pooling import build_pool, pooled_counts
from repro.evaluation.validation import run_system, validate_improvement
from repro.evaluation.workloads import WorkloadConfig
from repro.experiments.harness import (
    ExperimentResult,
    base_runs,
    register,
)
from repro.matching.beam import BeamMatcher
from repro.matching.clustering import ClusteringMatcher
from repro.matching.topk import TopKCandidateMatcher
from repro.util import rng as rng_util

__all__: list[str] = []


@register("abl-increments", "Bound tightness vs threshold granularity")
def run_increments(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    truth = bundle.workload.suite.ground_truth.mappings
    fine = ThresholdSchedule.from_answer_scores(bundle.original.answers, 32)

    result = ExperimentResult(
        "abl-increments", "Precision band width vs number of increments"
    )
    rows = []
    for keep_every in (32, 16, 8, 4, 2, 1):
        schedule = fine.coarsen(keep_every)
        original = SystemProfile.from_answer_set(
            schedule, bundle.original.answers, truth
        )
        improved = SizeProfile.from_answer_set(schedule, bundle.beam.answers)
        incremental = compute_incremental_bounds(original, improved)
        naive = compute_naive_bounds(original, improved)
        # Compare at the shared final threshold so rows are commensurable:
        # the naive bound there ignores the schedule, the incremental one
        # tightens as increments refine.
        last_incremental = incremental[len(incremental) - 1]
        last_naive = naive[len(naive) - 1]
        width = lambda entry: float(  # noqa: E731 - tiny local accessor
            entry.best.precision_or(Fraction(1))
            - entry.worst.precision_or(Fraction(0))
        )
        rows.append(
            (
                len(schedule),
                width(last_naive),
                width(last_incremental),
                width(last_naive) - width(last_incremental),
            )
        )
    result.add_table(
        "Band width at the final threshold, by schedule granularity (S2-one)",
        ["thresholds", "naive width", "incremental width", "gain"],
        rows,
    )
    result.notes.append(
        "incremental bounds tighten monotonically with finer schedules and "
        "never lose to the naive per-threshold bounds (Figure 8's lesson, "
        "measured)"
    )
    return result


@register("abl-hsize", "Section 4.1 sensitivity to the |H| guess")
def run_hsize(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    true_relevant = bundle.workload.relevant_size

    result = ExperimentResult(
        "abl-hsize", "Reconstruction error across |H| guesses"
    )
    rows = []
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
        guess = max(1, int(true_relevant * factor))
        errors = reconstruction_error(bundle.original.profile, guess)
        mean_dp = sum((e[1] for e in errors), Fraction(0)) / len(errors)
        max_dp = max(e[1] for e in errors)
        rows.append((f"{factor:.2f}x", guess, float(mean_dp), float(max_dp)))
    result.add_table(
        "Round-trip precision error (measured -> bare curve -> reconstruct)",
        ["guess", "|H|", "mean |dP|", "max |dP|"],
        rows,
    )
    result.notes.append(
        "with the true |H| the round-trip is exact (error 0); rough guesses "
        "cost only rounding-level precision error, supporting the paper's "
        "suspicion that 'a rough estimate suffices'"
    )
    return result


@register("abl-matchers", "Efficiency/effectiveness sweep over matcher parameters")
def run_matchers(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    workload = bundle.workload
    original = bundle.original

    sweeps = [
        ("beam", BeamMatcher, "beam_width", (5, 10, 20, 40, 80)),
        (
            "clustering",
            ClusteringMatcher,
            "clusters_per_element",
            (1, 2, 3, 4),
        ),
        ("topk", TopKCandidateMatcher, "candidates_per_element", (2, 4, 6, 8)),
    ]
    result = ExperimentResult(
        "abl-matchers",
        "Bounded trade-off: one judged S1 run evaluates every parameter",
    )
    for family, factory, param_name, values in sweeps:
        rows = []
        for value in values:
            matcher = factory(workload.objective, **{param_name: value})
            started = time.perf_counter()
            run = run_system(matcher, workload.suite, workload.schedule)
            elapsed = time.perf_counter() - started
            validation = validate_improvement(original, run)
            final = validation.bounds[len(validation.bounds) - 1]
            actual = run.profile.final_counts()
            rows.append(
                (
                    value,
                    elapsed,
                    final.improved_answers,
                    float(validation.ratio.mean_ratio()),
                    float(validation.band.guaranteed_recall_at_precision(0.5)),
                    float(final.worst.precision_or(Fraction(0))),
                    float(actual.precision_or(Fraction(1))),
                    float(final.best.precision_or(Fraction(1))),
                    "yes" if validation.sound else "NO",
                )
            )
        result.add_table(
            f"{family}: sweep over {param_name}",
            [
                param_name,
                "seconds",
                "|A2| final",
                "mean ratio",
                "recall@P>=.5",
                "P worst",
                "P actual",
                "P best",
                "contained",
            ],
            rows,
        )
    result.notes.append(
        "every row's guarantees come from answer sizes alone; the 'P actual' "
        "column (oracle-judged) is the validation the paper could not afford "
        "and always lies within [P worst, P best]"
    )
    return result


@register("abl-pooling", "TREC-style pooling estimates vs exact bounds")
def run_pooling(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    truth = bundle.workload.suite.ground_truth.mappings
    final_delta = bundle.workload.schedule.final
    participants = [
        bundle.original.answers,
        bundle.beam.answers,
        bundle.clustering.answers,
        bundle.topk.answers,
    ]
    validation = validate_improvement(bundle.original, bundle.beam)
    final_bounds = validation.bounds[len(validation.bounds) - 1]
    true_counts = bundle.beam.profile.final_counts()

    result = ExperimentResult(
        "abl-pooling", "Pooling estimates for S2-one vs guaranteed bounds"
    )
    rows = []
    for depth in (10, 30, 100, 300):
        pool = build_pool(participants, depth=depth)
        pooled = pooled_counts(
            bundle.beam.answers.at_threshold(final_delta), pool, truth
        )
        rows.append(
            (
                depth,
                len(pool),
                pooled.relevant,
                float(pooled.precision_or(Fraction(1))),
                None if pooled.recall is None else float(pooled.recall),
            )
        )
    result.add_table(
        "Pooled estimates at the final threshold",
        ["pool depth", "pool size", "pooled |H|", "pooled P", "pooled R"],
        rows,
    )
    result.add_table(
        "Reference: truth and bounds at the final threshold",
        ["true |H|", "true P", "true R", "P worst", "P best"],
        [
            (
                true_counts.relevant,
                float(true_counts.precision_or(Fraction(1))),
                float(true_counts.recall or 0),
                float(final_bounds.worst.precision_or(Fraction(0))),
                float(final_bounds.best.precision_or(Fraction(1))),
            )
        ],
    )
    result.notes.append(
        "shallow pools under-judge |H|, inflating pooled recall and "
        "deflating pooled precision; the bounds cost no judgments of S2 at "
        "all and are guaranteed, complementing pooling's estimates"
    )
    return result


def _noisy_profile(
    bundle, flip_probability: float, seed: int
) -> SystemProfile:
    """S1's profile as a noisy judge would have measured it."""
    judge = NoisyJudge(
        bundle.workload.suite.ground_truth, flip_probability, seed
    )
    answers = bundle.original.answers
    final = answers.at_threshold(bundle.workload.schedule.final)
    relevant = sum(
        1 for item in bundle.workload.suite.ground_truth if judge.is_correct(item)
    )
    relevant += sum(
        1
        for a in final
        if a.item not in bundle.workload.suite.ground_truth
        and judge.is_correct(a.item)
    )
    counts = []
    for delta in bundle.workload.schedule:
        at = answers.at_threshold(delta)
        correct = sum(1 for a in at if judge.is_correct(a.item))
        counts.append(Counts(len(at), min(correct, relevant), relevant))
    return SystemProfile(bundle.workload.schedule, tuple(counts))


@register("abl-noise", "Bound validity under a noisy input curve")
def run_noise(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    improved = bundle.beam

    result = ExperimentResult(
        "abl-noise",
        "Bounds are exact relative to their input: noisy S1 judgments "
        "propagate",
    )
    rows = []
    for flip in (0.0, 0.02, 0.05, 0.10, 0.20):
        profile = (
            bundle.original.profile
            if flip == 0.0
            else _noisy_profile(bundle, flip, seed=rng_util.seed_from(77, flip))
        )
        bounds = compute_incremental_bounds(profile, improved.sizes)
        violations = 0
        for entry, actual in zip(bounds, improved.profile.counts):
            actual_p = actual.precision_or(Fraction(1))
            if not (
                entry.worst.precision_or(Fraction(0))
                <= actual_p
                <= entry.best.precision_or(Fraction(1))
            ):
                violations += 1
        band = EffectivenessBand(bounds)
        rows.append(
            (
                flip,
                profile.relevant,
                float(band.mean_precision_width()),
                violations,
                len(bounds),
            )
        )
    result.add_table(
        "Precision containment of the true S2-one under noisy S1 judgments",
        ["flip rate", "judged |H|", "mean width", "violations", "thresholds"],
        rows,
    )
    result.notes.append(
        "with a perfect input curve containment is guaranteed; as judgment "
        "noise grows the computed band drifts off the true counts — the "
        "technique is exact, but only relative to the effectiveness figures "
        "it is fed (paper section 1: measures 'are expected to carry over')"
    )
    return result


@register("abl-scaling", "Cost of the bound computation itself")
def run_scaling(config: WorkloadConfig | None = None) -> ExperimentResult:
    result = ExperimentResult(
        "abl-scaling", "Pure-math scalability of compute_incremental_bounds"
    )
    rows = []
    for thresholds in (10, 100, 1000, 5000):
        generator = rng_util.make_tagged(rng_util.seed_from(5, thresholds))
        schedule = ThresholdSchedule.linear(0.01, 1.0, thresholds)
        answers = 0
        correct = 0
        improved_total = 0
        pairs = []
        sizes = []
        for _ in range(thresholds):
            grow = generator.randint(1, 50)
            good = generator.randint(0, grow)
            answers += grow
            correct += good
            pairs.append((answers, correct))
            improved_total += generator.randint(0, grow)  # per-increment subset
            sizes.append(improved_total)
        relevant = 2 * correct  # one shared |H| for the whole profile
        counts = [Counts(a, t, relevant) for a, t in pairs]
        profile = SystemProfile(schedule, tuple(counts))
        improved = SizeProfile(schedule, tuple(sizes))
        started = time.perf_counter()
        compute_incremental_bounds(profile, improved)
        elapsed = time.perf_counter() - started
        rows.append((thresholds, answers, elapsed * 1000))
    result.add_table(
        "Runtime of the incremental bound computation (synthetic profiles)",
        ["thresholds", "|A1| final", "milliseconds"],
        rows,
    )
    result.notes.append(
        "the bound computation is linear in the schedule length and "
        "independent of |A|; all experimental cost lives in the matching "
        "substrate, which is the paper's point — the technique is cheap"
    )
    return result

"""Figure 11: best/worst/random P/R bands for S2-one and S2-two.

The paper's central experimental figure: for both improvements, the
best- and worst-case curves demarcate where the true P/R curve must lie,
and the random-selection curve (section 3.4) provides the practically
tighter lower bound.  The paper could only *assert* the true curve lies
inside; the synthetic testbed knows the ground truth, so this experiment
additionally **verifies containment** and prints the actual measured
curve of each improvement alongside its band — the reproduction's
headline check.

Also reproduced: the paper's guarantee reading ("for recall levels up to
0.15, S2-one guarantees a worst case precision of 0.5" and "precision of
0.5 is maintained up to a recall of 0.35" under the random-case reading)
— our numeric levels differ with the substrate, but both readings are
computed and printed.
"""

from __future__ import annotations

from fractions import Fraction

from repro.evaluation.validation import SystemRun, validate_improvement
from repro.evaluation.workloads import WorkloadConfig
from repro.experiments.harness import ExperimentResult, base_runs, register
from repro.core.report import render_band_plot


def _band_rows(validation) -> list[tuple]:
    rows = []
    for entry, actual in zip(validation.bounds, validation.improved.profile.counts):
        worst = entry.worst_point()
        best = entry.best_point()
        random_point = entry.random_point()
        actual_p = actual.precision_or(Fraction(1))
        actual_r = actual.recall
        rows.append(
            (
                entry.delta,
                float(entry.size_ratio),
                float(worst.precision),
                float(random_point.precision),
                float(actual_p),
                float(best.precision),
                float(worst.recall),
                float(random_point.recall),
                None if actual_r is None else float(actual_r),
                float(best.recall),
            )
        )
    return rows


def _analyse(result: ExperimentResult, name: str, original, improved: SystemRun):
    validation = validate_improvement(original, improved)
    result.add_table(
        f"{name}: band vs actual (P and R per threshold)",
        [
            "delta",
            "ratio",
            "P worst",
            "P rand",
            "P actual",
            "P best",
            "R worst",
            "R rand",
            "R actual",
            "R best",
        ],
        _band_rows(validation),
    )
    result.plots.append(
        render_band_plot(validation.band, title=f"Figure 11 ({name})")
    )
    contained = "contained" if validation.sound else "VIOLATED"
    result.notes.append(f"{name}: actual P/R curve is {contained} in its band")
    for level in (Fraction(3, 4), Fraction(1, 2)):
        recall = validation.band.guaranteed_recall_at_precision(level)
        result.notes.append(
            f"{name}: worst-case precision >= {float(level):.2f} guaranteed "
            f"up to recall {float(recall):.3f}"
        )
    return validation


@register("fig11", "Best/worst/random bands for S2-one and S2-two")
def run(config: WorkloadConfig | None = None) -> ExperimentResult:
    bundle = base_runs(config)
    result = ExperimentResult(
        "fig11",
        "Effectiveness bands for the two improvements (+ containment check)",
    )
    _analyse(result, "S2-one (beam)", bundle.original, bundle.beam)
    _analyse(result, "S2-two (clustering)", bundle.original, bundle.clustering)
    result.notes.append(
        "the bands are wide at high recall (the paper: 'for all we know, "
        "S2-one may in fact behave close to its worst case') but narrow "
        "at the top of the ranking, where the random-case curve tightens "
        "the practical lower bound further"
    )
    return result

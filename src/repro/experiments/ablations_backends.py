"""Backend ablation: which similarity backend wins where, and do the
bounds hold inside every backend family?

The registry's backend variants (``bm25``, ``dense``, ``ensemble``) are
alternative *name planes* for the objective — different definitions of
"these two labels look alike".  Two questions follow:

* ``abl-backends`` — per **vocabulary-mutation profile** (how queries
  diverge from their sources: synonyms, typos, abbreviations), which
  backend family finds the ground truth best?  The profiles pull in
  different directions by construction: synonym renames are invisible to
  every surface metric but the thesaurus-armed lexical blend; typos
  garble word tokens (BM25's unit) but leave most character n-grams
  (the dense scorer's unit) intact; abbreviations shorten tokens past
  whole-word overlap.  The table reports oracle micro-averaged P/R/F1
  per (profile, family) plus the per-profile winner.
* The **bounds check**: the paper's technique never compares across
  objectives, but *within* each backend family an improvement's answer
  set is still a subset of its exhaustive baseline's — so the bounds
  must hold there too.  A beam search over each family's derived
  objective is validated against that family's exhaustive run.
"""

from __future__ import annotations

from repro.evaluation.scenario import build_scenarios
from repro.evaluation.validation import run_system, validate_improvement
from repro.evaluation.workloads import WorkloadConfig, build_workload
from repro.experiments.harness import ExperimentResult, register
from repro.matching.beam import BeamMatcher
from repro.matching.exhaustive import ExhaustiveMatcher
from repro.matching.registry import make_matcher
from repro.schema.mutations import MutationConfig

__all__: list[str] = []

#: the vocabulary-mutation profiles of the ablation; each stresses one
#: way a personal schema's labels drift from the repository's
MUTATION_PROFILES: list[tuple[str, MutationConfig]] = [
    ("default", MutationConfig()),
    (
        "synonym-heavy",
        MutationConfig(synonym_probability=0.9, typo_probability=0.02),
    ),
    (
        "typo-heavy",
        MutationConfig(synonym_probability=0.2, typo_probability=0.4),
    ),
    (
        "abbrev-heavy",
        MutationConfig(synonym_probability=0.2, abbreviation_probability=0.7),
    ),
]

#: the backend families under test — registry names; "exhaustive" is the
#: established lexical blend (the default backend)
BACKEND_FAMILIES = ["exhaustive", "bm25", "dense", "ensemble"]

#: beam width of the per-family bounds validation
FAMILY_BEAM_WIDTH = 8


def _family_label(name: str) -> str:
    return "lexical" if name == "exhaustive" else name


@register("abl-backends", "Similarity backends across vocabulary-mutation profiles")
def run_backends(config: WorkloadConfig | None = None) -> ExperimentResult:
    config = config or WorkloadConfig()
    workload = build_workload(config)
    # the profile sweep re-derives the query suite per mutation mix; a
    # handful of queries per profile is enough for a stable winner and
    # keeps the 4 x 4 (profile x family) exhaustive grid affordable
    num_queries = min(config.num_queries, 6)

    result = ExperimentResult(
        "abl-backends",
        "Oracle effectiveness of the backend families per mutation profile",
    )

    winners = []
    for profile_name, mutation in MUTATION_PROFILES:
        suite = build_scenarios(
            workload.repository,
            num_queries=num_queries,
            query_size=config.query_size,
            seed=config.query_seed,
            mutation=mutation,
        )
        rows = []
        best: tuple[float, str] | None = None
        for family in BACKEND_FAMILIES:
            matcher = make_matcher(family, workload.objective)
            run = run_system(matcher, suite, workload.schedule)
            counts = run.profile.final_counts()
            precision = counts.correct / counts.answers if counts.answers else 0.0
            recall = counts.correct / suite.relevant_size
            f1 = (
                2 * precision * recall / (precision + recall)
                if precision + recall
                else 0.0
            )
            rows.append(
                (
                    _family_label(family),
                    counts.answers,
                    counts.correct,
                    precision,
                    recall,
                    f1,
                )
            )
            if best is None or f1 > best[0]:
                best = (f1, _family_label(family))
        assert best is not None
        winners.append((profile_name, best[1], best[0]))
        result.add_table(
            f"profile {profile_name!r}: |H|={suite.relevant_size}, "
            f"final δ={workload.schedule.final}",
            ["backend", "|A|", "|T|", "P", "R", "F1"],
            rows,
        )

    result.add_table(
        "Winner per mutation profile (by F1 at the final threshold)",
        ["profile", "winning backend", "F1"],
        winners,
    )

    # bounds validation inside each family: a beam improvement over the
    # family's own derived objective, against that family's exhaustive
    # baseline — subset containment and band soundness must hold exactly
    # as they do for the lexical original
    bounds_rows = []
    for family in BACKEND_FAMILIES:
        objective = make_matcher(family, workload.objective).objective
        original = run_system(
            ExhaustiveMatcher(objective), workload.suite, workload.schedule
        )
        improved = run_system(
            BeamMatcher(objective, beam_width=FAMILY_BEAM_WIDTH),
            workload.suite,
            workload.schedule,
        )
        validation = validate_improvement(original, improved)
        final = validation.bounds[len(validation.bounds) - 1]
        bounds_rows.append(
            (
                _family_label(family),
                final.original.answers,
                final.improved_answers,
                final.worst.correct,
                improved.profile.final_counts().correct,
                final.best.correct,
                "yes" if validation.sound else "NO",
            )
        )
    result.add_table(
        f"Per-family bounds: beam (width {FAMILY_BEAM_WIDTH}) vs the "
        "family's exhaustive baseline",
        ["family", "|A1|", "|A2|", "worst |T2|", "true |T2|", "best |T2|", "sound"],
        bounds_rows,
    )
    result.notes.append(
        "backends are compared by the oracle, never by the bounds — the "
        "bounds technique only relates systems sharing one objective, so "
        "each family gets its own exhaustive baseline and the band is "
        "checked within it"
    )
    return result

"""Aggregator importing every figure experiment so registration runs.

Importing this module (directly or through the harness) registers
``fig05`` ... ``fig13`` in the experiment registry.  Figures 1-4 and 7 of
the paper are notation/Venn diagrams with no data series; they are
covered by the documentation and the unit tests of the corresponding
definitions rather than by experiments.
"""

from repro.experiments import (  # noqa: F401  (imports register experiments)
    figure05_measured_pr,
    figure06_interpolated_pr,
    figure08_incremental_example,
    figure09_fixed_ratio,
    figure10_size_ratios,
    figure11_bounds_two_systems,
    figure12_interpolated_input,
    figure13_subincrement,
)

__all__: list[str] = []

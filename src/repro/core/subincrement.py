"""Sub-increment interpolation bounds (paper section 4.2, Figure 13).

Between two judged thresholds δ1 and δ2, a rebuilt system may be probed
at intermediate thresholds δ′ where no quality measurement exists.  With
``n`` answers at δ′ (``a1 ≤ n ≤ a2``), the ``n − a1`` new answers contain
between ``max(0, (n−a1) − incorrectₓ)`` and ``min(n−a1, correctₓ)`` true
positives, where correctₓ/incorrectₓ are the increment's totals.  Each
``n`` therefore pins the unknown P/R point onto a *line segment*; the
family of segments over ``n`` demarcates where interpolation between the
two measured points may legally land, and the paper observes that the
midpoints of those segments are the safest interpolation choice.

The worked example (|H| = 100, 30/50 at δ1, 36/70 at δ2, δ′ with 54
answers ⇒ segment from (30/100, 30/54) to (34/100, 34/54)) is asserted
exactly by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.measures import Counts
from repro.core.pr_curve import PRPoint
from repro.errors import BoundsError

__all__ = ["SubIncrementSegment", "SubIncrementAnalyzer"]


@dataclass(frozen=True)
class SubIncrementSegment:
    """The admissible P/R segment at one intermediate answer count ``n``."""

    answers: int
    worst: PRPoint
    best: PRPoint

    def midpoint(self) -> PRPoint:
        """The segment midpoint — the paper's safest interpolation choice."""
        return PRPoint(
            recall=(self.worst.recall + self.best.recall) / 2,
            precision=(self.worst.precision + self.best.precision) / 2,
        )

    def contains(self, correct: int, relevant: int) -> bool:
        """Whether a true positive count ``correct`` lies on the segment."""
        if relevant <= 0:
            raise BoundsError("relevant must be positive")
        recall = Fraction(correct, relevant)
        return self.worst.recall <= recall <= self.best.recall


class SubIncrementAnalyzer:
    """Bounds for thresholds between two judged measurement points."""

    def __init__(self, low: Counts, high: Counts):
        if low.relevant is None or high.relevant is None:
            raise BoundsError("sub-increment analysis requires known |H|")
        if low.relevant != high.relevant:
            raise BoundsError("both endpoints must agree on |H|")
        if high.answers < low.answers or high.correct < low.correct:
            raise BoundsError(
                f"endpoints must be ordered by threshold: {low} -> {high}"
            )
        self.low = low
        self.high = high
        self.relevant: int = low.relevant

    @property
    def increment_correct(self) -> int:
        return self.high.correct - self.low.correct

    @property
    def increment_incorrect(self) -> int:
        return (self.high.answers - self.low.answers) - self.increment_correct

    def correct_range(self, answers: int) -> tuple[int, int]:
        """(worst, best) true-positive counts at an intermediate size.

        ``answers`` is the rebuilt system's output size at δ′ and must lie
        within [|A(δ1)|, |A(δ2)|].
        """
        if not self.low.answers <= answers <= self.high.answers:
            raise BoundsError(
                f"intermediate answer count {answers} outside "
                f"[{self.low.answers}, {self.high.answers}]"
            )
        extra = answers - self.low.answers
        worst = self.low.correct + max(0, extra - self.increment_incorrect)
        best = self.low.correct + min(extra, self.increment_correct)
        return worst, best

    def _point(self, correct: int, answers: int) -> PRPoint:
        precision = (
            Fraction(1) if answers == 0 else Fraction(correct, answers)
        )
        recall = (
            Fraction(1)
            if self.relevant == 0
            else Fraction(correct, self.relevant)
        )
        return PRPoint(recall=recall, precision=precision)

    def segment(self, answers: int) -> SubIncrementSegment:
        """The admissible segment for an intermediate answer count."""
        worst_correct, best_correct = self.correct_range(answers)
        return SubIncrementSegment(
            answers=answers,
            worst=self._point(worst_correct, answers),
            best=self._point(best_correct, answers),
        )

    def boundary(self, step: int = 1) -> list[SubIncrementSegment]:
        """Segments for every intermediate size (Figure 13's thick lines).

        ``step`` thins the family for plotting; the two endpoint sizes
        are always included, where the segment degenerates to the
        measured point.
        """
        if step < 1:
            raise BoundsError(f"step must be >= 1, got {step}")
        sizes = list(range(self.low.answers, self.high.answers + 1, step))
        if sizes[-1] != self.high.answers:
            sizes.append(self.high.answers)
        return [self.segment(n) for n in sizes]

    def midpoint_locus(self, step: int = 1) -> list[PRPoint]:
        """The safest-interpolation polyline (Figure 13's small dots)."""
        return [segment.midpoint() for segment in self.boundary(step)]

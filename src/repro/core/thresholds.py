"""Threshold schedules and increments (paper sections 2.1 and 3.2).

A measured P/R curve is produced "by varying the threshold"; the
incremental bound computation then works increment-by-increment, an
increment being the answers strictly above one threshold and at most the
next (``δ_i < Δ(a) <= δ_{i+1}``).  :class:`ThresholdSchedule` is the
strictly-increasing list of thresholds shared by every curve and bound in
one analysis.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.core.answers import AnswerSet
from repro.errors import ThresholdError

__all__ = ["ThresholdSchedule"]


class ThresholdSchedule:
    """A strictly increasing, non-empty sequence of thresholds.

    The implicit zeroth increment runs from *below all scores* up to the
    first threshold, matching the paper's ``0 − δ1`` increment.
    """

    def __init__(self, deltas: Iterable[float]):
        values = [float(d) for d in deltas]
        if not values:
            raise ThresholdError("a threshold schedule must not be empty")
        for left, right in zip(values, values[1:]):
            if not right > left:
                raise ThresholdError(
                    f"thresholds must be strictly increasing; {right!r} follows {left!r}"
                )
        self._deltas: tuple[float, ...] = tuple(values)

    @classmethod
    def linear(cls, start: float, stop: float, count: int) -> "ThresholdSchedule":
        """``count`` evenly spaced thresholds from ``start`` to ``stop``."""
        if count < 1:
            raise ThresholdError(f"count must be >= 1, got {count!r}")
        if count == 1:
            return cls([stop])
        step = (stop - start) / (count - 1)
        return cls([start + i * step for i in range(count)])

    @classmethod
    def from_answer_scores(
        cls, answer_set: AnswerSet, count: int
    ) -> "ThresholdSchedule":
        """Quantile-based schedule: thresholds at evenly spaced score ranks.

        This is how a practitioner picks thresholds from a pilot run of
        the exhaustive system so every increment holds a comparable number
        of answers.
        """
        scores = answer_set.scores()
        if not scores:
            raise ThresholdError("cannot derive thresholds from an empty answer set")
        if count < 1:
            raise ThresholdError(f"count must be >= 1, got {count!r}")
        distinct = sorted(set(scores))
        if count >= len(distinct):
            return cls(distinct)
        picked = []
        for i in range(1, count + 1):
            idx = round(i * (len(distinct) - 1) / count)
            picked.append(distinct[idx])
        return cls(sorted(set(picked)))

    def __len__(self) -> int:
        return len(self._deltas)

    def __iter__(self) -> Iterator[float]:
        return iter(self._deltas)

    def __getitem__(self, index: int) -> float:
        return self._deltas[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ThresholdSchedule):
            return NotImplemented
        return self._deltas == other._deltas

    def __hash__(self) -> int:
        return hash(self._deltas)

    @property
    def deltas(self) -> tuple[float, ...]:
        return self._deltas

    @property
    def final(self) -> float:
        """The largest threshold (the δ the whole analysis runs up to)."""
        return self._deltas[-1]

    def increments(self) -> list[tuple[float | None, float]]:
        """``(δ_low, δ_high)`` pairs; the first pair has ``δ_low=None``.

        ``None`` encodes the paper's start-of-scale (all scores above it),
        so the increments partition ``A^{δ_n}`` exactly.
        """
        pairs: list[tuple[float | None, float]] = [(None, self._deltas[0])]
        pairs.extend(zip(self._deltas, self._deltas[1:]))
        return pairs

    def prefix(self, count: int) -> "ThresholdSchedule":
        """Schedule of the first ``count`` thresholds."""
        if not 1 <= count <= len(self._deltas):
            raise ThresholdError(
                f"prefix length must be in 1..{len(self._deltas)}, got {count!r}"
            )
        return ThresholdSchedule(self._deltas[:count])

    def coarsen(self, keep_every: int) -> "ThresholdSchedule":
        """Keep every k-th threshold (always keeping the last).

        Used by the ablation that studies bound tightness versus schedule
        granularity.
        """
        if keep_every < 1:
            raise ThresholdError(f"keep_every must be >= 1, got {keep_every!r}")
        kept = list(self._deltas[keep_every - 1 :: keep_every])
        if not kept or kept[-1] != self._deltas[-1]:
            kept.append(self._deltas[-1])
        return ThresholdSchedule(kept)

    @staticmethod
    def validate_alignment(
        schedule: "ThresholdSchedule", values: Sequence[object], what: str
    ) -> None:
        """Check a per-threshold value sequence matches the schedule length."""
        if len(values) != len(schedule):
            raise ThresholdError(
                f"{what} has {len(values)} entries but the schedule has "
                f"{len(schedule)} thresholds"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThresholdSchedule({len(self._deltas)} deltas, "
            f"{self._deltas[0]:.4f}..{self._deltas[-1]:.4f})"
        )

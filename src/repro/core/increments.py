"""Increment-level precision and recall (paper section 3.2, Equations 7-8).

An *increment* ``δ1 − δ2`` contains the answers ranked strictly worse
than δ1 and at least as well as δ2: ``Â^{δ1−δ2}_S = A^{δ2}_S \\ A^{δ1}_S``.
Increments have their own precision and recall, derivable either from the
counts directly or — Equations 7 and 8 — from the threshold-level P/R
values alone:

    P̂ = (R2 − R1) / (R2/P2 − R1/P1)        (Eq. 7; independent of |H|)
    R̂ = R2 − R1                            (Eq. 8)

The recombination (the inverse direction: threshold P/R from increment
P/R) is what step 4 of the incremental algorithm uses.

Count space is primary in this library; the P/R-space forms exist because
they are what one can compute from *published* figures, and tests verify
the two agree.  Note the P/R-space forms need ``R/P = |A|/|H|`` to be
well-defined: a threshold with answers but zero correct ones (P = R = 0)
hides ``|A|``, and these functions raise in that case.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.measures import Counts
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError
from repro.util.fractions_ext import as_fraction

__all__ = [
    "IncrementPR",
    "increment_recall",
    "increment_precision",
    "combine_increment_pr",
    "increments_of_profile",
    "recombine_profile",
]


@dataclass(frozen=True)
class IncrementPR:
    """Precision and recall of one increment (both exact rationals).

    ``precision`` is ``None`` for an empty increment (0/0).
    """

    recall: Fraction
    precision: Fraction | None

    def __post_init__(self) -> None:
        if not 0 <= self.recall <= 1:
            raise BoundsError(f"increment recall must be in [0,1], got {self.recall}")
        if self.precision is not None and not 0 <= self.precision <= 1:
            raise BoundsError(
                f"increment precision must be in [0,1], got {self.precision}"
            )


def increment_recall(
    recall_low: Fraction | float, recall_high: Fraction | float
) -> Fraction:
    """Equation 8: ``R̂^{δ1−δ2} = R^{δ2} − R^{δ1}``."""
    r_low = as_fraction(recall_low)
    r_high = as_fraction(recall_high)
    if r_high < r_low:
        raise BoundsError(
            f"recall must not decrease with the threshold: {r_high} < {r_low}"
        )
    return r_high - r_low


def _answers_over_h(recall: Fraction, precision: Fraction) -> Fraction:
    """``|A|/|H| = R/P`` — derivable from a P/R point only when P > 0."""
    if precision == 0:
        if recall != 0:
            raise BoundsError("inconsistent P/R point: P = 0 but R > 0")
        raise BoundsError(
            "cannot derive |A|/|H| from a point with P = R = 0; "
            "the answer-set size is hidden (use count-space inputs)"
        )
    return recall / precision


def increment_precision(
    recall_low: Fraction | float,
    precision_low: Fraction | float,
    recall_high: Fraction | float,
    precision_high: Fraction | float,
) -> Fraction | None:
    """Equation 7: increment precision from two threshold-level P/R points.

    Returns ``None`` when the increment is empty (identical ``|A|/|H|`` at
    both ends).  The result is independent of ``|H|``, as the paper notes.

    The low endpoint ``(0, anything)`` denotes the start of the scale
    (empty answer set): ``|A|/|H| = 0`` there, so pass ``precision_low=1``.
    """
    r_low, p_low = as_fraction(recall_low), as_fraction(precision_low)
    r_high, p_high = as_fraction(recall_high), as_fraction(precision_high)
    a_low = Fraction(0) if r_low == 0 and p_low > 0 else _answers_over_h(r_low, p_low)
    a_high = _answers_over_h(r_high, p_high) if not (r_high == 0 and p_high > 0) else Fraction(0)
    denom = a_high - a_low
    if denom < 0:
        raise BoundsError(
            "answer sets must grow with the threshold "
            f"(|A|/|H| fell from {a_low} to {a_high})"
        )
    if denom == 0:
        return None
    return (r_high - r_low) / denom


def combine_increment_pr(
    recall_low: Fraction | float,
    precision_low: Fraction | float,
    increment: IncrementPR,
) -> tuple[Fraction, Fraction]:
    """Step-4 recombination: P/R at δ2 from P/R at δ1 plus the increment.

    Inverts Equations 7/8: ``R2 = R1 + R̂`` and
    ``R2/P2 = R1/P1 + R̂/P̂`` (sizes add).  An increment with no correct
    answers (P̂ = 0 with R̂ = 0) cannot use Eq. 7 directly — the paper's
    special case — and is handled via the size identity with the
    increment's ``|Â|/|H|`` encoded as ``precision=None`` being rejected:
    callers with empty increments simply keep the previous point.
    """
    r_low, p_low = as_fraction(recall_low), as_fraction(precision_low)
    if increment.precision is None:
        raise BoundsError(
            "cannot recombine an empty increment; keep the previous point instead"
        )
    r_high = r_low + increment.recall
    a_low = Fraction(0) if r_low == 0 else r_low / p_low
    if increment.precision == 0:
        if increment.recall != 0:
            raise BoundsError("increment with P̂=0 must have R̂=0")
        raise BoundsError(
            "increment with zero precision hides its size; recombine in count "
            "space (paper section 3.2, step 4 special case)"
        )
    a_high = a_low + increment.recall / increment.precision
    if a_high == 0:
        return r_high, Fraction(1)
    p_high = r_high / a_high
    return r_high, p_high


def increments_of_profile(
    schedule: ThresholdSchedule, counts: list[Counts]
) -> list[Counts]:
    """Per-increment counts from per-threshold counts (count space).

    Entry i covers the increment ending at ``schedule[i]``; the first
    entry covers the paper's ``0 − δ1`` increment.
    """
    ThresholdSchedule.validate_alignment(schedule, counts, "counts")
    previous = Counts(0, 0, counts[0].relevant)
    out = []
    for count in counts:
        out.append(count.subtract(previous))
        previous = count
    return out


def recombine_profile(increment_counts: list[Counts]) -> list[Counts]:
    """Inverse of :func:`increments_of_profile`: cumulative sums."""
    if not increment_counts:
        return []
    total = Counts(0, 0, increment_counts[0].relevant)
    out = []
    for inc in increment_counts:
        total = total.add(inc)
        out.append(total)
    return out

"""|H|-free relative bounds (library extension beyond the paper).

The paper's large-scale setting leaves ``|H|`` unknown, which blocks
absolute recall.  Precision bounds never needed ``|H|``; and *relative*
recall — the fraction of S1's true positives that S2 retains,
``|T2^δ| / |T1^δ|`` — doesn't either, because the unknown ``|H|``
cancels: ``R2/R1 = |T2|/|T1|``.  Relative recall is exactly the quantity
behind the paper's conclusion-section claim "the trade-off in
effectiveness for an efficiency improvement is at most x%", so we expose
it as a first-class result usable when no ground-truth size estimate
exists at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.incremental import IncrementalBounds
from repro.errors import BoundsError

__all__ = ["RelativeBoundsEntry", "relative_bounds"]


@dataclass(frozen=True)
class RelativeBoundsEntry:
    """Relative-recall bounds at one threshold.

    ``None`` bounds mean S1 had no true positives yet (0/0: S2 has lost
    nothing because there was nothing to lose).
    """

    delta: float
    worst_relative_recall: Fraction | None
    best_relative_recall: Fraction | None
    worst_precision: Fraction
    best_precision: Fraction

    @property
    def max_recall_loss(self) -> Fraction | None:
        """Worst-case fraction of S1's true positives lost: ``1 − worst``."""
        if self.worst_relative_recall is None:
            return None
        return 1 - self.worst_relative_recall


def relative_bounds(bounds: IncrementalBounds) -> list[RelativeBoundsEntry]:
    """Relative-recall and precision bounds per threshold, no ``|H|`` needed."""
    entries = []
    for entry in bounds:
        t1 = entry.original.correct
        if t1 == 0:
            worst_rel: Fraction | None = None
            best_rel: Fraction | None = None
        else:
            worst_rel = Fraction(entry.worst.correct, t1)
            best_rel = Fraction(entry.best.correct, t1)
            if worst_rel > best_rel:  # impossible by construction; assert-grade
                raise BoundsError("internal error: worst bound exceeds best bound")
        entries.append(
            RelativeBoundsEntry(
                delta=entry.delta,
                worst_relative_recall=worst_rel,
                best_relative_recall=best_rel,
                worst_precision=entry.worst.precision_or(Fraction(0)),
                best_precision=entry.best.precision_or(Fraction(1)),
            )
        )
    return entries

"""Concentration bounds for the random-system curve (section 3.4 extension).

Equations 9-10 give the random system's *expected* P/R.  An actual run of
``S_random`` fluctuates around that expectation; how far?  Per increment,
keeping ``a2`` of ``a1`` answers containing ``t1`` correct ones is a
hypergeometric draw with variance

    Var = a2 · (t1/a1) · (1 − t1/a1) · (a1 − a2)/(a1 − 1)

and increments are drawn independently, so variances add.  Chebyshev's
inequality then turns the summed variance into a distribution-free
confidence interval for the random system's true-positive count — useful
for the paper's third use case ("assess the accuracy of an effectiveness
estimate"): if a claimed improvement's count falls below the random
system's lower confidence bound, it is *worse than random selection* with
quantifiable confidence, contradicting the section 3.4 assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.core.incremental import IncrementalBounds
from repro.errors import BoundsError

__all__ = ["RandomDeviation", "random_curve_deviation"]


def _increment_variance(a1: int, t1: int, a2: int) -> Fraction:
    """Hypergeometric variance of correct answers kept from one increment."""
    if a1 <= 1 or a2 == 0 or t1 == 0 or t1 == a1:
        return Fraction(0)
    p = Fraction(t1, a1)
    return a2 * p * (1 - p) * Fraction(a1 - a2, a1 - 1)


@dataclass(frozen=True)
class RandomDeviation:
    """Expected correct count of S_random with a Chebyshev interval."""

    delta: float
    expected: Fraction
    variance: Fraction
    k: float

    @property
    def radius(self) -> float:
        """± deviation at the chosen k (confidence >= 1 − 1/k²)."""
        return self.k * math.sqrt(float(self.variance))

    @property
    def lower(self) -> float:
        return max(0.0, float(self.expected) - self.radius)

    @property
    def upper(self) -> float:
        return float(self.expected) + self.radius

    @property
    def confidence(self) -> float:
        """Chebyshev guarantee: P(inside) >= this value."""
        return max(0.0, 1.0 - 1.0 / (self.k * self.k))

    def contains(self, correct: float) -> bool:
        return self.lower <= correct <= self.upper


def random_curve_deviation(
    bounds: IncrementalBounds, k: float = 3.0
) -> list[RandomDeviation]:
    """Per-threshold Chebyshev intervals around the random curve.

    ``k`` is the number of standard deviations; ``k = 3`` guarantees at
    least 8/9 coverage without any distributional assumption.  Variances
    are exact rationals accumulated across the (independent) increments.
    """
    if k <= 0:
        raise BoundsError(f"k must be positive, got {k!r}")
    original_increments = bounds.original.increments()
    improved_increment_sizes = bounds.improved.increment_sizes()
    out: list[RandomDeviation] = []
    variance_total = Fraction(0)
    for entry, inc1, inc2_size in zip(
        bounds, original_increments, improved_increment_sizes
    ):
        variance_total += _increment_variance(
            inc1.answers, inc1.correct, inc2_size
        )
        out.append(
            RandomDeviation(
                delta=entry.delta,
                expected=entry.random_correct,
                variance=variance_total,
                k=k,
            )
        )
    return out

"""The hypothetical random system (paper section 3.4, Equations 9-10).

``S_random`` executes S1 and, per increment, keeps a uniformly random
subset of the answers, sized to match the improvement S2 under study
(same answer-size-ratio curve).  Random selection preserves the
correct/incorrect mix in expectation, so per increment:

    P̂_random = P̂_S1                               (Eq. 9)
    R̂_random = R̂_S1 · (|Â_random| / |Â_S1|)        (Eq. 10)

Any *realistic* improvement should beat random selection, which makes the
random curve a practically tighter lower bound than the adversarial worst
case (the paper's Figure 11 discussion).

Count space: the expected number of correct answers kept from an
increment with ``t1`` correct among ``a1``, when ``a2`` are kept, is
``t1 · a2 / a1`` — an exact rational, kept as :class:`~fractions.Fraction`.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import BoundsError
from repro.util.fractions_ext import as_fraction

__all__ = [
    "random_increment_precision",
    "random_increment_recall",
    "expected_correct",
]


def random_increment_precision(
    original_increment_precision: Fraction | float,
) -> Fraction:
    """Equation 9: the random system's increment precision equals S1's."""
    p = as_fraction(original_increment_precision)
    if not 0 <= p <= 1:
        raise BoundsError(f"precision must be in [0,1], got {p}")
    return p


def random_increment_recall(
    original_increment_recall: Fraction | float,
    size_ratio: Fraction | float,
) -> Fraction:
    """Equation 10: recall shrinks proportionally to the kept fraction."""
    r = as_fraction(original_increment_recall)
    ratio = as_fraction(size_ratio)
    if not 0 <= r <= 1:
        raise BoundsError(f"recall must be in [0,1], got {r}")
    if not 0 <= ratio <= 1:
        raise BoundsError(f"size ratio must be in [0,1], got {ratio}")
    return r * ratio


def expected_correct(
    original_answers: int, original_correct: int, kept_answers: int
) -> Fraction:
    """Expected correct answers among ``kept_answers`` random picks.

    Hypergeometric expectation: ``t1 · a2 / a1``.  An empty source
    increment yields 0.
    """
    if min(original_answers, original_correct, kept_answers) < 0:
        raise BoundsError("counts must be non-negative")
    if original_correct > original_answers:
        raise BoundsError(
            f"|T|={original_correct} cannot exceed |A|={original_answers}"
        )
    if kept_answers > original_answers:
        raise BoundsError(
            f"cannot keep {kept_answers} answers from {original_answers}"
        )
    if original_answers == 0:
        return Fraction(0)
    return Fraction(original_correct * kept_answers, original_answers)

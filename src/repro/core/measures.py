"""Precision and recall (paper section 2.2, Figure 2).

Counts are kept as exact integers and the derived measures as exact
:class:`fractions.Fraction` values: the bounds technique is advertised as
"an analytical and exact result", and exactness is what lets the test
suite assert the paper's worked examples to the digit (7/32, 7/48, ...).

Precision of an empty answer set is undefined (0/0); :class:`Counts`
exposes it as ``None`` and callers choose a convention explicitly where
needed.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass
from fractions import Fraction

from repro.core.answers import AnswerSet
from repro.errors import BoundsError

__all__ = ["Counts", "measure", "f_score"]


@dataclass(frozen=True)
class Counts:
    """The size triple behind a P/R point: ``|A|``, ``|T|``, ``|H|``.

    ``answers``  — answers produced (``|A^δ_S|``)
    ``correct``  — true positives (``|T^δ_S| = |H ∩ A^δ_S|``)
    ``relevant`` — size of the human ground truth (``|H|``); ``None`` when
    unknown, which is the paper's large-scale situation — precision is
    still available, recall is not.
    """

    answers: int
    correct: int
    relevant: int | None = None

    def __post_init__(self) -> None:
        if self.answers < 0:
            raise BoundsError(f"answers must be >= 0, got {self.answers}")
        if self.correct < 0:
            raise BoundsError(f"correct must be >= 0, got {self.correct}")
        if self.correct > self.answers:
            raise BoundsError(
                f"correct ({self.correct}) cannot exceed answers ({self.answers})"
            )
        if self.relevant is not None:
            if self.relevant < 0:
                raise BoundsError(f"relevant must be >= 0, got {self.relevant}")
            if self.correct > self.relevant:
                raise BoundsError(
                    f"correct ({self.correct}) cannot exceed relevant "
                    f"({self.relevant})"
                )

    @property
    def incorrect(self) -> int:
        """False positives: ``|A| − |T|``."""
        return self.answers - self.correct

    @property
    def precision(self) -> Fraction | None:
        """``|T| / |A|``, or ``None`` for an empty answer set."""
        if self.answers == 0:
            return None
        return Fraction(self.correct, self.answers)

    @property
    def recall(self) -> Fraction | None:
        """``|T| / |H|``, or ``None`` when ``|H|`` is unknown.

        A ground truth of size 0 makes every system trivially complete;
        recall is defined as 1 in that degenerate case.
        """
        if self.relevant is None:
            return None
        if self.relevant == 0:
            return Fraction(1)
        return Fraction(self.correct, self.relevant)

    def precision_or(self, default: Fraction) -> Fraction:
        """Precision with an explicit empty-set convention."""
        value = self.precision
        return default if value is None else value

    def with_relevant(self, relevant: int) -> "Counts":
        """The same counts with ``|H|`` filled in."""
        return Counts(self.answers, self.correct, relevant)

    def subtract(self, earlier: "Counts") -> "Counts":
        """Increment counts between an earlier (lower) threshold and this one.

        ``|Â^{δ1−δ2}| = |A^{δ2}| − |A^{δ1}|`` and likewise for correct
        answers (paper section 3.2).
        """
        if earlier.relevant != self.relevant:
            raise BoundsError("increment endpoints disagree on |H|")
        if earlier.answers > self.answers or earlier.correct > self.correct:
            raise BoundsError(
                "threshold counts must be monotone: "
                f"{earlier} does not precede {self}"
            )
        return Counts(
            self.answers - earlier.answers,
            self.correct - earlier.correct,
            self.relevant,
        )

    def add(self, other: "Counts") -> "Counts":
        """Union of two disjoint increments."""
        if other.relevant != self.relevant:
            raise BoundsError("cannot add counts that disagree on |H|")
        return Counts(
            self.answers + other.answers,
            self.correct + other.correct,
            self.relevant,
        )

    def __str__(self) -> str:
        h = "?" if self.relevant is None else str(self.relevant)
        return f"Counts(|A|={self.answers}, |T|={self.correct}, |H|={h})"


def measure(
    answer_set: AnswerSet, ground_truth: Iterable[Hashable]
) -> Counts:
    """Count true positives of an answer set against a ground truth ``H``."""
    truth = frozenset(ground_truth)
    correct = sum(1 for answer in answer_set if answer.item in truth)
    return Counts(answers=len(answer_set), correct=correct, relevant=len(truth))


def f_score(counts: Counts, beta: float = 1.0) -> Fraction | None:
    """F-measure from counts; ``None`` when precision or recall is undefined.

    Not used by the paper's technique itself but standard in matching
    evaluations (Do/Melnik/Rahm), and handy in the ablation reports.
    """
    precision = counts.precision
    recall = counts.recall
    if precision is None or recall is None:
        return None
    if precision == 0 and recall == 0:
        return Fraction(0)
    beta_sq = Fraction(beta).limit_denominator(10**6) ** 2
    return (1 + beta_sq) * precision * recall / (beta_sq * precision + recall)

"""Scored answer sets (paper section 2.1).

A schema matching system searches a space ``SS`` of possible mappings and
scores each with an objective function Δ (lower = better).  The *answer
set* at threshold δ is ``A^δ_S = {a ∈ SS | Δ(a) ≤ δ}`` — Figure 1 of the
paper.  :class:`AnswerSet` captures exactly that structure for arbitrary
hashable items (the paper notes elements of the search space "can in fact
be anything such as images, documents, etc."), with efficient threshold
slicing and the subset checks the bounds technique rests on.
"""

from __future__ import annotations

import bisect
from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass
from operator import attrgetter
from typing import TypeVar

from repro.errors import AnswerSetError, NotASubsetError

#: sort key of every answer ordering (attrgetter: one C call per element)
_BY_SCORE = attrgetter("score")

__all__ = ["Answer", "AnswerSet"]

ItemT = TypeVar("ItemT", bound=Hashable)


@dataclass(frozen=True)
class Answer:
    """One scored element of the search space."""

    item: Hashable
    score: float

    def __post_init__(self) -> None:
        if self.score != self.score:  # NaN
            raise AnswerSetError(f"answer score must not be NaN (item {self.item!r})")


class AnswerSet:
    """An immutable set of scored answers, ordered by ascending score.

    Ties in score are allowed (the paper explicitly keeps the system
    "indecisive" on ties); within a tie the order is unspecified but
    deterministic for a given construction order.

    The class guarantees item uniqueness — a mapping appears at most once.
    """

    def __init__(self, answers: Iterable[Answer]):
        ordered = sorted(answers, key=_BY_SCORE)
        items = frozenset(a.item for a in ordered)
        if len(items) != len(ordered):  # rebuild stepwise to name the culprit
            seen: set[Hashable] = set()
            for answer in ordered:
                if answer.item in seen:
                    raise AnswerSetError(
                        f"duplicate answer item {answer.item!r} in answer set"
                    )
                seen.add(answer.item)
        self._answers: tuple[Answer, ...] = tuple(ordered)
        self._scores: list[float] = [a.score for a in ordered]
        self._items: frozenset[Hashable] = items

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Hashable, float]]) -> "AnswerSet":
        """Build from ``(item, score)`` pairs."""
        return cls(Answer(item, score) for item, score in pairs)

    @classmethod
    def empty(cls) -> "AnswerSet":
        return cls(())

    def __len__(self) -> int:
        return len(self._answers)

    def __iter__(self) -> Iterator[Answer]:
        return iter(self._answers)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._items

    def answers(self) -> tuple[Answer, ...]:
        """All answers in score order."""
        return self._answers

    def items(self) -> frozenset:
        """The set of answer items (identity for subset comparisons)."""
        return self._items

    def scores(self) -> list[float]:
        """All scores in ascending order."""
        return list(self._scores)

    def score_of(self, item: Hashable) -> float:
        """Score of a specific item."""
        for answer in self._answers:
            if answer.item == item:
                return answer.score
        raise AnswerSetError(f"item {item!r} not in answer set")

    # -- threshold structure (Figure 1) ---------------------------------

    def size_at(self, delta: float) -> int:
        """``|A^δ|``: number of answers with score <= δ, in O(log n)."""
        return bisect.bisect_right(self._scores, delta)

    def at_threshold(self, delta: float) -> "AnswerSet":
        """``A^δ``: the sub-answer-set with score <= δ."""
        count = self.size_at(delta)
        return AnswerSet(self._answers[:count])

    def increment(self, delta_low: float | None, delta_high: float) -> "AnswerSet":
        """Answers with ``δ_low < Δ(a) <= δ_high`` (paper section 3.2).

        ``delta_low=None`` means the increment starts below every score
        (the paper's ``0 − δ1`` increment; scores may be negative in other
        retrieval settings, hence ``None`` rather than literal 0).
        """
        start = 0 if delta_low is None else bisect.bisect_right(self._scores, delta_low)
        end = bisect.bisect_right(self._scores, delta_high)
        if end < start:
            raise AnswerSetError(
                f"increment bounds are reversed: {delta_low!r} > {delta_high!r}"
            )
        return AnswerSet(self._answers[start:end])

    def top_n(self, n: int) -> "AnswerSet":
        """The n best-scoring answers (ties broken by construction order)."""
        if n < 0:
            raise AnswerSetError(f"n must be >= 0, got {n!r}")
        return AnswerSet(self._answers[:n])

    def min_score(self) -> float:
        if not self._answers:
            raise AnswerSetError("empty answer set has no min score")
        return self._scores[0]

    def max_score(self) -> float:
        if not self._answers:
            raise AnswerSetError("empty answer set has no max score")
        return self._scores[-1]

    # -- set relations ----------------------------------------------------

    def is_subset_of(self, other: "AnswerSet") -> bool:
        """True when every item here also appears in ``other``."""
        return self._items <= other._items

    def check_subset_of(self, other: "AnswerSet", label: str = "improved") -> None:
        """Raise :class:`NotASubsetError` when the subset property fails.

        The bounds technique requires ``A2^δ ⊆ A1^δ`` (paper section 2.3);
        this is the guard every analysis entry point runs.
        """
        extra = self._items - other._items
        if extra:
            sample = next(iter(extra))
            raise NotASubsetError(
                f"{label} system produced {len(extra)} answer(s) outside the "
                f"original answer set, e.g. {sample!r}; the effectiveness-bounds "
                "technique requires both systems to share the objective function"
            )

    def check_scores_match(self, other: "AnswerSet") -> None:
        """Verify shared items carry identical scores in both sets.

        Same objective function ⇒ same score for the same mapping; a
        mismatch means the 'improvement' re-ranked answers and the
        technique's assumptions are violated.
        """
        other_scores = {a.item: a.score for a in other._answers}
        for answer in self._answers:
            expected = other_scores.get(answer.item)
            if expected is not None and expected != answer.score:
                raise NotASubsetError(
                    f"item {answer.item!r} scored {answer.score!r} by one system "
                    f"but {expected!r} by the other; objective functions differ"
                )

    def restrict_to(self, items: Iterable[Hashable]) -> "AnswerSet":
        """Sub-answer-set containing only the given items (scores kept)."""
        wanted = set(items)
        return AnswerSet(a for a in self._answers if a.item in wanted)

    def union(self, other: "AnswerSet") -> "AnswerSet":
        """Union by item; scores must agree on overlap."""
        self.check_scores_match(other)
        merged = {a.item: a for a in self._answers}
        for answer in other._answers:
            merged.setdefault(answer.item, answer)
        return AnswerSet(merged.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._answers:
            return "AnswerSet(empty)"
        return (
            f"AnswerSet(n={len(self)}, scores {self._scores[0]:.4f}"
            f"..{self._scores[-1]:.4f})"
        )

"""Effectiveness bands: the best/worst(/random) P/R envelope (section 3.3).

An :class:`EffectivenessBand` packages the curves demarcating where the
improved system's true P/R curve must lie, answers the paper's style of
guarantee queries ("worst-case precision 0.5 is maintained up to recall
0.15"), and — when a judged run of the improved system *is* available,
as it is on our synthetic testbed — verifies containment exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.incremental import IncrementalBounds, SystemProfile
from repro.core.pr_curve import PRCurve
from repro.errors import BoundsError

__all__ = ["EffectivenessBand", "ContainmentEntry", "ContainmentReport"]


@dataclass(frozen=True)
class ContainmentEntry:
    """Containment check outcome at one threshold (exact, count-level)."""

    delta: float
    actual_correct: int
    worst_correct: int
    best_correct: int

    @property
    def contained(self) -> bool:
        return self.worst_correct <= self.actual_correct <= self.best_correct


@dataclass(frozen=True)
class ContainmentReport:
    """Per-threshold containment of an actual judged run inside the band."""

    entries: tuple[ContainmentEntry, ...]

    @property
    def all_contained(self) -> bool:
        return all(entry.contained for entry in self.entries)

    def violations(self) -> list[ContainmentEntry]:
        return [entry for entry in self.entries if not entry.contained]

    def __str__(self) -> str:
        status = "CONTAINED" if self.all_contained else "VIOLATED"
        return (
            f"ContainmentReport({status}, {len(self.entries)} thresholds, "
            f"{len(self.violations())} violations)"
        )


class EffectivenessBand:
    """Best/worst/random envelope derived from an :class:`IncrementalBounds`."""

    def __init__(self, bounds: IncrementalBounds):
        self.bounds = bounds

    # -- curves -----------------------------------------------------------

    def original_curve(self) -> PRCurve:
        return self.bounds.original_curve()

    def best_curve(self) -> PRCurve:
        return self.bounds.best_curve()

    def worst_curve(self) -> PRCurve:
        return self.bounds.worst_curve()

    def random_curve(self) -> PRCurve:
        return self.bounds.random_curve()

    # -- width metrics ------------------------------------------------------

    def precision_widths(self) -> list[Fraction]:
        """Best-minus-worst precision at each threshold."""
        out = []
        for entry in self.bounds:
            best = entry.best.precision_or(Fraction(1))
            worst = entry.worst.precision_or(Fraction(0))
            out.append(best - worst)
        return out

    def mean_precision_width(self) -> Fraction:
        widths = self.precision_widths()
        return sum(widths, Fraction(0)) / len(widths)

    def recall_widths(self) -> list[Fraction]:
        """Best-minus-worst recall at each threshold (requires ``|H|``)."""
        relevant = self.bounds.original.relevant
        if relevant is None:
            raise BoundsError("recall widths require known |H|")
        if relevant == 0:
            return [Fraction(0) for _ in self.bounds]
        return [
            Fraction(entry.best.correct - entry.worst.correct, relevant)
            for entry in self.bounds
        ]

    # -- guarantee queries (the paper's headline use case) -----------------

    def guaranteed_recall_at_precision(
        self, min_precision: Fraction | float
    ) -> Fraction:
        """Largest guaranteed recall while worst-case precision stays >= p.

        This answers statements like the paper's "for recall levels up to
        0.15, S2-one guarantees a worst case precision of 0.5": we return
        the maximum *worst-case* recall over thresholds whose worst-case
        precision is still at least ``min_precision``.
        """
        target = Fraction(min_precision).limit_denominator(10**6) if isinstance(
            min_precision, float
        ) else Fraction(min_precision)
        relevant = self.bounds.original.relevant
        if relevant is None:
            raise BoundsError("recall guarantees require known |H|")
        best_recall = Fraction(0)
        for entry in self.bounds:
            worst_precision = entry.worst.precision_or(Fraction(0))
            if worst_precision >= target:
                recall = (
                    Fraction(1)
                    if relevant == 0
                    else Fraction(entry.worst.correct, relevant)
                )
                best_recall = max(best_recall, recall)
        return best_recall

    def guaranteed_precision_at_recall(
        self, min_recall: Fraction | float
    ) -> Fraction | None:
        """Best worst-case precision among thresholds guaranteeing recall >= r.

        Returns ``None`` when no threshold guarantees that much recall
        even in the worst case.
        """
        target = Fraction(min_recall).limit_denominator(10**6) if isinstance(
            min_recall, float
        ) else Fraction(min_recall)
        relevant = self.bounds.original.relevant
        if relevant is None:
            raise BoundsError("recall guarantees require known |H|")
        candidates = []
        for entry in self.bounds:
            recall = (
                Fraction(1)
                if relevant == 0
                else Fraction(entry.worst.correct, relevant)
            )
            if recall >= target:
                candidates.append(entry.worst.precision_or(Fraction(0)))
        if not candidates:
            return None
        return max(candidates)

    def max_effectiveness_loss(self) -> Fraction:
        """Worst-case *relative* recall loss at the final threshold.

        The paper's "the trade-off in effectiveness ... is at most x%"
        claim: ``1 − worst-case |T2| / |T1|`` at the last threshold.
        Returns 0 when S1 found nothing (no recall to lose).
        """
        final = self.bounds[len(self.bounds) - 1]
        t1 = final.original.correct
        if t1 == 0:
            return Fraction(0)
        return 1 - Fraction(final.worst.correct, t1)

    # -- containment (our synthetic-testbed validation) ---------------------

    def check_containment(self, actual: SystemProfile) -> ContainmentReport:
        """Exact count-level containment of a judged S2 run in the band.

        ``actual`` must be sampled on the same schedule.  Containment of
        the correct-answer count implies containment of both precision
        and recall (same denominator at a fixed threshold).
        """
        if actual.schedule != self.bounds.original.schedule:
            raise BoundsError(
                "actual profile must be sampled on the band's threshold schedule"
            )
        entries = []
        for entry, actual_counts in zip(self.bounds, actual.counts):
            if actual_counts.answers != entry.improved_answers:
                raise BoundsError(
                    f"actual |A2|={actual_counts.answers} at δ={entry.delta} "
                    f"differs from the size profile ({entry.improved_answers}) "
                    "the bounds were computed from"
                )
            entries.append(
                ContainmentEntry(
                    delta=entry.delta,
                    actual_correct=actual_counts.correct,
                    worst_correct=entry.worst.correct,
                    best_correct=entry.best.correct,
                )
            )
        return ContainmentReport(tuple(entries))

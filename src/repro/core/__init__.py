"""The paper's contribution: effectiveness bounds for non-exhaustive
improvements of retrieval/matching systems.

Typical use::

    from repro.core import (
        ThresholdSchedule, SystemProfile, SizeProfile,
        compute_incremental_bounds, EffectivenessBand,
    )

    schedule = ThresholdSchedule.linear(0.05, 0.25, 9)
    s1 = SystemProfile.from_answer_set(schedule, exhaustive_answers, ground_truth)
    s2 = SizeProfile.from_answer_set(schedule, improved_answers)
    band = EffectivenessBand(compute_incremental_bounds(s1, s2))
    band.guaranteed_recall_at_precision(0.5)

Module map (paper section in brackets):

* :mod:`~repro.core.answers` — scored answer sets ``A^δ`` [2.1]
* :mod:`~repro.core.thresholds` — threshold schedules & increments [2.1/3.2]
* :mod:`~repro.core.measures` — exact precision/recall counts [2.2]
* :mod:`~repro.core.pr_curve` — measured & interpolated P/R curves [2.4]
* :mod:`~repro.core.bounds` — Equations 1-6 [3.1]
* :mod:`~repro.core.increments` — Equations 7-8 [3.2]
* :mod:`~repro.core.incremental` — the 4-step incremental algorithm [3.2]
* :mod:`~repro.core.random_baseline` — Equations 9-10 [3.4]
* :mod:`~repro.core.size_ratio` — Â curves [3.3/Fig 10]
* :mod:`~repro.core.bands` — P/R bands, guarantees, containment [3.3]
* :mod:`~repro.core.reconstruction` — interpolated-input handling [4.1]
* :mod:`~repro.core.subincrement` — interpolation boundaries [4.2]
* :mod:`~repro.core.relative` — |H|-free relative bounds [extension]
* :mod:`~repro.core.report` — text/ASCII renderers for all of the above
"""

from repro.core.answers import Answer, AnswerSet
from repro.core.bands import ContainmentReport, EffectivenessBand
from repro.core.comparison import (
    ThresholdComparison,
    Verdict,
    compare_bounds,
    dominates,
)
from repro.core.confidence import RandomDeviation, random_curve_deviation
from repro.core.estimators import PointEstimate, estimate_correct, estimate_curve
from repro.core.bounds import (
    CaseBounds,
    best_case_correct,
    best_case_precision,
    best_case_recall,
    bound_counts,
    worst_case_correct,
    worst_case_precision,
    worst_case_recall,
)
from repro.core.increments import (
    IncrementPR,
    combine_increment_pr,
    increment_precision,
    increment_recall,
)
from repro.core.incremental import (
    BoundsAtThreshold,
    IncrementalBounds,
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
    compute_naive_bounds,
)
from repro.core.measures import Counts, f_score, measure
from repro.core.pr_curve import STANDARD_RECALL_LEVELS, PRCurve, PRPoint
from repro.core.random_baseline import (
    expected_correct,
    random_increment_precision,
    random_increment_recall,
)
from repro.core.reconstruction import reconstruct_profile, reconstruction_error
from repro.core.relative import RelativeBoundsEntry, relative_bounds
from repro.core.size_ratio import SizeRatioCurve
from repro.core.subincrement import SubIncrementAnalyzer, SubIncrementSegment
from repro.core.thresholds import ThresholdSchedule
from repro.core.topn import cutoffs_to_schedule, default_cutoffs, topn_bounds

__all__ = [
    "Answer",
    "AnswerSet",
    "BoundsAtThreshold",
    "CaseBounds",
    "ContainmentReport",
    "Counts",
    "EffectivenessBand",
    "IncrementPR",
    "IncrementalBounds",
    "PRCurve",
    "PRPoint",
    "PointEstimate",
    "RandomDeviation",
    "RelativeBoundsEntry",
    "STANDARD_RECALL_LEVELS",
    "SizeProfile",
    "SizeRatioCurve",
    "SubIncrementAnalyzer",
    "SubIncrementSegment",
    "SystemProfile",
    "ThresholdComparison",
    "ThresholdSchedule",
    "Verdict",
    "best_case_correct",
    "best_case_precision",
    "best_case_recall",
    "bound_counts",
    "combine_increment_pr",
    "compare_bounds",
    "compute_incremental_bounds",
    "compute_naive_bounds",
    "cutoffs_to_schedule",
    "default_cutoffs",
    "dominates",
    "estimate_correct",
    "estimate_curve",
    "expected_correct",
    "f_score",
    "increment_precision",
    "increment_recall",
    "measure",
    "random_curve_deviation",
    "random_increment_precision",
    "random_increment_recall",
    "reconstruct_profile",
    "topn_bounds",
    "reconstruction_error",
    "relative_bounds",
    "worst_case_correct",
    "worst_case_precision",
    "worst_case_recall",
]

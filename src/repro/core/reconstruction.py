"""Reconstructing a measured profile from an interpolated curve (section 4.1).

A published 11-point P/R curve lacks "one kind of information: the
specific threshold points" — equivalently, the underlying counts.  Given
a guess of ``|H|`` the counts can be recovered from
``|T| = R·|H|`` and ``|A| = R·|H| / P``, turning the interpolated curve
back into a *measured-style* profile that the incremental bound machinery
accepts.  The paper's observation, reproduced by the fig12 experiment, is
that bounds computed this way are only "a little bit less accurate", and
a rough ``|H|`` estimate suffices.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.incremental import SystemProfile
from repro.core.measures import Counts
from repro.core.pr_curve import PRCurve
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError, CurveError

__all__ = ["reconstruct_profile", "reconstructed_sizes"]


def reconstructed_sizes(
    curve: PRCurve, relevant_guess: int
) -> list[tuple[int, int]]:
    """``(|A|, |T|)`` per curve point under the given ``|H|`` guess.

    Points with zero precision *and* zero recall would hide their answer
    count entirely and are rejected; a trailing stretch of zero-precision
    points on an 11-point curve (recall levels the system never reached)
    should be trimmed by the caller — :func:`reconstruct_profile` does so.

    Counts are rounded to the nearest integer and forced monotone, since
    fractional answers cannot exist; the rounding error is the price of
    the lost information the section analyses.
    """
    if relevant_guess <= 0:
        raise BoundsError(f"|H| guess must be positive, got {relevant_guess}")
    sizes: list[tuple[int, int]] = []
    prev_answers = 0
    prev_correct = 0
    for point in curve:
        correct_exact = point.recall * relevant_guess
        if point.precision == 0:
            if point.recall != 0:
                raise CurveError("invalid curve point: P = 0 with R > 0")
            raise CurveError(
                "cannot reconstruct counts for a point with P = R = 0; trim "
                "unreached recall levels first"
            )
        answers_exact = correct_exact / point.precision
        correct = max(prev_correct, round(correct_exact))
        answers = max(prev_answers, round(answers_exact), correct)
        sizes.append((answers, correct))
        prev_answers, prev_correct = answers, correct
    return sizes


def reconstruct_profile(
    curve: PRCurve,
    relevant_guess: int,
    schedule: ThresholdSchedule | None = None,
) -> SystemProfile:
    """Turn an interpolated P/R curve into a measured-style profile.

    Parameters
    ----------
    curve:
        The published curve (recall non-decreasing).  Trailing points the
        system never reached (precision 0 at high recall) are trimmed.
    relevant_guess:
        The guessed ``|H|``.  With the *true* value and exact fractions on
        the curve the reconstruction is lossless at the measured points
        (a property the test suite asserts).
    schedule:
        Synthetic thresholds to attach; defaults to 1, 2, 3, ... since the
        real δ values are precisely what an interpolated curve has lost.
    """
    points = list(curve)
    while points and points[-1].precision == 0 and points[-1].recall == 0:
        points.pop()
    # A leading (recall 0, precision 0) point carries no information either.
    while points and points[0].precision == 0 and points[0].recall == 0:
        points.pop(0)
    if not points:
        raise CurveError("curve has no reconstructible points")
    trimmed = PRCurve(
        type(points[0])(recall=p.recall, precision=p.precision) for p in points
    )
    sizes = reconstructed_sizes(trimmed, relevant_guess)
    if schedule is None:
        schedule = ThresholdSchedule(float(i + 1) for i in range(len(sizes)))
    else:
        ThresholdSchedule.validate_alignment(schedule, sizes, "reconstructed sizes")
    counts = tuple(
        Counts(answers=a, correct=t, relevant=relevant_guess) for a, t in sizes
    )
    return SystemProfile(schedule, counts)


def reconstruction_error(
    true_profile: SystemProfile, relevant_guess: int
) -> list[tuple[float, Fraction, Fraction]]:
    """Per-threshold (δ, |ΔP|, |ΔR|) between a true profile and its
    round-trip through interpolation + reconstruction with a guessed |H|.

    Quantifies section 4.1's "a little bit less accurate" claim: the
    fig12 ablation sweeps ``relevant_guess`` and reports these errors.
    """
    curve = true_profile.pr_curve()
    bare = PRCurve.from_values(
        [(p.recall, p.precision) for p in curve]
    )
    rebuilt = reconstruct_profile(
        bare, relevant_guess, schedule=true_profile.schedule
    )
    rows = []
    for delta, true_counts, rebuilt_counts in zip(
        true_profile.schedule, true_profile.counts, rebuilt.counts
    ):
        true_p = true_counts.precision_or(Fraction(1))
        rebuilt_p = rebuilt_counts.precision_or(Fraction(1))
        true_r = true_counts.recall
        rebuilt_r = rebuilt_counts.recall
        if true_r is None or rebuilt_r is None:
            raise BoundsError("reconstruction error needs known |H| on both sides")
        rows.append((delta, abs(true_p - rebuilt_p), abs(true_r - rebuilt_r)))
    return rows

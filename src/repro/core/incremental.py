"""The incremental bound algorithm (paper section 3.2) and its inputs.

The four steps of the paper:

1. fix the threshold schedule the original measurements were made at;
2. derive precision/recall of every *increment* of the original system S1;
3. apply the best/worst-case formulas (section 3.1) per increment;
4. recombine increments into bounds at every threshold.

Working increment-by-increment is strictly more accurate than applying
the section-3.1 formulas per threshold independently ("naive" here):
in Figure 8's example the naive worst-case precision at δ2 is 1/16 while
the incremental one is 7/48.  Both variants are implemented;
:func:`compute_naive_bounds` exists for that comparison and for the
tightness ablation.

All arithmetic is exact (integers and :class:`~fractions.Fraction`).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.core.answers import AnswerSet
from repro.core.bounds import best_case_correct, worst_case_correct
from repro.core.measures import Counts, measure
from repro.core.pr_curve import PRCurve, PRPoint
from repro.core.random_baseline import expected_correct
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError

__all__ = [
    "SystemProfile",
    "SizeProfile",
    "BoundsAtThreshold",
    "IncrementalBounds",
    "compute_incremental_bounds",
    "compute_naive_bounds",
]


@dataclass(frozen=True)
class SystemProfile:
    """Per-threshold counts of a *judged* system run — the S1 input.

    Holds ``|A1^δ|`` and ``|T1^δ|`` for every threshold of the schedule
    (plus ``|H|``).  This is exactly the information a measured P/R curve
    carries (section 2.4); :meth:`from_pr_curve` converts one.
    """

    schedule: ThresholdSchedule
    counts: tuple[Counts, ...]

    def __post_init__(self) -> None:
        ThresholdSchedule.validate_alignment(self.schedule, self.counts, "counts")
        previous: Counts | None = None
        for delta, count in zip(self.schedule, self.counts):
            if previous is not None:
                if count.answers < previous.answers:
                    raise BoundsError(
                        "answer counts must be non-decreasing with δ; "
                        f"|A|={count.answers} at δ={delta} follows {previous.answers}"
                    )
                if count.correct < previous.correct:
                    raise BoundsError(
                        "correct counts must be non-decreasing with δ"
                    )
                if count.relevant != previous.relevant:
                    raise BoundsError("all thresholds must agree on |H|")
            previous = count

    @classmethod
    def from_answer_set(
        cls,
        schedule: ThresholdSchedule,
        answers: AnswerSet,
        ground_truth: Iterable[Hashable],
    ) -> "SystemProfile":
        """Judge an answer set at every threshold of the schedule."""
        truth = frozenset(ground_truth)
        counts = tuple(
            measure(answers.at_threshold(delta), truth) for delta in schedule
        )
        return cls(schedule, counts)

    @classmethod
    def from_pr_curve(cls, curve: PRCurve) -> "SystemProfile":
        """Recover the profile from a measured curve (points carry counts)."""
        return cls(curve.schedule(), tuple(curve.counts_profile()))

    @property
    def relevant(self) -> int | None:
        """``|H|`` (shared across thresholds)."""
        return self.counts[0].relevant

    def answer_sizes(self) -> list[int]:
        return [c.answers for c in self.counts]

    def correct_counts(self) -> list[int]:
        return [c.correct for c in self.counts]

    def increments(self) -> list[Counts]:
        """Counts per increment (first one is the paper's ``0 − δ1``)."""
        previous = Counts(0, 0, self.relevant)
        out = []
        for count in self.counts:
            out.append(count.subtract(previous))
            previous = count
        return out

    def pr_curve(self) -> PRCurve:
        """The measured P/R curve of this profile (requires known ``|H|``)."""
        return PRCurve.from_profile(self.schedule, list(self.counts))

    def final_counts(self) -> Counts:
        return self.counts[-1]


@dataclass(frozen=True)
class SizeProfile:
    """Per-threshold answer-set **sizes** of an unjudged system — the S2 input.

    This is everything the technique needs to know about the improved
    system: how many answers it returns at each threshold.
    """

    schedule: ThresholdSchedule
    sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        ThresholdSchedule.validate_alignment(self.schedule, self.sizes, "sizes")
        previous = 0
        for delta, size in zip(self.schedule, self.sizes):
            if size < 0:
                raise BoundsError(f"answer size at δ={delta} is negative")
            if size < previous:
                raise BoundsError(
                    "answer sizes must be non-decreasing with δ; "
                    f"{size} at δ={delta} follows {previous}"
                )
            previous = size

    @classmethod
    def from_answer_set(
        cls, schedule: ThresholdSchedule, answers: AnswerSet
    ) -> "SizeProfile":
        return cls(schedule, tuple(answers.size_at(delta) for delta in schedule))

    def increment_sizes(self) -> list[int]:
        previous = 0
        out = []
        for size in self.sizes:
            out.append(size - previous)
            previous = size
        return out


@dataclass(frozen=True)
class BoundsAtThreshold:
    """The bound triple at one threshold.

    ``best``/``worst`` are integral count bounds on S2; ``random_correct``
    is the exact expected number of correct answers of the size-matched
    random system (a rational, not an integer).
    """

    delta: float
    original: Counts
    improved_answers: int
    best: Counts
    worst: Counts
    random_correct: Fraction

    @property
    def size_ratio(self) -> Fraction:
        if self.original.answers == 0:
            return Fraction(0)
        return Fraction(self.improved_answers, self.original.answers)

    def _recall(self, correct: Fraction | int) -> Fraction:
        relevant = self.original.relevant
        if relevant is None:
            raise BoundsError("recall bounds require known |H| on the S1 profile")
        if relevant == 0:
            return Fraction(1)
        return Fraction(correct) / relevant

    def best_point(self) -> PRPoint:
        """Best-case P/R point (empty answer set ⇒ vacuous precision 1)."""
        return PRPoint(
            recall=self._recall(self.best.correct),
            precision=self.best.precision_or(Fraction(1)),
            threshold=self.delta,
            counts=self.best,
        )

    def worst_point(self) -> PRPoint:
        """Worst-case P/R point (empty answer set ⇒ precision 0)."""
        return PRPoint(
            recall=self._recall(self.worst.correct),
            precision=self.worst.precision_or(Fraction(0)),
            threshold=self.delta,
            counts=self.worst,
        )

    def random_point(self) -> PRPoint:
        """Expected P/R of the size-matched random system.

        With no answers kept, the expected precision is conventionally
        S1's (Eq. 9 carries S1's mix over increment by increment).
        """
        if self.improved_answers == 0:
            precision = self.original.precision_or(Fraction(1))
        else:
            precision = self.random_correct / self.improved_answers
        return PRPoint(
            recall=self._recall(self.random_correct),
            precision=precision,
            threshold=self.delta,
        )

    def original_point(self) -> PRPoint:
        return PRPoint(
            recall=self._recall(self.original.correct),
            precision=self.original.precision_or(Fraction(1)),
            threshold=self.delta,
            counts=self.original,
        )


class IncrementalBounds:
    """Result of a bound computation over a whole threshold schedule."""

    def __init__(
        self,
        original: SystemProfile,
        improved: SizeProfile,
        entries: Sequence[BoundsAtThreshold],
        method: str,
    ):
        self.original = original
        self.improved = improved
        self.entries: tuple[BoundsAtThreshold, ...] = tuple(entries)
        self.method = method

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, index: int) -> BoundsAtThreshold:
        return self.entries[index]

    def at_delta(self, delta: float) -> BoundsAtThreshold:
        """The entry at an exact schedule threshold."""
        for entry in self.entries:
            if entry.delta == delta:
                return entry
        raise BoundsError(f"no bounds computed at δ={delta!r}")

    def best_curve(self) -> PRCurve:
        return PRCurve(e.best_point() for e in self.entries)

    def worst_curve(self) -> PRCurve:
        return PRCurve(e.worst_point() for e in self.entries)

    def random_curve(self) -> PRCurve:
        return PRCurve(e.random_point() for e in self.entries)

    def original_curve(self) -> PRCurve:
        return PRCurve(e.original_point() for e in self.entries)

    def rows(self) -> list[tuple]:
        """Per-threshold report rows (precision needs no ``|H|``)."""
        out = []
        for e in self.entries:
            out.append(
                (
                    e.delta,
                    e.original.answers,
                    e.improved_answers,
                    float(e.size_ratio),
                    float(e.worst.precision_or(Fraction(0))),
                    float(e.best.precision_or(Fraction(1))),
                )
            )
        return out


def _validate_pair(original: SystemProfile, improved: SizeProfile) -> None:
    if original.schedule != improved.schedule:
        raise BoundsError(
            "original and improved systems must be sampled on the same "
            "threshold schedule"
        )
    for delta, count, size in zip(
        original.schedule, original.counts, improved.sizes
    ):
        if size > count.answers:
            raise BoundsError(
                f"|A2|={size} exceeds |A1|={count.answers} at δ={delta}; "
                "the subset property (shared objective function) is violated"
            )


def compute_incremental_bounds(
    original: SystemProfile, improved: SizeProfile
) -> IncrementalBounds:
    """The paper's four-step incremental algorithm, in count space.

    Per increment i:  best  t̂2 = min(t̂1, â2)          (Eq. 1)
                      worst t̂2 = max(0, â2 − (â1 − t̂1)) (Eq. 4)
                      random t̂2 = t̂1 · â2 / â1          (Eq. 9/10)
    then cumulative sums give the bounds at every threshold (step 4).
    """
    _validate_pair(original, improved)
    original_increments = original.increments()
    improved_increment_sizes = improved.increment_sizes()

    entries: list[BoundsAtThreshold] = []
    best_total = 0
    worst_total = 0
    random_total = Fraction(0)
    for delta, count, size, inc1, inc2_size in zip(
        original.schedule,
        original.counts,
        improved.sizes,
        original_increments,
        improved_increment_sizes,
    ):
        if inc2_size > inc1.answers:
            raise BoundsError(
                f"improved increment ending at δ={delta} holds {inc2_size} "
                f"answers but the original's holds only {inc1.answers}; "
                "per-increment subset property violated"
            )
        best_total += best_case_correct(inc1.correct, inc2_size)
        worst_total += worst_case_correct(inc1.answers, inc1.correct, inc2_size)
        random_total += expected_correct(inc1.answers, inc1.correct, inc2_size)
        entries.append(
            BoundsAtThreshold(
                delta=delta,
                original=count,
                improved_answers=size,
                best=Counts(size, best_total, count.relevant),
                worst=Counts(size, worst_total, count.relevant),
                random_correct=random_total,
            )
        )
    return IncrementalBounds(original, improved, entries, method="incremental")


def compute_naive_bounds(
    original: SystemProfile, improved: SizeProfile
) -> IncrementalBounds:
    """Section-3.1 bounds applied at each threshold independently.

    Never tighter than :func:`compute_incremental_bounds`; kept for the
    paper's Figure 8 comparison and the tightness ablation.
    """
    _validate_pair(original, improved)
    entries = []
    for delta, count, size in zip(
        original.schedule, original.counts, improved.sizes
    ):
        entries.append(
            BoundsAtThreshold(
                delta=delta,
                original=count,
                improved_answers=size,
                best=Counts(
                    size, best_case_correct(count.correct, size), count.relevant
                ),
                worst=Counts(
                    size,
                    worst_case_correct(count.answers, count.correct, size),
                    count.relevant,
                ),
                random_correct=expected_correct(
                    count.answers, count.correct, size
                ),
            )
        )
    return IncrementalBounds(original, improved, entries, method="naive")

"""Comparing improvements by their bands (paper use case 2).

The introduction lists "get an impression on the efficiency-effectiveness
trade-off in an automated way allowing quick evaluation of many different
parameter settings and matching system improvements" among the technique's
applications.  Comparing two candidate improvements by their *bands* gives
three possible verdicts at each threshold:

* ``A`` **provably better** — A's worst case is at least B's best case;
* ``B`` **provably better** — symmetric;
* **undecided** — the bands overlap; judgments would be needed to decide.

The verdicts are sound (never contradicted by the hidden truth — property
tested), which is what makes band-based screening of candidates safe: a
provably-dominated configuration can be discarded with zero judging
effort, and only overlapping candidates need a closer look.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction

from repro.core.incremental import IncrementalBounds
from repro.errors import BoundsError

__all__ = ["Verdict", "ThresholdComparison", "compare_bounds", "dominates"]


class Verdict(enum.Enum):
    """Outcome of a band comparison at one threshold."""

    FIRST_BETTER = "first"
    SECOND_BETTER = "second"
    UNDECIDED = "undecided"


@dataclass(frozen=True)
class ThresholdComparison:
    """Verdicts at one threshold, for correct counts and for precision."""

    delta: float
    correct_verdict: Verdict
    precision_verdict: Verdict


def _verdict(first_worst, first_best, second_worst, second_best) -> Verdict:
    if first_worst >= second_best:
        return Verdict.FIRST_BETTER
    if second_worst >= first_best:
        return Verdict.SECOND_BETTER
    return Verdict.UNDECIDED


def compare_bounds(
    first: IncrementalBounds, second: IncrementalBounds
) -> list[ThresholdComparison]:
    """Per-threshold verdicts for two improvements of the same original.

    Both bounds must come from the same original profile on the same
    schedule (otherwise the comparison is meaningless and is refused).

    Strict-dominance note: equal-width zero bands (e.g. both at ratio 1)
    compare as FIRST_BETTER only through '>=', so two identical systems
    yield FIRST_BETTER on correct counts; callers comparing for strict
    superiority should use :func:`dominates` on both orders.
    """
    if first.original.schedule != second.original.schedule:
        raise BoundsError("comparisons require a shared threshold schedule")
    if first.original.counts != second.original.counts:
        raise BoundsError(
            "comparisons require the same original-system profile"
        )
    out = []
    for first_entry, second_entry in zip(first, second):
        correct = _verdict(
            first_entry.worst.correct,
            first_entry.best.correct,
            second_entry.worst.correct,
            second_entry.best.correct,
        )
        precision = _verdict(
            first_entry.worst.precision_or(Fraction(0)),
            first_entry.best.precision_or(Fraction(1)),
            second_entry.worst.precision_or(Fraction(0)),
            second_entry.best.precision_or(Fraction(1)),
        )
        out.append(
            ThresholdComparison(
                delta=first_entry.delta,
                correct_verdict=correct,
                precision_verdict=precision,
            )
        )
    return out


def dominates(
    first: IncrementalBounds, second: IncrementalBounds, margin: int = 1
) -> bool:
    """Whether ``first`` provably finds more correct answers everywhere.

    True when at every threshold ``first``'s worst-case correct count
    exceeds ``second``'s best case by at least ``margin`` (default 1, i.e.
    strictly better).  A dominated candidate can be discarded without any
    human judgment — no feasible world ranks it higher.
    """
    if margin < 0:
        raise BoundsError(f"margin must be >= 0, got {margin}")
    comparisons_input = compare_bounds(first, second)  # validates pairing
    del comparisons_input
    for first_entry, second_entry in zip(first, second):
        if first_entry.worst.correct < second_entry.best.correct + margin:
            return False
    return True

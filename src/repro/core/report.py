"""Textual reports over bound computations.

Renders the analysis artifacts — bound tables, P/R bands, ratio curves —
as aligned text and ASCII plots.  Everything the paper shows as a figure
has a renderer here; benches and the CLI call these, so the printed
output of an experiment *is* its figure.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.bands import ContainmentReport, EffectivenessBand
from repro.core.comparison import ThresholdComparison, Verdict
from repro.core.incremental import IncrementalBounds
from repro.core.pr_curve import PRCurve
from repro.core.relative import relative_bounds
from repro.core.size_ratio import SizeRatioCurve
from repro.util.asciiplot import AsciiPlot, Series
from repro.util.fractions_ext import format_fraction
from repro.util.tables import format_table

__all__ = [
    "render_pr_curve",
    "render_bounds_table",
    "render_band_plot",
    "render_ratio_curve",
    "render_relative_bounds",
    "render_containment",
    "render_comparison",
    "summarize_guarantees",
]


def render_pr_curve(curve: PRCurve, title: str = "P/R curve") -> str:
    """Table of a single P/R curve."""
    return format_table(
        ["threshold", "recall", "precision"],
        curve.as_rows(),
        title=title,
    )


def render_bounds_table(bounds: IncrementalBounds, title: str = "Bounds") -> str:
    """Per-threshold bound table (the |H|-free part, always available)."""
    rows = []
    for entry in bounds:
        rows.append(
            (
                entry.delta,
                entry.original.answers,
                entry.original.correct,
                entry.improved_answers,
                float(entry.size_ratio),
                float(entry.worst.precision_or(Fraction(0))),
                float(entry.best.precision_or(Fraction(1))),
            )
        )
    return format_table(
        ["delta", "|A1|", "|T1|", "|A2|", "ratio", "P worst", "P best"],
        rows,
        title=f"{title} ({bounds.method})",
    )


def render_band_plot(
    band: EffectivenessBand,
    title: str = "Best/worst case P/R band",
    width: int = 64,
    height: int = 20,
    include_random: bool = True,
) -> str:
    """ASCII rendition of the paper's Figure 9/11-style band plot."""
    plot = AsciiPlot(
        width=width,
        height=height,
        title=title,
        x_label="recall",
        y_label="precision",
        x_range=(0.0, 1.0),
        y_range=(0.0, 1.0),
    )
    plot.add(Series("S1 measured", band.original_curve().as_xy(), marker="o"))
    plot.add(Series("S2 best", band.best_curve().as_xy(), marker="+"))
    plot.add(Series("S2 worst", band.worst_curve().as_xy(), marker="x"))
    if include_random:
        plot.add(Series("S2 random", band.random_curve().as_xy(), marker="~"))
    return plot.render()


def render_ratio_curve(
    ratio: SizeRatioCurve, title: str = "Answer size ratio"
) -> str:
    """Figure 10-style ratio table."""
    return format_table(
        ["delta", "|A1|", "|A2|", "ratio", "increment ratio"],
        ratio.rows(),
        title=title,
    )


def render_relative_bounds(
    bounds: IncrementalBounds, title: str = "Relative (|H|-free) bounds"
) -> str:
    """Relative-recall bound table; the 'at most x% loss' guarantee."""
    rows = []
    for entry in relative_bounds(bounds):
        rows.append(
            (
                entry.delta,
                float(entry.worst_precision),
                float(entry.best_precision),
                None
                if entry.worst_relative_recall is None
                else float(entry.worst_relative_recall),
                None
                if entry.max_recall_loss is None
                else float(entry.max_recall_loss),
            )
        )
    return format_table(
        ["delta", "P worst", "P best", "rel recall worst", "max loss"],
        rows,
        title=title,
    )


def render_containment(report: ContainmentReport) -> str:
    """Containment-check table (synthetic-testbed validation)."""
    rows = [
        (
            entry.delta,
            entry.worst_correct,
            entry.actual_correct,
            entry.best_correct,
            "ok" if entry.contained else "VIOLATION",
        )
        for entry in report.entries
    ]
    header = (
        "Containment: actual |T2| within [worst, best] -- "
        + ("ALL CONTAINED" if report.all_contained else "VIOLATIONS FOUND")
    )
    return format_table(
        ["delta", "worst |T2|", "actual |T2|", "best |T2|", "status"],
        rows,
        title=header,
    )


def render_comparison(
    comparisons: list[ThresholdComparison],
    first_name: str = "A",
    second_name: str = "B",
) -> str:
    """Verdict table for a band comparison of two improvements.

    Verdicts are judgment-free and sound: a 'provably better' line holds
    in every world consistent with the observed answer sizes.
    """
    verdict_text = {
        Verdict.FIRST_BETTER: f"{first_name} provably better",
        Verdict.SECOND_BETTER: f"{second_name} provably better",
        Verdict.UNDECIDED: "undecided (bands overlap)",
    }
    rows = [
        (
            comparison.delta,
            verdict_text[comparison.correct_verdict],
            verdict_text[comparison.precision_verdict],
        )
        for comparison in comparisons
    ]
    return format_table(
        ["delta", "correct answers", "precision"],
        rows,
        title=f"Band comparison: {first_name} vs {second_name}",
    )


def summarize_guarantees(band: EffectivenessBand) -> str:
    """Headline guarantees in prose, e.g. worst-case precision at recall levels."""
    lines = ["Guarantees (worst case, no human judgment of S2 needed):"]
    for precision_level in (Fraction(3, 4), Fraction(1, 2), Fraction(1, 4)):
        recall = band.guaranteed_recall_at_precision(precision_level)
        lines.append(
            f"  precision >= {format_fraction(precision_level)} is guaranteed "
            f"up to recall {format_fraction(recall)}"
        )
    loss = band.max_effectiveness_loss()
    lines.append(
        f"  at the final threshold, at most {float(loss):.1%} of the original "
        "system's true positives can have been lost"
    )
    return "\n".join(lines)

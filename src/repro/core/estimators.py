"""Point estimators between the bounds, with guaranteed error.

The paper positions its bounds as a complement to estimation techniques:
"(3) assess the accuracy of an effectiveness estimate acquired using
other validation techniques."  This module turns that around into a small
estimation API: given the bounds at a threshold, produce a point estimate
of the improved system's true-positive count and — because the truth is
*guaranteed* to lie inside [worst, best] — a hard error bound for it.

Strategies
----------
``midpoint``
    (worst + best) / 2 — the minimax choice; its absolute error is at
    most half the band width (section 4.2's "safest interpolation choice"
    generalised to the threshold level).
``random``
    The expected count of the size-matched random system (Eq. 9-10), the
    natural estimate under the paper's "any realistic improvement beats
    random selection" reading; error is bounded by the distance to the
    farther bound end.
``pessimistic`` / ``optimistic``
    The worst/best ends themselves (error bounded by the band width).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.incremental import BoundsAtThreshold, IncrementalBounds
from repro.errors import BoundsError

__all__ = ["EstimateStrategy", "PointEstimate", "estimate_correct", "estimate_curve"]

EstimateStrategy = str
_STRATEGIES = ("midpoint", "random", "pessimistic", "optimistic")


@dataclass(frozen=True)
class PointEstimate:
    """An estimated true-positive count with its guaranteed error bound."""

    delta: float
    strategy: str
    correct: Fraction
    max_error: Fraction
    answers: int

    @property
    def precision(self) -> Fraction | None:
        if self.answers == 0:
            return None
        return self.correct / self.answers

    def precision_error(self) -> Fraction | None:
        """Guaranteed absolute precision error of the estimate."""
        if self.answers == 0:
            return None
        return self.max_error / self.answers

    def recall(self, relevant: int) -> Fraction:
        if relevant <= 0:
            raise BoundsError("relevant must be positive for recall estimates")
        return self.correct / relevant


def estimate_correct(
    entry: BoundsAtThreshold, strategy: EstimateStrategy = "midpoint"
) -> PointEstimate:
    """Point estimate of ``|T2|`` at one threshold.

    ``max_error`` is a *guarantee*: the true count cannot deviate from the
    estimate by more (soundness of the bounds), so any downstream report
    can carry hard error bars with zero additional judging effort.
    """
    worst = Fraction(entry.worst.correct)
    best = Fraction(entry.best.correct)
    if strategy == "midpoint":
        value = (worst + best) / 2
        error = (best - worst) / 2
    elif strategy == "random":
        value = entry.random_correct
        error = max(value - worst, best - value)
    elif strategy == "pessimistic":
        value = worst
        error = best - worst
    elif strategy == "optimistic":
        value = best
        error = best - worst
    else:
        raise BoundsError(
            f"unknown estimation strategy {strategy!r}; "
            f"expected one of {_STRATEGIES}"
        )
    return PointEstimate(
        delta=entry.delta,
        strategy=strategy,
        correct=value,
        max_error=error,
        answers=entry.improved_answers,
    )


def estimate_curve(
    bounds: IncrementalBounds, strategy: EstimateStrategy = "midpoint"
) -> list[PointEstimate]:
    """Point estimates along the whole threshold schedule."""
    return [estimate_correct(entry, strategy) for entry in bounds]

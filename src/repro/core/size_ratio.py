"""Answer-size-ratio curves ``Â^δ = |A2^δ| / |A1^δ|`` (paper Figure 10).

The whole technique is "ultimately based on answer sizes, more concretely
on Â" (section 3.3): the ratio curve of an improvement is its complete
fingerprint as far as the bounds are concerned.  This module holds that
curve as a first-class object, both per threshold and per increment.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.incremental import SizeProfile, SystemProfile
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError

__all__ = ["SizeRatioCurve"]


@dataclass(frozen=True)
class SizeRatioCurve:
    """Per-threshold and per-increment size ratios of S2 against S1."""

    schedule: ThresholdSchedule
    original_sizes: tuple[int, ...]
    improved_sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        ThresholdSchedule.validate_alignment(
            self.schedule, self.original_sizes, "original_sizes"
        )
        ThresholdSchedule.validate_alignment(
            self.schedule, self.improved_sizes, "improved_sizes"
        )
        for delta, a1, a2 in zip(
            self.schedule, self.original_sizes, self.improved_sizes
        ):
            if a2 > a1:
                raise BoundsError(
                    f"|A2|={a2} exceeds |A1|={a1} at δ={delta}; subset property"
                    " violated"
                )

    @classmethod
    def from_profiles(
        cls, original: SystemProfile | SizeProfile, improved: SizeProfile
    ) -> "SizeRatioCurve":
        if isinstance(original, SystemProfile):
            original_sizes = tuple(original.answer_sizes())
            schedule = original.schedule
        else:
            original_sizes = tuple(original.sizes)
            schedule = original.schedule
        if schedule != improved.schedule:
            raise BoundsError("ratio curve requires a shared threshold schedule")
        return cls(schedule, original_sizes, tuple(improved.sizes))

    def ratio_at(self, index: int) -> Fraction:
        """``Â`` at the index-th threshold (0 when S1 is empty there)."""
        a1 = self.original_sizes[index]
        a2 = self.improved_sizes[index]
        if a1 == 0:
            return Fraction(0)
        return Fraction(a2, a1)

    def ratios(self) -> list[Fraction]:
        return [self.ratio_at(i) for i in range(len(self.schedule))]

    def increment_ratios(self) -> list[Fraction]:
        """``Â`` per increment (0 for empty original increments)."""
        out = []
        prev_a1 = prev_a2 = 0
        for a1, a2 in zip(self.original_sizes, self.improved_sizes):
            inc1, inc2 = a1 - prev_a1, a2 - prev_a2
            out.append(Fraction(inc2, inc1) if inc1 > 0 else Fraction(0))
            prev_a1, prev_a2 = a1, a2
        return out

    def as_xy(self) -> list[tuple[float, float]]:
        """(threshold, ratio) pairs — the paper's Figure 10 axes."""
        return [
            (delta, float(self.ratio_at(i)))
            for i, delta in enumerate(self.schedule)
        ]

    def rows(self) -> list[tuple[float, int, int, float, float]]:
        """(δ, |A1|, |A2|, Â, Â per increment) report rows."""
        increment = self.increment_ratios()
        return [
            (
                delta,
                self.original_sizes[i],
                self.improved_sizes[i],
                float(self.ratio_at(i)),
                float(increment[i]),
            )
            for i, delta in enumerate(self.schedule)
        ]

    def mean_ratio(self) -> Fraction:
        """Unweighted mean of the per-threshold ratios (summary statistic)."""
        ratios = self.ratios()
        return sum(ratios, Fraction(0)) / len(ratios)

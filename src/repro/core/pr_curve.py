"""P/R curves: measured and interpolated (paper section 2.4).

Two flavours appear in the paper:

* a **measured** curve — precision/recall at a sequence of thresholds
  (Figure 5), each point backed by concrete counts;
* an **interpolated** 11-point curve — precision at the fixed recall
  levels 0, 0.1, ..., 1 (Figure 6), the form effectiveness results are
  usually published in.  The standard interpolation rule is used:
  interpolated precision at recall level r is the maximum precision
  attained at any measured recall >= r.

Both are :class:`PRCurve` instances; measured curves carry thresholds and
:class:`~repro.core.measures.Counts`, interpolated ones carry only
(recall, precision) pairs — the very information loss section 4.1 of the
paper is about.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.core.measures import Counts
from repro.core.thresholds import ThresholdSchedule
from repro.errors import CurveError
from repro.util.fractions_ext import as_fraction

__all__ = ["PRPoint", "PRCurve", "STANDARD_RECALL_LEVELS"]

STANDARD_RECALL_LEVELS: tuple[Fraction, ...] = tuple(
    Fraction(i, 10) for i in range(11)
)


@dataclass(frozen=True)
class PRPoint:
    """One point of a P/R curve.

    ``threshold`` is ``None`` on interpolated curves (that information is
    exactly what interpolation discards); ``counts`` is ``None`` when the
    point does not come from a concrete measurement.
    """

    recall: Fraction
    precision: Fraction
    threshold: float | None = None
    counts: Counts | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.recall <= 1:
            raise CurveError(f"recall must be in [0, 1], got {self.recall}")
        if not 0 <= self.precision <= 1:
            raise CurveError(f"precision must be in [0, 1], got {self.precision}")

    @property
    def recall_float(self) -> float:
        return float(self.recall)

    @property
    def precision_float(self) -> float:
        return float(self.precision)

    def as_tuple(self) -> tuple[float, float]:
        """(recall, precision) floats, ready for plotting."""
        return (float(self.recall), float(self.precision))


class PRCurve:
    """An ordered sequence of P/R points.

    Measured curves are ordered by threshold; recall is validated to be
    non-decreasing along the curve (more answers can only find more of
    ``H`` — Figure 1's monotonicity).  Precision may go up or down; the
    paper remarks (section 4.2) that rising precision along a P/R curve
    is possible and was already observed at TREC-1.
    """

    def __init__(self, points: Iterable[PRPoint]):
        self._points: tuple[PRPoint, ...] = tuple(points)
        if not self._points:
            raise CurveError("a P/R curve needs at least one point")
        for left, right in zip(self._points, self._points[1:]):
            if right.recall < left.recall:
                raise CurveError(
                    "recall must be non-decreasing along a P/R curve; "
                    f"{float(right.recall):.4f} follows {float(left.recall):.4f}"
                )
            if (
                left.threshold is not None
                and right.threshold is not None
                and right.threshold <= left.threshold
            ):
                raise CurveError(
                    "thresholds must be strictly increasing along a measured curve"
                )

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_profile(
        cls, schedule: ThresholdSchedule, counts: Sequence[Counts]
    ) -> "PRCurve":
        """Measured curve from per-threshold counts (needs known ``|H|``).

        Points with an empty answer set get precision 1 by convention
        (no answers, none of them wrong) so the curve remains plottable.
        """
        ThresholdSchedule.validate_alignment(schedule, counts, "counts")
        points = []
        for delta, count in zip(schedule, counts):
            recall = count.recall
            if recall is None:
                raise CurveError(
                    "measured P/R curve requires counts with known |H|; "
                    "use precision-only reports otherwise"
                )
            points.append(
                PRPoint(
                    recall=recall,
                    precision=count.precision_or(Fraction(1)),
                    threshold=delta,
                    counts=count,
                )
            )
        return cls(points)

    @classmethod
    def from_values(
        cls, pairs: Iterable[tuple[float | Fraction, float | Fraction]]
    ) -> "PRCurve":
        """Curve from bare (recall, precision) values, e.g. from a paper.

        Floats are snapped to small rationals (denominator <= 10^6) so
        values like 0.1 behave exactly.
        """
        points = [
            PRPoint(
                recall=as_fraction(recall, max_denominator=10**6),
                precision=as_fraction(precision, max_denominator=10**6),
            )
            for recall, precision in pairs
        ]
        return cls(points)

    # -- access -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, index: int) -> PRPoint:
        return self._points[index]

    @property
    def points(self) -> tuple[PRPoint, ...]:
        return self._points

    def recalls(self) -> list[float]:
        return [float(p.recall) for p in self._points]

    def precisions(self) -> list[float]:
        return [float(p.precision) for p in self._points]

    def thresholds(self) -> list[float | None]:
        return [p.threshold for p in self._points]

    def is_measured(self) -> bool:
        """True when every point carries a threshold (and usually counts)."""
        return all(p.threshold is not None for p in self._points)

    def schedule(self) -> ThresholdSchedule:
        """The threshold schedule of a measured curve."""
        if not self.is_measured():
            raise CurveError("curve has no thresholds (it is interpolated)")
        return ThresholdSchedule(p.threshold for p in self._points)  # type: ignore[arg-type]

    def counts_profile(self) -> list[Counts]:
        """Per-threshold counts of a measured curve."""
        profile = []
        for point in self._points:
            if point.counts is None:
                raise CurveError("curve point lacks counts; not a measured curve")
            profile.append(point.counts)
        return profile

    # -- interpolation (Figure 6) ------------------------------------------

    def precision_at_recall(self, recall_level: Fraction | float) -> Fraction:
        """Interpolated precision at a recall level: max precision at recall >= level.

        Returns 0 when no measured point reaches the level (the system
        never attains that recall).
        """
        level = as_fraction(recall_level, max_denominator=10**6)
        candidates = [p.precision for p in self._points if p.recall >= level]
        if not candidates:
            return Fraction(0)
        return max(candidates)

    def interpolate(
        self, levels: Sequence[Fraction | float] = STANDARD_RECALL_LEVELS
    ) -> "PRCurve":
        """The interpolated curve at the given recall levels (11-point default)."""
        points = []
        for level in levels:
            level_frac = as_fraction(level, max_denominator=10**6)
            points.append(
                PRPoint(recall=level_frac, precision=self.precision_at_recall(level_frac))
            )
        return PRCurve(points)

    # -- reporting ----------------------------------------------------------

    def as_rows(self) -> list[tuple[object, float, float]]:
        """(threshold, recall, precision) rows for table rendering."""
        return [
            (p.threshold, float(p.recall), float(p.precision)) for p in self._points
        ]

    def as_xy(self) -> list[tuple[float, float]]:
        """(recall, precision) float pairs for plotting."""
        return [p.as_tuple() for p in self._points]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "measured" if self.is_measured() else "interpolated"
        return f"PRCurve({kind}, {len(self._points)} points)"

"""Top-N effectiveness bounds (the paper's closing observation).

"For schema matching systems as well as information retrieval systems in
general, the top-N is usually the most interesting and for such recall
levels, we can give useful, i.e., narrow effectiveness bounds."

The threshold machinery carries over directly: the top-N cutoff of a
ranked answer set corresponds to the score of its N-th answer (ties can
pull in a few more answers — the paper's "indecisive" systems — which
this module handles by converting rank cutoffs to *score* thresholds and
reporting the effective sizes).  :func:`topn_bounds` packages the whole
flow: pick cutoffs, derive the shared threshold schedule, and run the
incremental bound computation on it.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from repro.core.answers import AnswerSet
from repro.core.incremental import (
    IncrementalBounds,
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
)
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError

__all__ = ["cutoffs_to_schedule", "topn_bounds", "default_cutoffs"]


def default_cutoffs(total: int) -> list[int]:
    """A sensible top-N ladder for an answer set of the given size."""
    ladder = [10, 25, 50, 100, 250, 500, 1000, 2500]
    out = [n for n in ladder if n < total]
    if total > 0:
        out.append(total)
    return out


def cutoffs_to_schedule(
    answers: AnswerSet, cutoffs: Sequence[int]
) -> ThresholdSchedule:
    """Score thresholds realising the given rank cutoffs on a ranked run.

    The threshold for cutoff N is the score of the N-th best answer, so
    ``A^δ`` contains at least N answers (more only on score ties).
    Cutoffs beyond the answer set or duplicated by ties collapse into one
    threshold.
    """
    if not cutoffs:
        raise BoundsError("at least one top-N cutoff is required")
    if len(answers) == 0:
        raise BoundsError("cannot derive top-N thresholds from an empty run")
    scores = answers.scores()
    deltas: list[float] = []
    for cutoff in cutoffs:
        if cutoff < 1:
            raise BoundsError(f"top-N cutoff must be >= 1, got {cutoff}")
        index = min(cutoff, len(scores)) - 1
        deltas.append(scores[index])
    unique = sorted(set(deltas))
    return ThresholdSchedule(unique)


def topn_bounds(
    original: AnswerSet,
    improved: AnswerSet,
    ground_truth: Iterable[Hashable],
    cutoffs: Sequence[int] | None = None,
) -> IncrementalBounds:
    """Incremental bounds evaluated at top-N cutoffs of the original run.

    ``original`` must be the exhaustive system's ranked answers (judged
    against ``ground_truth``); ``improved`` contributes sizes only.  The
    cutoffs default to :func:`default_cutoffs` of the original's size.
    """
    improved.check_subset_of(original, "improved")
    improved.check_scores_match(original)
    if cutoffs is None:
        cutoffs = default_cutoffs(len(original))
    schedule = cutoffs_to_schedule(original, cutoffs)
    profile = SystemProfile.from_answer_set(schedule, original, ground_truth)
    sizes = SizeProfile.from_answer_set(schedule, improved)
    return compute_incremental_bounds(profile, sizes)

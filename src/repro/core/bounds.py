"""Size-based best/worst-case bounds (paper section 3.1, Equations 1-6).

Setting: an exhaustive system S1 with known effectiveness, and a
non-exhaustive improvement S2 sharing S1's objective function, so
``A2^δ ⊆ A1^δ``.  Which answers S2 misses is unknown; in the **best case**
it misses only incorrect ones, in the **worst case** the most correct
ones.  Both cases are fully determined by three integers — ``|A1|``,
``|T1|``, ``|A2|`` — or equivalently by S1's precision/recall and the
answer-size ratio ``Â = |A2|/|A1|``.

Two equivalent formulations are provided and cross-checked by tests:

* **count space** (exact integers; what the rest of the library uses),
* **ratio space** — the paper's Equations 2, 3, 5, 6 verbatim, on exact
  rationals.

Empty-answer-set conventions: with ``|A2| = 0`` precision is 0/0; the
bounds take the vacuous extremes (best 1, worst 0) so that any convention
a caller chooses still lies inside the band.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.measures import Counts
from repro.errors import BoundsError
from repro.util.fractions_ext import as_fraction

__all__ = [
    "best_case_correct",
    "worst_case_correct",
    "bound_counts",
    "CaseBounds",
    "best_case_precision",
    "best_case_recall",
    "worst_case_precision",
    "worst_case_recall",
]


# ---------------------------------------------------------------------------
# Count space
# ---------------------------------------------------------------------------

def best_case_correct(original_correct: int, improved_answers: int) -> int:
    """Equation 1: ``|T2| = min(|T1|, |A2|)`` in the best case.

    Either A2 is small enough to consist purely of true positives
    (Figure 7(a)), or it already contains all of T1 (Figure 7(b)).
    """
    if original_correct < 0 or improved_answers < 0:
        raise BoundsError("counts must be non-negative")
    return min(original_correct, improved_answers)


def worst_case_correct(
    original_answers: int, original_correct: int, improved_answers: int
) -> int:
    """Equation 4: ``|T2| = max(0, |A2| − (|A1| − |T1|))`` in the worst case.

    Either A2 fits entirely among S1's false positives (Figure 7(c)), or
    the false positives cannot absorb all of A2 and the remainder must be
    correct (Figure 7(d)).
    """
    if min(original_answers, original_correct, improved_answers) < 0:
        raise BoundsError("counts must be non-negative")
    if original_correct > original_answers:
        raise BoundsError(
            f"|T1|={original_correct} cannot exceed |A1|={original_answers}"
        )
    incorrect = original_answers - original_correct
    return max(0, improved_answers - incorrect)


@dataclass(frozen=True)
class CaseBounds:
    """Best/worst-case counts of the improved system at one threshold."""

    original: Counts
    improved_answers: int
    best: Counts
    worst: Counts

    @property
    def size_ratio(self) -> Fraction:
        """``Â = |A2| / |A1|`` (0 when S1 produced nothing)."""
        if self.original.answers == 0:
            return Fraction(0)
        return Fraction(self.improved_answers, self.original.answers)


def bound_counts(original: Counts, improved_answers: int) -> CaseBounds:
    """Best/worst-case counts for S2 given S1's counts and ``|A2|``.

    Raises when ``|A2| > |A1|`` — that violates the subset property the
    whole technique rests on.
    """
    if improved_answers < 0:
        raise BoundsError(f"improved_answers must be >= 0, got {improved_answers}")
    if improved_answers > original.answers:
        raise BoundsError(
            f"improved system cannot produce more answers ({improved_answers}) "
            f"than the original ({original.answers}); subset property violated"
        )
    best = Counts(
        answers=improved_answers,
        correct=best_case_correct(original.correct, improved_answers),
        relevant=original.relevant,
    )
    worst = Counts(
        answers=improved_answers,
        correct=worst_case_correct(
            original.answers, original.correct, improved_answers
        ),
        relevant=original.relevant,
    )
    return CaseBounds(
        original=original,
        improved_answers=improved_answers,
        best=best,
        worst=worst,
    )


# ---------------------------------------------------------------------------
# Ratio space — the paper's equations verbatim
# ---------------------------------------------------------------------------

def _check_ratio(size_ratio: Fraction) -> Fraction:
    ratio = as_fraction(size_ratio)
    if not 0 <= ratio <= 1:
        raise BoundsError(
            f"size ratio Â must lie in [0, 1] (subset property), got {ratio}"
        )
    return ratio


def best_case_precision(
    original_precision: Fraction | float, size_ratio: Fraction | float
) -> Fraction:
    """Equation 2: ``P2 = P1 · min(1/Â, 1/P1) = min(P1/Â, 1)``.

    ``Â = 0`` returns the vacuous 1 (empty answer set: nothing wrong).
    """
    p1 = as_fraction(original_precision)
    ratio = _check_ratio(as_fraction(size_ratio))
    if ratio == 0:
        return Fraction(1)
    return min(p1 / ratio, Fraction(1))


def best_case_recall(
    original_recall: Fraction | float,
    original_precision: Fraction | float,
    size_ratio: Fraction | float,
) -> Fraction:
    """Equation 3: ``R2 = R1 · min(1, Â/P1)``.

    ``P1 = 0`` implies ``T1 = ∅`` and therefore ``R1 = R2 = 0``.
    """
    r1 = as_fraction(original_recall)
    p1 = as_fraction(original_precision)
    ratio = _check_ratio(as_fraction(size_ratio))
    if p1 == 0:
        return Fraction(0)
    return r1 * min(Fraction(1), ratio / p1)


def worst_case_precision(
    original_precision: Fraction | float, size_ratio: Fraction | float
) -> Fraction:
    """Equation 5: ``P2 = max(0, 1 − (1 − P1)/Â)``.

    ``Â = 0`` returns 0 (empty answer set, conservative extreme).
    """
    p1 = as_fraction(original_precision)
    ratio = _check_ratio(as_fraction(size_ratio))
    if ratio == 0:
        return Fraction(0)
    return max(Fraction(0), 1 - (1 - p1) / ratio)


def worst_case_recall(
    original_recall: Fraction | float,
    original_precision: Fraction | float,
    size_ratio: Fraction | float,
) -> Fraction:
    """Equation 6: ``R2 = max(0, R1 · ((Â − 1)/P1 + 1))``.

    ``P1 = 0`` again forces ``R2 = 0``.
    """
    r1 = as_fraction(original_recall)
    p1 = as_fraction(original_precision)
    ratio = _check_ratio(as_fraction(size_ratio))
    if p1 == 0:
        return Fraction(0)
    return max(Fraction(0), r1 * ((ratio - 1) / p1 + 1))

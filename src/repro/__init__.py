"""repro — reproduction of "Effectiveness Bounds for Non-Exhaustive
Schema Matching Systems" (Smiljanić, van Keulen, Jonker; ICDE 2006).

The library has four layers:

* :mod:`repro.core` — the paper's contribution: guaranteed best/worst
  (and random-baseline) precision/recall bounds for a non-exhaustive
  improvement of a retrieval system, computed from answer-set sizes
  alone.  Domain-independent: items may be schema mappings, documents,
  images, anything hashable.
* :mod:`repro.schema` — XML-schema substrate: tree schemas, a textual
  format, domain vocabularies, and a synthetic repository generator with
  concept provenance.
* :mod:`repro.matching` — matching systems: the exhaustive original and
  four non-exhaustive improvements (beam, clustering, top-k, and their
  hybrid) sharing one objective function, plus the sharded parallel
  matching pipeline with its candidate cache.
* :mod:`repro.evaluation` — oracle ground truth, judges, scenarios,
  pooling, and end-to-end bounds validation.

Quick start::

    from repro import quickstart_band
    band = quickstart_band()
    print(float(band.guaranteed_recall_at_precision(0.5)))

or see ``examples/quickstart.py`` for the full walk-through.
"""

from repro.core import (
    AnswerSet,
    Counts,
    EffectivenessBand,
    PRCurve,
    SizeProfile,
    SystemProfile,
    ThresholdSchedule,
    compute_incremental_bounds,
    compute_naive_bounds,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "AnswerSet",
    "Counts",
    "EffectivenessBand",
    "PRCurve",
    "ReproError",
    "SizeProfile",
    "SystemProfile",
    "ThresholdSchedule",
    "compute_incremental_bounds",
    "compute_naive_bounds",
    "quickstart_band",
    "__version__",
]


def quickstart_band() -> EffectivenessBand:
    """One-call demo: bounds for a beam improvement on a small workload."""
    from repro.evaluation import (
        build_workload,
        run_system,
        small_config,
        validate_improvement,
    )
    from repro.matching import BeamMatcher, ExhaustiveMatcher

    workload = build_workload(small_config())
    original = run_system(
        ExhaustiveMatcher(workload.objective), workload.suite, workload.schedule
    )
    improved = run_system(
        BeamMatcher(workload.objective, beam_width=10),
        workload.suite,
        workload.schedule,
    )
    return validate_improvement(original, improved).band

"""Ground truth H: the set of semantically correct mappings.

The paper's H is produced by human evaluators inspecting the whole search
space — exactly the cost the technique avoids.  On the synthetic testbed
we get H for free: generated elements carry *concept provenance*, and a
mapping is semantically correct iff every query element lands on a target
denoting the same domain concept.  That criterion is independent of the
objective function (it never looks at names, which mutations have
scrambled), so the matcher cannot "read the ground truth's mind" — it has
to earn its true positives through its heuristics, like a real system.

:func:`enumerate_ground_truth` materialises all of H for a query by
walking concept-equal target combinations per repository schema.  This is
what lets the reproduction do the one thing the paper could not: verify
that measured P/R of the improved systems actually falls inside the
computed bounds.
"""

from __future__ import annotations

import itertools

from repro.errors import GroundTruthError
from repro.matching.mapping import Mapping
from repro.schema.model import Schema
from repro.schema.repository import ElementHandle, SchemaRepository

__all__ = ["GroundTruth", "enumerate_ground_truth"]

_MAX_PER_SCHEMA_COMBINATIONS = 100_000


class GroundTruth:
    """The judged set H for one query (or a union over several queries)."""

    def __init__(self, query_schema_id: str, mappings: frozenset[Mapping]):
        self.query_schema_id = query_schema_id
        self.mappings = mappings

    def __len__(self) -> int:
        return len(self.mappings)

    def __contains__(self, mapping: object) -> bool:
        return mapping in self.mappings

    def __iter__(self):
        return iter(self.mappings)

    def union(self, other: "GroundTruth") -> "GroundTruth":
        """Union across queries (mapping identity embeds the query id)."""
        overlap = self.mappings & other.mappings
        if overlap:
            raise GroundTruthError(
                "ground truths overlap; union expects disjoint query sets"
            )
        return GroundTruth(
            f"{self.query_schema_id}+{other.query_schema_id}",
            self.mappings | other.mappings,
        )

    @classmethod
    def union_all(cls, truths: list["GroundTruth"]) -> "GroundTruth":
        if not truths:
            raise GroundTruthError("cannot union an empty list of ground truths")
        combined = truths[0]
        for truth in truths[1:]:
            combined = combined.union(truth)
        return combined


def enumerate_ground_truth(
    query: Schema, repository: SchemaRepository
) -> GroundTruth:
    """All semantically correct mappings of ``query`` into ``repository``.

    A mapping is correct iff every query element maps to a target with
    the identical concept (injectively, within one schema).  Query
    elements without provenance (hand-written schemas) yield an error —
    the oracle cannot judge them.
    """
    for element in query:
        if element.concept is None:
            raise GroundTruthError(
                f"query element {element.name!r} has no concept provenance; "
                "the oracle can only judge generated/mutated schemas"
            )
    correct: set[Mapping] = set()
    for schema in repository:
        per_element: list[list[int]] = []
        for element in query:
            candidates = [
                element_id
                for element_id in range(len(schema))
                if schema.element(element_id).concept == element.concept
            ]
            if not candidates:
                per_element = []
                break
            per_element.append(candidates)
        if not per_element:
            continue
        combinations = 1
        for candidates in per_element:
            combinations *= len(candidates)
        if combinations > _MAX_PER_SCHEMA_COMBINATIONS:
            raise GroundTruthError(
                f"schema {schema.schema_id!r} yields {combinations} candidate "
                "combinations; the synthetic workload is misconfigured "
                "(concepts repeat far too often)"
            )
        for combo in itertools.product(*per_element):
            if len(set(combo)) != len(combo):
                continue  # injectivity
            targets = tuple(
                ElementHandle(schema, element_id) for element_id in combo
            )
            correct.add(Mapping(query.schema_id, targets))
    return GroundTruth(query.schema_id, frozenset(correct))

"""Persistent test collections: save/load a workload to a directory.

The paper stresses that "the availability of large and properly
constructed test collections is rather limited in the schema matching
domain".  This module lets a built workload be frozen to disk — schemas
in the textual format, queries likewise, ground truth as mapping keys in
JSON — so experiments can be shared, diffed and re-run bit-identically
without re-generating.

Layout::

    <root>/
      meta.json           collection id + counts
      repository/<id>.schema
      queries/<id>.schema
      ground_truth.json   {query_id: [[schema_id, [element ids...]], ...]}
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import GroundTruthError, SchemaError
from repro.evaluation.ground_truth import GroundTruth
from repro.evaluation.scenario import MatchingScenario, ScenarioSuite
from repro.matching.mapping import Mapping
from repro.schema.parser import parse_schema, serialize_schema
from repro.schema.repository import ElementHandle, SchemaRepository

__all__ = ["save_collection", "load_collection"]

_META_NAME = "meta.json"
_TRUTH_NAME = "ground_truth.json"


def save_collection(suite: ScenarioSuite, root: str | Path) -> Path:
    """Write a scenario suite to ``root`` (created if missing)."""
    root = Path(root)
    (root / "repository").mkdir(parents=True, exist_ok=True)
    (root / "queries").mkdir(parents=True, exist_ok=True)

    for schema in suite.repository:
        path = root / "repository" / f"{schema.schema_id}.schema"
        path.write_text(serialize_schema(schema), encoding="utf-8")

    truth_payload: dict[str, list] = {}
    for scenario in suite:
        path = root / "queries" / f"{scenario.query.schema_id}.schema"
        path.write_text(serialize_schema(scenario.query), encoding="utf-8")
        truth_payload[scenario.query.schema_id] = [
            [mapping.target_schema.schema_id, list(mapping.target_ids)]
            for mapping in sorted(scenario.ground_truth, key=lambda m: m.key)
        ]
    (root / _TRUTH_NAME).write_text(
        json.dumps(truth_payload, indent=2, sort_keys=True), encoding="utf-8"
    )
    meta = {
        "repository_id": suite.repository.repository_id,
        "schemas": len(suite.repository),
        "queries": len(suite),
        "relevant": suite.relevant_size,
        "format": 1,
    }
    (root / _META_NAME).write_text(json.dumps(meta, indent=2), encoding="utf-8")
    return root


def load_collection(root: str | Path) -> ScenarioSuite:
    """Load a suite saved by :func:`save_collection`."""
    root = Path(root)
    meta_path = root / _META_NAME
    if not meta_path.exists():
        raise GroundTruthError(f"{root} is not a test collection (no {_META_NAME})")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    if meta.get("format") != 1:
        raise GroundTruthError(f"unsupported collection format {meta.get('format')!r}")

    schemas = []
    for path in sorted((root / "repository").glob("*.schema")):
        schemas.append(parse_schema(path.read_text(encoding="utf-8"), path.stem))
    if not schemas:
        raise GroundTruthError(f"collection {root} has no repository schemas")
    repository = SchemaRepository(meta.get("repository_id", "loaded"), schemas)

    truth_payload = json.loads((root / _TRUTH_NAME).read_text(encoding="utf-8"))
    scenarios = []
    for path in sorted((root / "queries").glob("*.schema")):
        query = parse_schema(path.read_text(encoding="utf-8"), path.stem)
        entries = truth_payload.get(query.schema_id)
        if entries is None:
            raise GroundTruthError(
                f"query {query.schema_id!r} has no ground truth in {_TRUTH_NAME}"
            )
        mappings = set()
        for schema_id, element_ids in entries:
            try:
                schema = repository.schema(schema_id)
                targets = tuple(
                    ElementHandle(schema, element_id) for element_id in element_ids
                )
            except SchemaError as exc:
                raise GroundTruthError(
                    f"ground truth of {query.schema_id!r} references invalid "
                    f"target: {exc}"
                ) from exc
            mappings.add(Mapping(query.schema_id, targets))
        scenarios.append(
            MatchingScenario(
                query=query,
                ground_truth=GroundTruth(query.schema_id, frozenset(mappings)),
                source_schema_id="(loaded)",
            )
        )
    return ScenarioSuite(repository, scenarios)

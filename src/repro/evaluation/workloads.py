"""Standard workloads: one call builds repository, queries, ground truth,
thesaurus, objective and threshold schedule for an experiment.

The default workload is the reproduction's stand-in for the authors' XML
schema collection: four domains, 40 schemas, 12 personal-schema queries.
Everything is derived from the config's seeds, so two processes given the
same :class:`WorkloadConfig` see the identical workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.thresholds import ThresholdSchedule
from repro.evaluation.scenario import ScenarioSuite, build_scenarios
from repro.matching.objective import ObjectiveFunction, ObjectiveWeights
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.repository import SchemaRepository
from repro.schema.vocabulary import builtin_domains

__all__ = ["WorkloadConfig", "Workload", "build_workload", "small_config"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Full description of an experiment workload."""

    # repository
    num_schemas: int = 40
    min_schema_size: int = 12
    max_schema_size: int = 40
    domains: tuple[str, ...] = (
        "bibliography",
        "commerce",
        "medical",
        "university",
    )
    repository_seed: int = 7

    # queries
    num_queries: int = 12
    query_size: int = 4
    query_seed: int = 23

    # matcher knowledge
    thesaurus_coverage: float = 0.65
    thesaurus_spurious: float = 0.03
    thesaurus_seed: int = 1234

    # objective
    weights: ObjectiveWeights = field(default_factory=ObjectiveWeights)

    # threshold schedule for curves and bounds.  The stop value is
    # calibrated to the objective's score distribution: beyond ~0.4 the
    # answer sets grow combinatorially (tens of thousands of coincidental
    # mappings) while recall gains flatten — the same effect that makes
    # the paper's experiments stop at δ = 0.25 on their score scale.
    delta_start: float = 0.05
    delta_stop: float = 0.40
    delta_count: int = 8

    def schedule(self) -> ThresholdSchedule:
        return ThresholdSchedule.linear(
            self.delta_start, self.delta_stop, self.delta_count
        )

    def scaled(self, factor: float) -> "WorkloadConfig":
        """A smaller/larger variant (tests use factor < 1)."""
        return replace(
            self,
            num_schemas=max(2, round(self.num_schemas * factor)),
            num_queries=max(1, round(self.num_queries * factor)),
        )


def small_config(seed: int = 7) -> WorkloadConfig:
    """A fast workload for tests and quick demos."""
    return WorkloadConfig(
        num_schemas=10,
        num_queries=4,
        repository_seed=seed,
        query_seed=seed + 16,
        delta_stop=0.35,
        delta_count=6,
    )


@dataclass
class Workload:
    """A fully built experiment workload."""

    config: WorkloadConfig
    repository: SchemaRepository
    suite: ScenarioSuite
    thesaurus: Thesaurus
    objective: ObjectiveFunction
    schedule: ThresholdSchedule

    @property
    def relevant_size(self) -> int:
        return self.suite.relevant_size


def build_workload(config: WorkloadConfig | None = None) -> Workload:
    """Materialise a workload from its config (deterministic)."""
    config = config or WorkloadConfig()
    repository = generate_repository(
        GeneratorConfig(
            num_schemas=config.num_schemas,
            min_size=config.min_schema_size,
            max_size=config.max_schema_size,
            domains=config.domains,
            seed=config.repository_seed,
        )
    )
    suite = build_scenarios(
        repository,
        num_queries=config.num_queries,
        query_size=config.query_size,
        seed=config.query_seed,
    )
    thesaurus = Thesaurus.from_vocabularies(
        builtin_domains().values(),
        coverage=config.thesaurus_coverage,
        spurious_rate=config.thesaurus_spurious,
        seed=config.thesaurus_seed,
    )
    objective = ObjectiveFunction(NameSimilarity(thesaurus), config.weights)
    return Workload(
        config=config,
        repository=repository,
        suite=suite,
        thesaurus=thesaurus,
        objective=objective,
        schedule=config.schedule(),
    )

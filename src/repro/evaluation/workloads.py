"""Standard workloads: one call builds repository, queries, ground truth,
thesaurus, objective and threshold schedule for an experiment.

The default workload is the reproduction's stand-in for the authors' XML
schema collection: four domains, 40 schemas, 12 personal-schema queries.
Everything is derived from the config's seeds, so two processes given the
same :class:`WorkloadConfig` see the identical workload.

The **evolving-repository scenario family** extends a fixed workload
into a deterministic churn stream: :class:`EvolutionConfig` describes a
churn-rate × delta-size grid, :func:`build_evolution` materialises it as
:class:`EvolutionStep` values — per step the applied
:class:`~repro.schema.delta.RepositoryDelta`, its report, the evolved
repository, and the scenario suite rebased (ground truth re-enumerated)
against it.  This is the workload shape the incremental re-matching
layer (:mod:`repro.matching.evolution`) and the CLI's ``evolve``
subcommand replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.thresholds import ThresholdSchedule
from repro.errors import SchemaError
from repro.evaluation.scenario import ScenarioSuite, build_scenarios
from repro.matching.objective import ObjectiveFunction, ObjectiveWeights
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.schema.delta import DeltaReport, RepositoryDelta, churn_delta
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.repository import SchemaRepository
from repro.schema.vocabulary import builtin_domains
from repro.util import rng as rng_util

__all__ = [
    "EvolutionConfig",
    "EvolutionStep",
    "Workload",
    "WorkloadConfig",
    "build_evolution",
    "build_workload",
    "small_config",
]


@dataclass(frozen=True)
class WorkloadConfig:
    """Full description of an experiment workload."""

    # repository
    num_schemas: int = 40
    min_schema_size: int = 12
    max_schema_size: int = 40
    domains: tuple[str, ...] = (
        "bibliography",
        "commerce",
        "medical",
        "university",
    )
    repository_seed: int = 7

    # queries
    num_queries: int = 12
    query_size: int = 4
    query_seed: int = 23

    # matcher knowledge
    thesaurus_coverage: float = 0.65
    thesaurus_spurious: float = 0.03
    thesaurus_seed: int = 1234

    # objective
    weights: ObjectiveWeights = field(default_factory=ObjectiveWeights)

    # threshold schedule for curves and bounds.  The stop value is
    # calibrated to the objective's score distribution: beyond ~0.4 the
    # answer sets grow combinatorially (tens of thousands of coincidental
    # mappings) while recall gains flatten — the same effect that makes
    # the paper's experiments stop at δ = 0.25 on their score scale.
    delta_start: float = 0.05
    delta_stop: float = 0.40
    delta_count: int = 8

    def schedule(self) -> ThresholdSchedule:
        return ThresholdSchedule.linear(
            self.delta_start, self.delta_stop, self.delta_count
        )

    def scaled(self, factor: float) -> "WorkloadConfig":
        """A smaller/larger variant (tests use factor < 1)."""
        return replace(
            self,
            num_schemas=max(2, round(self.num_schemas * factor)),
            num_queries=max(1, round(self.num_queries * factor)),
        )


def small_config(seed: int = 7) -> WorkloadConfig:
    """A fast workload for tests and quick demos."""
    return WorkloadConfig(
        num_schemas=10,
        num_queries=4,
        repository_seed=seed,
        query_seed=seed + 16,
        delta_stop=0.35,
        delta_count=6,
    )


@dataclass
class Workload:
    """A fully built experiment workload."""

    config: WorkloadConfig
    repository: SchemaRepository
    suite: ScenarioSuite
    thesaurus: Thesaurus
    objective: ObjectiveFunction
    schedule: ThresholdSchedule

    @property
    def relevant_size(self) -> int:
        return self.suite.relevant_size


@dataclass(frozen=True)
class EvolutionConfig:
    """A churn-rate × delta-size grid over an evolving repository.

    ``churn_rates`` are visited in order, ``steps_per_rate`` deltas
    each; every delta is drawn by :func:`~repro.schema.delta
    .churn_delta` against the *current* repository version with the
    given replace/add/remove mix.  Everything derives from ``seed``, so
    the whole stream is reproducible.
    """

    churn_rates: tuple[float, ...] = (0.05, 0.10, 0.25)
    steps_per_rate: int = 2
    seed: int = 97
    replace_weight: float = 3.0
    add_weight: float = 1.0
    remove_weight: float = 1.0
    rename_fraction: float = 0.35

    def __post_init__(self) -> None:
        if not self.churn_rates:
            raise SchemaError("churn_rates must not be empty")
        if self.steps_per_rate < 1:
            raise SchemaError(
                f"steps_per_rate must be >= 1, got {self.steps_per_rate!r}"
            )

    @property
    def num_steps(self) -> int:
        return len(self.churn_rates) * self.steps_per_rate


@dataclass(frozen=True)
class EvolutionStep:
    """One materialised step of an evolving-repository scenario."""

    index: int
    churn: float
    delta: RepositoryDelta
    report: DeltaReport
    repository: SchemaRepository
    suite: ScenarioSuite  # the workload's queries, ground truth rebased


def build_evolution(
    workload: Workload, config: EvolutionConfig | None = None
) -> list[EvolutionStep]:
    """Materialise the evolving-repository scenario family (deterministic).

    Starting from ``workload.repository``, each grid cell draws a churn
    delta against the previous step's repository, applies it, and
    rebases the workload's scenario suite (ground truth re-enumerated)
    on the result.  Replaying the returned deltas in order from the
    original repository reproduces every intermediate version
    digest-for-digest — which is what lets incremental re-matching be
    checked byte-for-byte against cold runs at every step.
    """
    config = config or EvolutionConfig()
    steps: list[EvolutionStep] = []
    repository = workload.repository
    suite = workload.suite
    index = 0
    for churn in config.churn_rates:
        for _ in range(config.steps_per_rate):
            delta = churn_delta(
                repository,
                churn=churn,
                seed=rng_util.seed_from(config.seed, "evolution", index),
                replace_weight=config.replace_weight,
                add_weight=config.add_weight,
                remove_weight=config.remove_weight,
                rename_fraction=config.rename_fraction,
            )
            repository, report = repository.apply(delta)
            suite = suite.rebase(repository)
            steps.append(
                EvolutionStep(
                    index=index,
                    churn=churn,
                    delta=delta,
                    report=report,
                    repository=repository,
                    suite=suite,
                )
            )
            index += 1
    return steps


def build_workload(config: WorkloadConfig | None = None) -> Workload:
    """Materialise a workload from its config (deterministic)."""
    config = config or WorkloadConfig()
    repository = generate_repository(
        GeneratorConfig(
            num_schemas=config.num_schemas,
            min_size=config.min_schema_size,
            max_size=config.max_schema_size,
            domains=config.domains,
            seed=config.repository_seed,
        )
    )
    suite = build_scenarios(
        repository,
        num_queries=config.num_queries,
        query_size=config.query_size,
        seed=config.query_seed,
    )
    thesaurus = Thesaurus.from_vocabularies(
        builtin_domains().values(),
        coverage=config.thesaurus_coverage,
        spurious_rate=config.thesaurus_spurious,
        seed=config.thesaurus_seed,
    )
    objective = ObjectiveFunction(NameSimilarity(thesaurus), config.weights)
    return Workload(
        config=config,
        repository=repository,
        suite=suite,
        thesaurus=thesaurus,
        objective=objective,
        schedule=config.schedule(),
    )

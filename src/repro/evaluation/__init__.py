"""Evaluation substrate: ground truth, judges, scenarios, pooling,
collections, and end-to-end bounds validation.

This package provides what the paper says is unaffordable at scale — a
fully judged ground truth — by construction (concept provenance), which
is what lets the reproduction *verify* the bounds rather than merely
compute them.
"""

from repro.evaluation.collection import load_collection, save_collection
from repro.evaluation.ground_truth import GroundTruth, enumerate_ground_truth
from repro.evaluation.judge import NoisyJudge, OracleJudge
from repro.evaluation.macro import (
    macro_bound_rows,
    macro_pr_rows,
    per_query_bounds,
    per_query_runs,
)
from repro.evaluation.pooling import build_pool, pooled_counts, pooled_relevant_size
from repro.evaluation.scenario import (
    MatchingScenario,
    ScenarioSuite,
    build_scenarios,
)
from repro.evaluation.validation import (
    BoundsValidation,
    SystemRun,
    run_system,
    validate_improvement,
)
from repro.evaluation.workloads import (
    EvolutionConfig,
    EvolutionStep,
    Workload,
    WorkloadConfig,
    build_evolution,
    build_workload,
    small_config,
)

__all__ = [
    "BoundsValidation",
    "EvolutionConfig",
    "EvolutionStep",
    "GroundTruth",
    "MatchingScenario",
    "NoisyJudge",
    "OracleJudge",
    "ScenarioSuite",
    "SystemRun",
    "Workload",
    "WorkloadConfig",
    "build_evolution",
    "build_pool",
    "build_scenarios",
    "build_workload",
    "enumerate_ground_truth",
    "load_collection",
    "macro_bound_rows",
    "macro_pr_rows",
    "per_query_bounds",
    "per_query_runs",
    "pooled_counts",
    "pooled_relevant_size",
    "run_system",
    "save_collection",
    "small_config",
    "validate_improvement",
]

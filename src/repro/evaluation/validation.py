"""Running systems over workloads and validating bounds end-to-end.

The glue between substrate and contribution: run the exhaustive system
and an improvement on a scenario suite, derive the paper's inputs (S1
profile, S2 sizes), compute the bounds — and, because the synthetic
testbed knows H, also judge the improvement for real and check the
containment the paper can only assert analytically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.answers import AnswerSet
from repro.core.bands import ContainmentReport, EffectivenessBand
from repro.core.incremental import (
    IncrementalBounds,
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
)
from repro.core.size_ratio import SizeRatioCurve
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError
from repro.evaluation.scenario import ScenarioSuite
from repro.matching.base import Matcher

__all__ = ["SystemRun", "BoundsValidation", "run_system", "validate_improvement"]


@dataclass
class SystemRun:
    """One system's pooled run over a workload, judged at every threshold.

    ``profile`` uses the oracle (possible only on the synthetic testbed);
    ``sizes`` is the judgment-free view the bounds technique consumes.
    """

    name: str
    answers: AnswerSet
    profile: SystemProfile
    sizes: SizeProfile

    @property
    def schedule(self) -> ThresholdSchedule:
        return self.profile.schedule


def run_system(
    matcher: Matcher,
    suite: ScenarioSuite,
    schedule: ThresholdSchedule,
    *,
    workers: int | None = None,
    shards: int | None = None,
    cache: object | None = None,
) -> SystemRun:
    """Run a matcher over the suite and judge it at every threshold.

    Matching goes through the sharded pipeline; ``workers``/``shards``/
    ``cache`` default to the module-wide pipeline configuration (serial
    unless :func:`repro.matching.pipeline.configure` — or the CLI's
    ``--workers`` flag — says otherwise).
    """
    answers = suite.run(
        matcher, schedule.final, workers=workers, shards=shards, cache=cache
    )
    profile = SystemProfile.from_answer_set(
        schedule, answers, suite.ground_truth.mappings
    )
    sizes = SizeProfile.from_answer_set(schedule, answers)
    return SystemRun(
        name=matcher.name, answers=answers, profile=profile, sizes=sizes
    )


@dataclass
class BoundsValidation:
    """Everything the fig11-style analysis produces for one improvement."""

    original: SystemRun
    improved: SystemRun
    bounds: IncrementalBounds
    band: EffectivenessBand
    ratio: SizeRatioCurve
    containment: ContainmentReport

    @property
    def sound(self) -> bool:
        """Did the actual P/R land inside the computed band everywhere?"""
        return self.containment.all_contained


def validate_improvement(
    original: SystemRun, improved: SystemRun
) -> BoundsValidation:
    """Bounds + end-to-end containment check for one improvement.

    Enforces the technique's preconditions first: same schedule, subset
    answer sets, identical scores on shared answers.
    """
    if original.schedule != improved.schedule:
        raise BoundsError("runs must share a threshold schedule")
    improved.answers.check_subset_of(original.answers, improved.name)
    improved.answers.check_scores_match(original.answers)

    bounds = compute_incremental_bounds(original.profile, improved.sizes)
    band = EffectivenessBand(bounds)
    ratio = SizeRatioCurve.from_profiles(original.profile, improved.sizes)
    containment = band.check_containment(improved.profile)
    return BoundsValidation(
        original=original,
        improved=improved,
        bounds=bounds,
        band=band,
        ratio=ratio,
        containment=containment,
    )

"""Per-query (macro-averaged) evaluation and bounds.

The standard workloads pool all queries' answers and judge them together
(micro-averaging) — the natural fit for the bounds technique, since the
pooled run is just another retrieval run.  Matching evaluations also
report *macro* averages (mean of per-query P/R, every query weighted
equally, as in the Do/Melnik/Rahm comparison the paper cites), and the
bounds technique applies per query verbatim: each query's improved run is
a subset of its exhaustive run, so each gets its own band, and macro
bounds are the per-threshold means of the per-query bounds — sound for
the macro average because each summand is sound.

This module provides both: per-query runs/bounds and their macro
aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.incremental import (
    IncrementalBounds,
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
)
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError
from repro.evaluation.scenario import MatchingScenario, ScenarioSuite
from repro.matching.base import Matcher

__all__ = [
    "PerQueryRun",
    "per_query_runs",
    "per_query_bounds",
    "macro_pr_rows",
    "macro_bound_rows",
]


@dataclass
class PerQueryRun:
    """One system's judged run on a single query."""

    scenario: MatchingScenario
    profile: SystemProfile
    sizes: SizeProfile

    @property
    def query_id(self) -> str:
        return self.scenario.query.schema_id


def per_query_runs(
    matcher: Matcher, suite: ScenarioSuite, schedule: ThresholdSchedule
) -> list[PerQueryRun]:
    """Run and judge a matcher separately on every query of the suite."""
    runs = []
    for scenario in suite:
        answers = matcher.match(scenario.query, suite.repository, schedule.final)
        profile = SystemProfile.from_answer_set(
            schedule, answers, scenario.ground_truth.mappings
        )
        runs.append(
            PerQueryRun(
                scenario=scenario,
                profile=profile,
                sizes=SizeProfile.from_answer_set(schedule, answers),
            )
        )
    return runs


def per_query_bounds(
    original_runs: list[PerQueryRun], improved_runs: list[PerQueryRun]
) -> list[tuple[str, IncrementalBounds]]:
    """Bounds per query; inputs must be aligned runs of the same suite."""
    if len(original_runs) != len(improved_runs):
        raise BoundsError("per-query runs are not aligned")
    out = []
    for original, improved in zip(original_runs, improved_runs):
        if original.query_id != improved.query_id:
            raise BoundsError(
                f"query mismatch: {original.query_id!r} vs {improved.query_id!r}"
            )
        out.append(
            (
                original.query_id,
                compute_incremental_bounds(original.profile, improved.sizes),
            )
        )
    return out


def _mean(values: list[Fraction]) -> Fraction:
    return sum(values, Fraction(0)) / len(values)


def macro_pr_rows(runs: list[PerQueryRun]) -> list[tuple[float, float, float]]:
    """(δ, macro precision, macro recall) rows over per-query runs.

    Per-query precision of an empty answer set uses the conventional 1
    (no answers, none wrong), the usual choice in macro-averaged matching
    evaluations; per-query recall of an empty ground truth is 1 (nothing
    to find) — :class:`~repro.core.measures.Counts` conventions.
    """
    if not runs:
        raise BoundsError("macro averaging needs at least one query")
    schedule = runs[0].profile.schedule
    rows = []
    for index, delta in enumerate(schedule):
        precisions = []
        recalls = []
        for run in runs:
            counts = run.profile.counts[index]
            precisions.append(counts.precision_or(Fraction(1)))
            recall = counts.recall
            if recall is None:
                raise BoundsError("macro recall requires per-query |H|")
            recalls.append(recall)
        rows.append((delta, float(_mean(precisions)), float(_mean(recalls))))
    return rows


def macro_bound_rows(
    bounds_per_query: list[tuple[str, IncrementalBounds]]
) -> list[tuple[float, float, float, float, float]]:
    """(δ, macro P worst, macro P best, macro R worst, macro R best) rows.

    Sound for the macro average: each per-query band contains its query's
    truth, so the mean of worsts lower-bounds the mean of truths and the
    mean of bests upper-bounds it.
    """
    if not bounds_per_query:
        raise BoundsError("macro bounds need at least one query")
    first_schedule = bounds_per_query[0][1].original.schedule
    rows = []
    for index, delta in enumerate(first_schedule):
        p_worst, p_best, r_worst, r_best = [], [], [], []
        for _query_id, bounds in bounds_per_query:
            if bounds.original.schedule != first_schedule:
                raise BoundsError("per-query bounds must share the schedule")
            entry = bounds[index]
            p_worst.append(entry.worst.precision_or(Fraction(0)))
            p_best.append(entry.best.precision_or(Fraction(1)))
            relevant = entry.original.relevant
            if relevant is None:
                raise BoundsError("macro recall bounds require per-query |H|")
            if relevant == 0:
                r_worst.append(Fraction(1))
                r_best.append(Fraction(1))
            else:
                r_worst.append(Fraction(entry.worst.correct, relevant))
                r_best.append(Fraction(entry.best.correct, relevant))
        rows.append(
            (
                delta,
                float(_mean(p_worst)),
                float(_mean(p_best)),
                float(_mean(r_worst)),
                float(_mean(r_best)),
            )
        )
    return rows

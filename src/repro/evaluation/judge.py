"""Simulated human evaluators.

:class:`OracleJudge` answers from the concept-provenance ground truth —
the perfect evaluator the paper assumes behind its P/R figures.
:class:`NoisyJudge` flips a seeded fraction of verdicts, modelling the
"subjective human decisions" the paper says test collections try to even
out by employing many evaluators; the robustness ablation uses it to ask
how wrong the *input* P/R curve may be before the bounds mislead.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.core.answers import AnswerSet
from repro.core.measures import Counts
from repro.errors import GroundTruthError
from repro.evaluation.ground_truth import GroundTruth
from repro.util import rng as rng_util
from repro.util.checks import check_probability

__all__ = ["OracleJudge", "NoisyJudge"]


class OracleJudge:
    """Perfect judgments straight from the ground truth."""

    def __init__(self, ground_truth: GroundTruth):
        self.ground_truth = ground_truth

    def is_correct(self, item: Hashable) -> bool:
        return item in self.ground_truth

    def relevant_size(self) -> int:
        """``|H|`` — what the paper calls the insurmountable number."""
        return len(self.ground_truth)

    def judge_answer_set(self, answers: AnswerSet) -> Counts:
        correct = sum(1 for a in answers if self.is_correct(a.item))
        return Counts(len(answers), correct, self.relevant_size())

    def judged_items(self, answers: AnswerSet) -> frozenset:
        """The true positives within an answer set."""
        return frozenset(a.item for a in answers if self.is_correct(a.item))


class NoisyJudge:
    """An imperfect evaluator flipping a seeded fraction of verdicts.

    Verdicts are deterministic per item (the same judge always answers
    the same about the same mapping), so judged counts remain consistent
    across thresholds.
    """

    def __init__(self, ground_truth: GroundTruth, flip_probability: float, seed: int):
        check_probability(flip_probability, "flip_probability")
        self.ground_truth = ground_truth
        self.flip_probability = flip_probability
        self._seed = seed

    def _flips(self, item: Hashable) -> bool:
        generator = rng_util.make(rng_util.seed_from(self._seed, repr(item)))
        return generator.random() < self.flip_probability

    def is_correct(self, item: Hashable) -> bool:
        truth = item in self.ground_truth
        return (not truth) if self._flips(item) else truth

    def judge_answer_set(self, answers: AnswerSet) -> Counts:
        """Counts under noisy judgment.

        ``relevant`` is *estimated* as the noisy judge would see it: the
        true |H| corrected by flips over H itself (we cannot flip the
        infinite complement, so false positives outside the answer sets
        are not counted — consistent with pooling practice, where only
        inspected mappings are judged).
        """
        correct = sum(1 for a in answers if self.is_correct(a.item))
        relevant = sum(1 for item in self.ground_truth if not self._flips(item))
        # Items judged correct but outside true H enlarge the perceived H.
        extra = sum(
            1
            for a in answers
            if a.item not in self.ground_truth and self._flips(a.item)
        )
        return Counts(len(answers), correct, relevant + extra)


def judge_profile(
    judge: OracleJudge | NoisyJudge,
    answers: AnswerSet,
    thresholds: Iterable[float],
) -> list[Counts]:
    """Counts at each threshold under the given judge."""
    out = []
    previous = -1
    for delta in thresholds:
        counts = judge.judge_answer_set(answers.at_threshold(delta))
        if counts.answers < previous:
            raise GroundTruthError("thresholds must be ordered ascending")
        previous = counts.answers
        out.append(counts)
    return out

"""Matching scenarios: query + repository + known ground truth.

A :class:`MatchingScenario` is one matching problem Q of the paper —
a personal schema to be matched against the repository — bundled with its
oracle ground truth.  A :class:`ScenarioSuite` is a workload of several
such problems over one repository; system-level P/R is micro-averaged by
pooling all queries' answers and ground truths (mapping identity embeds
the query id, so the union is disjoint and exact).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.answers import AnswerSet
from repro.errors import GroundTruthError
from repro.evaluation.ground_truth import GroundTruth, enumerate_ground_truth
from repro.matching.base import Matcher
from repro.schema.model import Schema
from repro.schema.mutations import MutationConfig, extract_personal_schema
from repro.schema.repository import SchemaRepository
from repro.schema.vocabulary import get_domain
from repro.util import rng as rng_util

__all__ = ["MatchingScenario", "ScenarioSuite", "build_scenarios"]


@dataclass(frozen=True)
class MatchingScenario:
    """One matching problem with its oracle ground truth."""

    query: Schema
    ground_truth: GroundTruth
    source_schema_id: str

    @property
    def relevant_size(self) -> int:
        return len(self.ground_truth)


class ScenarioSuite:
    """A workload of matching problems over one repository."""

    def __init__(self, repository: SchemaRepository, scenarios: list[MatchingScenario]):
        if not scenarios:
            raise GroundTruthError("a scenario suite needs at least one scenario")
        ids = [s.query.schema_id for s in scenarios]
        if len(set(ids)) != len(ids):
            raise GroundTruthError("scenario query ids must be unique")
        self.repository = repository
        self.scenarios = list(scenarios)
        self.ground_truth = GroundTruth.union_all(
            [s.ground_truth for s in scenarios]
        )

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    @property
    def relevant_size(self) -> int:
        """``|H|`` pooled over all queries."""
        return len(self.ground_truth)

    def run(
        self,
        matcher: Matcher,
        delta_max: float,
        *,
        workers: int | None = None,
        shards: int | None = None,
        cache: object | None = None,
    ) -> AnswerSet:
        """Pooled answer set of a system over the whole workload.

        Routed through the sharded matching pipeline
        (:meth:`~repro.matching.base.Matcher.batch_match`):  ``workers``
        fans queries/shards out across processes and the candidate cache
        memoises repeated searches; the defaults resolve to the
        module-wide pipeline configuration, whose serial fallback
        reproduces per-query matching exactly.
        """
        per_query = matcher.batch_match(
            [scenario.query for scenario in self.scenarios],
            self.repository,
            delta_max,
            workers=workers,
            shards=shards,
            cache=cache,
        )
        combined: AnswerSet | None = None
        for answers in per_query:
            combined = answers if combined is None else combined.union(answers)
        assert combined is not None
        return combined

    def rebase(self, repository: SchemaRepository) -> "ScenarioSuite":
        """The same queries over an evolved repository version.

        Ground truth is re-enumerated against ``repository`` (concept
        provenance survives deltas: id-preserving replacements keep
        element concepts, removals shrink H, additions grow it), so the
        rebased suite judges matchers against the repository they
        actually search.  A query whose sources were all removed keeps
        an empty H — its recall becomes meaningless, which mirrors the
        production reality of a query outliving its targets.
        """
        return ScenarioSuite(
            repository,
            [
                MatchingScenario(
                    query=scenario.query,
                    ground_truth=enumerate_ground_truth(
                        scenario.query, repository
                    ),
                    source_schema_id=scenario.source_schema_id,
                )
                for scenario in self.scenarios
            ],
        )


def build_scenarios(
    repository: SchemaRepository,
    num_queries: int,
    query_size: int = 4,
    seed: int = 23,
    mutation: MutationConfig | None = None,
    min_relevant: int = 1,
) -> ScenarioSuite:
    """Derive a workload of personal-schema queries from the repository.

    Each query is extracted from a different repository schema (round
    robin) and mutated; queries whose ground truth comes out smaller than
    ``min_relevant`` are re-drawn (a query with an empty H makes recall
    meaningless), up to a bounded number of attempts.
    """
    if num_queries < 1:
        raise GroundTruthError(f"num_queries must be >= 1, got {num_queries!r}")
    generator = rng_util.make_tagged(seed)
    schemas = repository.schemas()
    scenarios: list[MatchingScenario] = []
    attempts = 0
    max_attempts = num_queries * 20
    index = 0
    while len(scenarios) < num_queries:
        if attempts >= max_attempts:
            raise GroundTruthError(
                f"could not build {num_queries} scenarios with |H| >= "
                f"{min_relevant} after {attempts} attempts; loosen the workload"
            )
        attempts += 1
        source = schemas[index % len(schemas)]
        index += 1
        domain = source.schema_id.rsplit("-", 1)[0]
        try:
            vocabulary = get_domain(domain)
        except Exception:
            vocabulary = None
        child = rng_util.derive(generator, "query", attempts)
        query = extract_personal_schema(
            child,
            source,
            vocabulary,
            target_size=query_size,
            config=mutation or MutationConfig(),
            schema_id=f"query-{len(scenarios):02d}",
        )
        if any(element.concept is None for element in query):
            # the chosen subtree contained a noise element, which the
            # oracle cannot judge — redraw (rare; noise leaves are sparse)
            continue
        truth = enumerate_ground_truth(query, repository)
        if len(truth) < min_relevant:
            continue
        scenarios.append(
            MatchingScenario(
                query=query,
                ground_truth=truth,
                source_schema_id=source.schema_id,
            )
        )
    return ScenarioSuite(repository, scenarios)

"""TREC-style pooling (Harman; paper's related work).

"For each keyword query, the top 100 documents produced by each
participating system were merged and only these were evaluated by a
human."  Pooling is the classic low-effort alternative to full
judgments; the abl-pooling experiment compares its *estimates* against
the paper's *guaranteed bounds* on identical runs.

Pooled evaluation judges only pooled items; everything outside the pool
counts as incorrect (so pooled recall is measured against the judged
relevant set, which may undercount H — Zobel's reliability question).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.core.answers import AnswerSet
from repro.core.measures import Counts
from repro.errors import GroundTruthError

__all__ = ["build_pool", "pooled_counts", "pooled_relevant_size"]


def build_pool(answer_sets: Iterable[AnswerSet], depth: int = 100) -> frozenset:
    """Union of the top-``depth`` answers of each participating system."""
    if depth < 1:
        raise GroundTruthError(f"pool depth must be >= 1, got {depth!r}")
    pooled: set[Hashable] = set()
    for answers in answer_sets:
        pooled.update(a.item for a in answers.top_n(depth))
    return frozenset(pooled)


def pooled_relevant_size(pool: frozenset, ground_truth: Iterable[Hashable]) -> int:
    """The judged relevant count: ``|H ∩ pool|`` (the pooled |H| estimate)."""
    truth = frozenset(ground_truth)
    return len(pool & truth)


def pooled_counts(
    answers: AnswerSet, pool: frozenset, ground_truth: Iterable[Hashable]
) -> Counts:
    """Counts under pooling: only pooled answers can be judged correct.

    The relevant size is the pooled estimate of |H|, so pooled recall is
    ≥ true recall whenever the pool misses relevant mappings — the
    characteristic optimism of pooling that the paper's exact bounds
    avoid.
    """
    truth = frozenset(ground_truth)
    judged_correct = sum(
        1 for a in answers if a.item in pool and a.item in truth
    )
    return Counts(
        answers=len(answers),
        correct=judged_correct,
        relevant=pooled_relevant_size(pool, truth),
    )

"""Seeded synthetic schema-repository generator.

Builds repositories of tree-structured schemas over the built-in domain
vocabularies.  Two properties matter for the reproduction:

* **Lexical variety** — the same concept appears under different surface
  forms/styles in different schemas, so name matching is genuinely hard
  (this is what makes the exhaustive matcher's P/R curve fall below 1).
* **Concept provenance** — every generated element records its concept,
  so the simulated judge can later decide correctness of any mapping.

Everything is driven by an explicit seed; the same
:class:`GeneratorConfig` always produces the identical repository.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.schema.model import Schema, SchemaElement
from repro.schema.mutations import MutationConfig, NameStyler, mutate_name
from repro.schema.repository import SchemaRepository
from repro.schema.vocabulary import Concept, Vocabulary, builtin_domains, get_domain
from repro.util import rng as rng_util

__all__ = ["GeneratorConfig", "SchemaGenerator", "generate_repository"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of repository generation.

    Parameters
    ----------
    num_schemas:
        Number of schemas in the repository.
    min_size / max_size:
        Soft bounds on the element count: the size target is drawn from
        this range, but a tree may stop early when its concepts run out
        of children, and containers always complete one mandatory child
        (plus possible noise leaves) past an exhausted budget.
    domains:
        Domain names to draw from; schemas are assigned domains
        round-robin so every domain is represented.
    child_probability:
        Chance that an eligible child concept of a container is included.
    repeat_probability:
        Chance that an included child container is instantiated twice
        (models repeated elements such as several ``author``s).
    noise_probability:
        Chance of injecting a cross-domain noise leaf into a container,
        which creates plausible-but-wrong lexical matches.
    seed:
        Root seed; all randomness derives from it.
    """

    num_schemas: int = 40
    min_size: int = 12
    max_size: int = 40
    domains: tuple[str, ...] = ("bibliography", "commerce", "medical", "university")
    child_probability: float = 0.8
    repeat_probability: float = 0.12
    noise_probability: float = 0.06
    max_depth: int = 6
    mutation: MutationConfig = field(default_factory=MutationConfig)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_schemas < 1:
            raise SchemaError("num_schemas must be >= 1")
        if not 1 <= self.min_size <= self.max_size:
            raise SchemaError(
                f"need 1 <= min_size <= max_size, got {self.min_size}..{self.max_size}"
            )
        if not self.domains:
            raise SchemaError("at least one domain is required")
        for name in self.domains:
            get_domain(name)  # validates


class SchemaGenerator:
    """Generates individual schemas and whole repositories."""

    def __init__(self, config: GeneratorConfig | None = None):
        self.config = config or GeneratorConfig()
        self._domains = {name: get_domain(name) for name in self.config.domains}

    def generate_schema(self, schema_id: str, domain: str, seed: int) -> Schema:
        """Generate one schema of the given domain from an explicit seed."""
        vocabulary = self._domains.get(domain) or get_domain(domain)
        generator = rng_util.make_tagged(seed)
        size_target = generator.randint(self.config.min_size, self.config.max_size)
        styler = NameStyler.random(generator)
        root_concept = vocabulary.concept(generator.choice(vocabulary.roots))
        budget = [size_target]
        root = self._build_element(
            generator, vocabulary, root_concept, styler, budget, depth=0
        )
        return Schema(schema_id, root)

    def _build_element(
        self,
        generator: random.Random,
        vocabulary: Vocabulary,
        concept: Concept,
        styler: NameStyler,
        budget: list[int],
        depth: int,
    ) -> SchemaElement:
        budget[0] -= 1
        name = mutate_name(
            generator,
            concept.surface_forms[0],
            concept.name,
            vocabulary,
            self.config.mutation,
            styler,
        )
        element = SchemaElement(
            name=name, datatype=concept.datatype, concept=concept.name
        )
        if depth >= self.config.max_depth or not concept.children:
            return element

        child_names = list(concept.children)
        generator.shuffle(child_names)
        included: list[Concept] = []
        for child_name in child_names:
            child = vocabulary.concept(child_name)
            if generator.random() < self.config.child_probability:
                included.append(child)
                if (
                    child.is_container
                    and generator.random() < self.config.repeat_probability
                ):
                    included.append(child)
        if not included:  # a container must contain something
            included.append(vocabulary.concept(generator.choice(child_names)))

        for child in included:
            if budget[0] <= 0:
                break
            element.add_child(
                self._build_element(
                    generator, vocabulary, child, styler, budget, depth + 1
                )
            )
        if not element.children:
            # Budget exhausted before any child was added; keep the tree
            # well-formed by adding the first mandatory child anyway.
            element.add_child(
                self._build_element(
                    generator, vocabulary, included[0], styler, budget, depth + 1
                )
            )
        if generator.random() < self.config.noise_probability:
            element.add_child(self._noise_leaf(generator))
        return element

    def _noise_leaf(self, generator: random.Random) -> SchemaElement:
        """A leaf borrowed from a different domain (no concept recorded).

        Noise elements have ``concept=None`` so the judge never counts a
        mapping onto them as correct, yet their names can fool a lexical
        matcher — precisely the false-positive source real schemas have.
        """
        other_domains = [
            v for name, v in builtin_domains().items() if name not in self._domains
        ] or list(self._domains.values())
        vocabulary = generator.choice(other_domains)
        concept = generator.choice(vocabulary.leaves())
        name = generator.choice(concept.all_forms())
        return SchemaElement(name=name, datatype=concept.datatype, concept=None)

    def generate_repository(self, repository_id: str = "synthetic") -> SchemaRepository:
        """Generate the full repository described by the config."""
        schemas: list[Schema] = []
        domains = list(self.config.domains)
        for i in range(self.config.num_schemas):
            domain = domains[i % len(domains)]
            seed = rng_util.seed_from(self.config.seed, "schema", i, domain)
            schemas.append(self.generate_schema(f"{domain}-{i:03d}", domain, seed))
        return SchemaRepository(repository_id, schemas)


def generate_repository(
    config: GeneratorConfig | None = None, repository_id: str = "synthetic"
) -> SchemaRepository:
    """Convenience wrapper: ``SchemaGenerator(config).generate_repository()``."""
    return SchemaGenerator(config).generate_repository(repository_id)

"""XML-schema substrate: tree-structured schemas, a textual format, a
synthetic repository generator and mutation operators.

The paper's experiments match a small *personal schema* against a large
repository of XML schemas.  Neither the authors' repository nor a public
equivalent is available offline, so this subpackage provides a synthetic
but realistic substitute:

* :mod:`repro.schema.model` — the schema tree (:class:`SchemaElement`,
  :class:`Schema`) with *concept provenance*: every element remembers the
  domain concept it denotes, which later powers the simulated human judge.
* :mod:`repro.schema.parser` — a small indentation-based text format so
  schemas can be written by hand, stored and diffed.
* :mod:`repro.schema.vocabulary` — domain vocabularies (bibliography,
  commerce, medical, university) with synonym/abbreviation surface forms.
* :mod:`repro.schema.generator` — seeded generator producing repositories
  of schemas over those vocabularies.
* :mod:`repro.schema.mutations` — name/structure mutation operators used
  to derive personal schemas from repository subtrees (the "synthetic
  scenarios" idea of Sayyadian et al. that the paper cites).
* :mod:`repro.schema.repository` — a queryable collection of schemas.
* :mod:`repro.schema.delta` — repository evolution: immutable edit
  scripts (:class:`RepositoryDelta`), application reports at schema
  granularity (:class:`DeltaReport`), and seeded churn profiles
  (:func:`churn_delta`) built on the mutation operators.
* :mod:`repro.schema.store` — the versioned, digest-addressed snapshot
  store (:class:`SnapshotStore`) persisting repositories to disk with
  integrity checks; the matching layer builds its warm-start snapshots
  on top of it.
"""

from repro.schema.delta import DeltaReport, RepositoryDelta, churn_delta
from repro.schema.model import Datatype, Schema, SchemaElement
from repro.schema.parser import parse_schema, serialize_schema
from repro.schema.repository import SchemaRepository
from repro.schema.stats import describe_repository, lexical_stats
from repro.schema.store import SnapshotStore
from repro.schema.vocabulary import (
    Concept,
    Vocabulary,
    all_domains,
    builtin_domains,
    extended_domains,
    get_domain,
)

__all__ = [
    "Datatype",
    "DeltaReport",
    "RepositoryDelta",
    "Schema",
    "SchemaElement",
    "SchemaRepository",
    "SnapshotStore",
    "Concept",
    "Vocabulary",
    "all_domains",
    "builtin_domains",
    "churn_delta",
    "describe_repository",
    "extended_domains",
    "get_domain",
    "lexical_stats",
    "parse_schema",
    "serialize_schema",
]

"""Repository evolution: deltas, their application reports, churn profiles.

The paper's machinery assumes a fixed repository, but a production
repository evolves continuously: schemas are registered, retired and
revised.  This module gives that evolution a first-class, auditable
form:

* :class:`RepositoryDelta` — an immutable edit script over a
  :class:`~repro.schema.repository.SchemaRepository`: schemas to add,
  schema ids to remove, and replacement schemas (same id, new content).
* :class:`DeltaReport` — what applying a delta actually changed, at
  schema granularity and in terms of *content digests*.  ``changed``
  lists exactly the schemas whose matching-observable content differs
  from before (an id-preserving replacement whose content digest is
  unchanged is reported as ``unchanged``), which is the invalidation
  unit the incremental re-matching layer
  (:mod:`repro.matching.evolution`) consumes.  The report retains the
  displaced schemas, so :meth:`DeltaReport.inverse` can undo the edit.
* :func:`churn_delta` — a seeded delta generator driving the mutation
  operators of :mod:`repro.schema.mutations`: a churn rate picks how
  many schemas are touched, a weighted mix decides how (shape-preserving
  rename, removal, or derived addition).  Replacements are produced by
  :func:`~repro.schema.mutations.rename_schema`, which preserves the
  tree shape — element ids (pre-order positions) stay stable, so
  element-level provenance survives repository evolution.

Deltas are applied with
:meth:`~repro.schema.repository.SchemaRepository.apply`, which returns
``(new_repository, report)`` and never mutates its receiver — the same
build-a-new-object rule the schema model follows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SchemaError
from repro.schema.model import Schema
from repro.schema.mutations import MutationConfig, rename_schema
from repro.schema.vocabulary import get_domain
from repro.util import rng as rng_util

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repository.apply)
    from repro.schema.repository import SchemaRepository

__all__ = ["DeltaReport", "RepositoryDelta", "churn_delta"]


@dataclass(frozen=True)
class RepositoryDelta:
    """An immutable edit script over a schema repository.

    ``adds`` are new schemas (their ids must be absent), ``removes`` are
    ids to drop, ``replaces`` are schemas whose ids must already exist
    and whose content supersedes the current version in place.  The
    empty delta is legal and applies as a no-op (useful as a stream
    terminator).
    """

    adds: tuple[Schema, ...] = ()
    removes: tuple[str, ...] = ()
    replaces: tuple[Schema, ...] = ()

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for schema_id in self.edited_ids():
            if schema_id in seen:
                raise SchemaError(
                    f"delta touches schema {schema_id!r} more than once"
                )
            seen.add(schema_id)

    def edited_ids(self) -> list[str]:
        """Every schema id the delta touches, in add/remove/replace order."""
        return (
            [schema.schema_id for schema in self.adds]
            + list(self.removes)
            + [schema.schema_id for schema in self.replaces]
        )

    @property
    def is_empty(self) -> bool:
        return not (self.adds or self.removes or self.replaces)

    def __len__(self) -> int:
        """Number of schema-level edits."""
        return len(self.adds) + len(self.removes) + len(self.replaces)

    def describe(self) -> dict[str, object]:
        """Plain-data summary (for logs and experiment records)."""
        return {
            "adds": tuple(schema.schema_id for schema in self.adds),
            "removes": self.removes,
            "replaces": tuple(schema.schema_id for schema in self.replaces),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RepositoryDelta(+{len(self.adds)} -{len(self.removes)} "
            f"~{len(self.replaces)})"
        )


@dataclass(frozen=True)
class DeltaReport:
    """What one :meth:`SchemaRepository.apply` call actually changed.

    All ids are grouped by *effect on matching-observable content*:

    * ``added`` / ``removed`` / ``replaced`` — the delta's edits, echoed;
    * ``changed`` — schemas of the new repository whose content digest
      has no identical counterpart in the old one (every add, plus every
      replace whose content really differs).  This is the exact set of
      schemas any per-pair match result can have changed for — the
      invalidation unit of incremental re-matching;
    * ``unchanged`` — ids present in both versions with equal digests
      (including content-identical replaces).

    The displaced objects (``removed_schemas``, ``replaced_old``) ride
    along so the edit is invertible: :meth:`inverse` yields the delta
    that restores every schema's content (removed schemas are re-added
    at the end, so repository *order* — and hence the order-sensitive
    repository digest — is only guaranteed to round-trip when the delta
    removed nothing; the id → digest mapping always round-trips).
    """

    old_digest: str
    new_digest: str
    added: tuple[str, ...]
    removed: tuple[str, ...]
    replaced: tuple[str, ...]
    changed: tuple[str, ...]
    unchanged: tuple[str, ...]
    removed_schemas: tuple[Schema, ...]
    replaced_old: tuple[Schema, ...]

    @property
    def is_noop(self) -> bool:
        """True when matching-observable content is fully unchanged."""
        return not self.changed and not self.removed

    def inverse(self) -> RepositoryDelta:
        """The delta that undoes this application (content-wise)."""
        return RepositoryDelta(
            adds=self.removed_schemas,
            removes=self.added,
            replaces=self.replaced_old,
        )

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"+{len(self.added)} -{len(self.removed)} ~{len(self.replaced)} "
            f"({len(self.changed)} changed, {len(self.unchanged)} unchanged)"
        )


def _domain_vocabulary(schema_id: str):
    """The domain vocabulary a generated schema id implies, or ``None``."""
    try:
        return get_domain(schema_id.rsplit("-", 1)[0])
    except Exception:
        return None


def churn_delta(
    repository: "SchemaRepository",
    churn: float,
    seed: int = 0,
    *,
    replace_weight: float = 3.0,
    add_weight: float = 1.0,
    remove_weight: float = 1.0,
    rename_fraction: float = 0.35,
    config: MutationConfig | None = None,
) -> RepositoryDelta:
    """A seeded delta touching ``round(churn * |repository|)`` schemas.

    Each touched schema is, with the given weights, **replaced** by a
    shape-preserving rename (:func:`~repro.schema.mutations
    .rename_schema`, so element ids stay stable), **removed**, or used
    as the source of a derived **addition** (a rename under a fresh id).
    ``rename_fraction`` is the per-element rename probability of a
    replacement — the default models the common revision that touches a
    handful of fields rather than relabelling the whole schema (a
    replacement that happens to rename nothing is a content-identical
    no-op, which :meth:`~repro.schema.repository.SchemaRepository.apply`
    reports as unchanged).  The mix is drawn deterministically from
    ``seed``; removals are capped so the repository never empties.
    ``churn`` of 0 (or a repository too small to touch) yields the
    empty delta.
    """
    if not 0.0 <= churn <= 1.0:
        raise SchemaError(f"churn must be in [0, 1], got {churn!r}")
    if not 0.0 <= rename_fraction <= 1.0:
        raise SchemaError(
            f"rename_fraction must be in [0, 1], got {rename_fraction!r}"
        )
    weights = (replace_weight, add_weight, remove_weight)
    if min(weights) < 0 or sum(weights) <= 0:
        raise SchemaError(
            "kind weights must be non-negative with a positive sum, "
            f"got {weights!r}"
        )
    config = config or MutationConfig()
    schemas = repository.schemas()
    touched = round(churn * len(schemas))
    if touched < 1:
        return RepositoryDelta()
    generator = rng_util.make_tagged(
        rng_util.seed_from(seed, "churn", repository.content_digest())
    )
    chosen = generator.sample(schemas, touched)
    max_removes = len(schemas) - 1  # a repository needs at least one schema
    adds: list[Schema] = []
    removes: list[str] = []
    replaces: list[Schema] = []
    for schema in chosen:
        kind = rng_util.choice_weighted(
            generator, ("replace", "add", "remove"), weights
        )
        if kind == "remove" and len(removes) >= max_removes:
            kind = "replace"
        vocabulary = _domain_vocabulary(schema.schema_id)
        child = rng_util.derive(generator, "edit", schema.schema_id)
        if kind == "replace":
            replaces.append(
                rename_schema(
                    child, schema, vocabulary, config=config,
                    element_probability=rename_fraction,
                )
            )
        elif kind == "remove":
            removes.append(schema.schema_id)
        else:  # add: a renamed derivative under a fresh, seed-stable id
            new_id = f"{schema.schema_id}~{child.randrange(16 ** 8):08x}"
            adds.append(
                rename_schema(
                    child, schema, vocabulary, config=config, schema_id=new_id,
                    element_probability=rename_fraction,
                )
            )
    return RepositoryDelta(
        adds=tuple(adds), removes=tuple(removes), replaces=tuple(replaces)
    )

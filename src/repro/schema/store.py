"""Versioned, digest-addressed on-disk snapshot store.

A long-lived matching service must survive process restarts without
re-paying the cold-start costs (substrate builds, full repository
matching).  This module provides the storage half of that: a
:class:`SnapshotStore` is a directory holding

* a ``manifest.json`` — format version, section table and whatever
  metadata higher layers record (fingerprints, digests, thresholds);
* one file per *section*, each listed in the manifest with the blake2b
  digest of its bytes;
* schema payloads under ``schemas/<content_digest>.schema`` — the
  textual format of :mod:`repro.schema.parser`, **addressed by the
  schema's content digest**, so identical schemas dedupe across
  repository versions and any rename/corruption of a payload file is
  detectable.

Integrity is checked on every read: a section whose bytes do not hash
to the manifest's recorded digest — a truncated write, a tampered file —
raises :class:`~repro.errors.SnapshotError`, as does a missing file, an
unparsable manifest or an unsupported format version.  A schema payload
additionally re-derives the parsed schema's content digest and compares
it to the file's address (the *foreign digest* check).  Loading never
silently degrades: wrong warm state must be impossible.

This module knows only about schemas; the matching-layer state
(similarity substrate, retained pipeline results) is layered on top by
:mod:`repro.matching.similarity.persist`, which stores its payloads as
sections here.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path

from repro.errors import SnapshotError
from repro.schema.model import Schema
from repro.schema.parser import parse_schema, serialize_schema
from repro.schema.repository import SchemaRepository

__all__ = ["SNAPSHOT_FORMAT", "SnapshotStore", "payload_digest"]

#: current on-disk format; bump on any layout/semantics change so stale
#: snapshots fail loudly instead of deserializing garbage
SNAPSHOT_FORMAT = 1

_MANIFEST = "manifest.json"

#: ownership marker, written before the first payload of the first save:
#: a directory carrying it is store-owned even when a crash killed that
#: save before the manifest landed, so re-snapshotting can recover it
_MARKER = ".snapshot-store"

#: advisory write lock (O_EXCL-created, holds the writer's pid); a save
#: racing a live writer raises instead of interleaving payloads/prune
_LOCK = ".snapshot-lock"

#: the payload shapes a save may prune: digest-addressed schema files,
#: digest-suffixed mutable sections, and leftover temp files — anything
#: else in a snapshot directory is foreign and is left untouched
_OWNED_PATTERNS = (
    re.compile(r"^schemas/[0-9a-f]+\.schema$"),
    re.compile(r"^[a-z][a-z0-9_]*-[0-9a-f]+\.json$"),
    re.compile(r"\.tmp$"),
)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def payload_digest(data: bytes) -> str:
    """Content hash of one payload file (same primitive as schema digests)."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _schema_section(digest: str) -> str:
    """Section name of a digest-addressed schema payload."""
    return f"schemas/{digest}.schema"


class SnapshotStore:
    """One snapshot directory: manifest + digest-verified sections.

    The writing protocol is all-at-once: :meth:`save` receives every
    section's text plus the metadata, writes payloads first and the
    manifest **last** (each file via write-to-temp + atomic rename), so
    a crash mid-save leaves either the previous complete snapshot or a
    manifest-less directory — never a manifest pointing at half-written
    payloads.  A manifest-less crash residue stays *recoverable*: an
    ownership marker (``.snapshot-store``) is written before the first
    payload, so the next save recognises the directory as its own and
    overwrites it rather than refusing it as foreign.  The guarantee
    survives *re*-saves (checkpoints over an
    existing snapshot) because payload files are never overwritten with
    different content in place: a section whose target file already
    holds the identical bytes is skipped, and writers of mutable
    content (the matching layer's results/substrate payloads) embed the
    content digest in the section *name*, so old-manifest → old-files
    stays intact until the new manifest atomically replaces it.  After
    the manifest lands, payload files it no longer references are
    pruned — a crash mid-prune merely leaves orphans for the next save.
    Reading is :meth:`manifest` + :meth:`read_section`, both of which
    raise :class:`~repro.errors.SnapshotError` on any inconsistency.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SnapshotStore({str(self.root)!r})"

    def exists(self) -> bool:
        """True when the directory holds a manifest (not necessarily valid)."""
        return (self.root / _MANIFEST).is_file()

    # -- writing -------------------------------------------------------------

    def save(self, meta: dict, sections: dict[str, str]) -> None:
        """Write a complete snapshot: payload sections, then the manifest.

        ``meta`` is recorded verbatim in the manifest (under its own
        keys); ``sections`` maps section names (relative paths) to text
        content.  The manifest's ``sections`` table records each
        payload's byte digest, and ``format`` is stamped with
        :data:`SNAPSHOT_FORMAT`.
        """
        if "format" in meta or "sections" in meta:
            raise SnapshotError(
                "snapshot meta must not define the reserved keys "
                "'format'/'sections'"
            )
        # A snapshot directory is store-owned: everything the manifest
        # does not reference gets pruned after a save.  Claiming a
        # directory that already holds unrelated files would therefore
        # delete them — refuse instead of destroying user data.  A
        # directory counts as ours only when its manifest.json has the
        # snapshot manifest *shape* (any format version, so stale
        # snapshots stay re-snapshotable); a foreign or unparsable
        # manifest.json — e.g. a web app's — marks the directory as not
        # ours just as surely as no manifest at all.
        if self.exists():
            if not self._holds_snapshot_manifest():
                raise SnapshotError(
                    f"refusing to write a snapshot into {self.root}: its "
                    "manifest.json is not a snapshot manifest (saving "
                    "would overwrite it and prune unrelated files); if "
                    "this really is a corrupt snapshot, delete the "
                    "directory and re-snapshot"
                )
        elif (
            self.root.is_dir()
            and any(self.root.iterdir())
            and not (self.root / _MARKER).is_file()
        ):
            raise SnapshotError(
                f"refusing to write a snapshot into {self.root}: the "
                "directory is non-empty but holds no snapshot manifest "
                "(saving would prune unrelated files); use an empty or "
                "dedicated directory"
            )
        # Claim the directory before the first payload: should this save
        # crash before the manifest lands, the marker lets the next save
        # recover the half-written directory instead of refusing it.
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / _MARKER).touch()
        self._acquire_lock()
        try:
            digests: dict[str, str] = {}
            for name, text in sections.items():
                data = text.encode("utf-8")
                digests[name] = payload_digest(data)
                self._write_file(name, data)
            manifest = dict(meta)
            manifest["format"] = SNAPSHOT_FORMAT
            manifest["sections"] = digests
            self._write_file(
                _MANIFEST,
                json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
            )
            self._prune(set(digests))
        finally:
            (self.root / _LOCK).unlink(missing_ok=True)

    def _acquire_lock(self) -> None:
        """Take the directory's advisory write lock, or raise.

        Two live processes checkpointing into one directory would
        interleave payload writes with each other's prune passes and
        could leave a manifest referencing deleted files; the lock makes
        the second writer fail loudly instead.  A lock left behind by a
        dead writer (crash mid-save) is detected by pid liveness and
        stolen, so crash recovery needs no manual cleanup.
        """
        lock = self.root / _LOCK
        # The lock appears atomically *with* its pid content (hard link
        # of a pre-written per-pid temp), so no reader can ever observe
        # an empty lock; a lock held by our own pid means another thread
        # of this process is saving, which is just as live as another
        # process — stealing happens only from provably dead holders.
        temp = self.root / f"{_LOCK}.{os.getpid()}"
        temp.write_text(str(os.getpid()), encoding="utf-8")
        try:
            for _attempt in (0, 1):
                try:
                    os.link(temp, lock)
                    return
                except FileExistsError:
                    try:
                        holder = int(lock.read_text(encoding="utf-8"))
                    except (OSError, ValueError):
                        holder = None
                    if holder is None or _pid_alive(holder):
                        raise SnapshotError(
                            f"snapshot directory {self.root} is being "
                            "written by another live writer"
                            f"{'' if holder is None else f' (pid {holder})'}"
                            "; a snapshot directory has exactly one "
                            "writer at a time"
                        ) from None
                    lock.unlink(missing_ok=True)  # stale: owner is gone
            raise SnapshotError(
                f"could not acquire the write lock of {self.root} (a "
                "racing writer keeps re-creating it)"
            )
        finally:
            temp.unlink(missing_ok=True)

    def _holds_snapshot_manifest(self) -> bool:
        """Whether manifest.json parses to the snapshot manifest shape.

        Deliberately version-agnostic: any format value passes, so a
        stale snapshot can be overwritten by a fresh save (the operator
        playbook) while a foreign ``manifest.json`` cannot.
        """
        try:
            data = json.loads(
                (self.root / _MANIFEST).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return False
        return (
            isinstance(data, dict)
            and "format" in data
            and isinstance(data.get("sections"), dict)
        )

    def _write_file(self, name: str, data: bytes) -> None:
        path = self.root / name
        if path.is_file() and path.read_bytes() == data:
            return  # identical content already on disk; nothing to do
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(path.name + ".tmp")
        temp.write_bytes(data)
        temp.replace(path)

    def _prune(self, keep: set[str]) -> None:
        """Delete payload files the just-written manifest does not reference.

        Runs only after the new manifest is durably in place, so the
        deleted files belong exclusively to superseded snapshots (e.g.
        schema payloads of replaced/removed repository versions, or
        digest-named result sections from earlier checkpoints); a crash
        mid-prune leaves orphans that the next save removes.  Only files
        matching the store's own payload shapes are candidates — a
        foreign file someone dropped into the directory after it was
        claimed (notes, ad-hoc backups) is never touched.
        """
        for path in self.root.rglob("*"):
            if not path.is_file():
                continue
            name = path.relative_to(self.root).as_posix()
            if name in keep or name in (_MANIFEST, _MARKER, _LOCK):
                continue
            if any(pattern.search(name) for pattern in _OWNED_PATTERNS):
                path.unlink(missing_ok=True)

    # -- reading -------------------------------------------------------------

    def manifest(self) -> dict:
        """The parsed manifest; raises when missing, malformed or stale."""
        path = self.root / _MANIFEST
        if not path.is_file():
            raise SnapshotError(f"{self.root} holds no snapshot (no {_MANIFEST})")
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot manifest {path} is unreadable: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or not isinstance(
            manifest.get("sections"), dict
        ):
            raise SnapshotError(f"snapshot manifest {path} is malformed")
        fmt = manifest.get("format")
        if fmt != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"snapshot at {self.root} has format {fmt!r}; this build "
                f"reads format {SNAPSHOT_FORMAT} — re-snapshot instead of "
                "loading stale state"
            )
        return manifest

    def read_section(self, name: str, manifest: dict | None = None) -> str:
        """One section's text, byte-digest-verified against the manifest."""
        manifest = manifest if manifest is not None else self.manifest()
        expected = manifest["sections"].get(name)
        if expected is None:
            raise SnapshotError(
                f"snapshot at {self.root} records no section {name!r}"
            )
        path = self.root / name
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise SnapshotError(
                f"snapshot section {name!r} is missing or unreadable: {exc}"
            ) from exc
        actual = payload_digest(data)
        if actual != expected:
            raise SnapshotError(
                f"snapshot section {name!r} is corrupt: bytes hash to "
                f"{actual}, manifest records {expected} (truncated or "
                "tampered file)"
            )
        return data.decode("utf-8")

    # -- schema payloads -----------------------------------------------------

    @staticmethod
    def schema_sections(schemas: list[Schema]) -> dict[str, str]:
        """Digest-addressed payload sections for a list of schemas.

        Identical schemas map to the identical section, so repository
        and query payloads dedupe for free.
        """
        return {
            _schema_section(schema.content_digest()): serialize_schema(schema)
            for schema in schemas
        }

    def read_schema(
        self, schema_id: str, digest: str, manifest: dict | None = None
    ) -> Schema:
        """Load one schema payload; verify it hashes to its address.

        The parsed schema's content digest must equal ``digest`` — the
        name the payload is stored under.  A file whose content hashes
        elsewhere (a *foreign* payload swapped into place) fails here
        even when its byte digest matches a manifest entry.
        """
        text = self.read_section(_schema_section(digest), manifest)
        schema = parse_schema(text, schema_id)
        if schema.content_digest() != digest:
            raise SnapshotError(
                f"schema payload {_schema_section(digest)!r} is foreign: "
                f"content hashes to {schema.content_digest()}, not to its "
                "address (id/content mismatch)"
            )
        return schema

    # -- repository + query persistence --------------------------------------

    @staticmethod
    def repository_meta(repository: SchemaRepository) -> dict:
        """Manifest metadata describing a repository (order-preserving)."""
        return {
            "repository_id": repository.repository_id,
            "repository_digest": repository.content_digest(),
            "schemas": [
                [schema.schema_id, schema.content_digest()]
                for schema in repository
            ],
        }

    @staticmethod
    def query_meta(queries: list[Schema]) -> list[list[str]]:
        """Manifest metadata describing a query list (order-preserving)."""
        return [[query.schema_id, query.content_digest()] for query in queries]

    def load_repository(self, manifest: dict | None = None) -> SchemaRepository:
        """Rebuild the repository in its recorded order, fully verified."""
        manifest = manifest if manifest is not None else self.manifest()
        meta = manifest.get("repository")
        if not isinstance(meta, dict) or not meta.get("schemas"):
            raise SnapshotError(
                f"snapshot at {self.root} records no repository"
            )
        schemas = [
            self.read_schema(schema_id, digest, manifest)
            for schema_id, digest in meta["schemas"]
        ]
        repository = SchemaRepository(meta["repository_id"], schemas)
        if repository.content_digest() != meta.get("repository_digest"):
            raise SnapshotError(
                "restored repository's content digest differs from the "
                "manifest's — snapshot is internally inconsistent"
            )
        return repository

    def load_queries(self, manifest: dict | None = None) -> list[Schema]:
        """Rebuild the retained query list in its recorded order."""
        manifest = manifest if manifest is not None else self.manifest()
        return [
            self.read_schema(schema_id, digest, manifest)
            for schema_id, digest in manifest.get("queries", [])
        ]

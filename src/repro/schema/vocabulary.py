"""Domain vocabularies for synthetic schema generation.

A :class:`Vocabulary` describes one application domain as a set of
:class:`Concept` records.  Each concept knows:

* its qualified name (``"bib:author"``) — the hidden semantic identity
  that mutation operators preserve and the simulated judge compares;
* surface forms — the names real schemas use for it (synonyms);
* abbreviations — short forms (``"qty"`` for quantity);
* a datatype for leaves;
* which concepts may appear as its children (for containers).

Four built-in domains (bibliography, commerce, medical, university) give
the generator enough lexical and structural variety that name matching is
non-trivial: different schemas over the same domain use different surface
forms, which is exactly the situation schema matchers exist for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.schema.model import Datatype

__all__ = [
    "Concept",
    "Vocabulary",
    "builtin_domains",
    "extended_domains",
    "all_domains",
    "get_domain",
]


@dataclass(frozen=True)
class Concept:
    """One domain concept with its surface vocabulary."""

    name: str
    surface_forms: tuple[str, ...]
    datatype: Datatype = Datatype.STRING
    abbreviations: tuple[str, ...] = ()
    children: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.surface_forms:
            raise SchemaError(f"concept {self.name!r} needs at least one surface form")

    @property
    def is_container(self) -> bool:
        return bool(self.children)

    def all_forms(self) -> tuple[str, ...]:
        """Every name this concept may appear under."""
        return self.surface_forms + self.abbreviations


class Vocabulary:
    """A named set of concepts with container/child structure."""

    def __init__(self, domain: str, concepts: list[Concept], roots: list[str]):
        self.domain = domain
        self._concepts: dict[str, Concept] = {}
        for concept in concepts:
            if concept.name in self._concepts:
                raise SchemaError(
                    f"duplicate concept {concept.name!r} in domain {domain!r}"
                )
            self._concepts[concept.name] = concept
        for concept in concepts:
            for child in concept.children:
                if child not in self._concepts:
                    raise SchemaError(
                        f"concept {concept.name!r} references unknown child {child!r}"
                    )
        self.roots = list(roots)
        for root in self.roots:
            if root not in self._concepts:
                raise SchemaError(f"unknown root concept {root!r}")
        if not self.roots:
            raise SchemaError(f"domain {domain!r} needs at least one root concept")

    def __len__(self) -> int:
        return len(self._concepts)

    def __contains__(self, name: str) -> bool:
        return name in self._concepts

    def concept(self, name: str) -> Concept:
        try:
            return self._concepts[name]
        except KeyError:
            raise SchemaError(
                f"domain {self.domain!r} has no concept {name!r}"
            ) from None

    def concepts(self) -> list[Concept]:
        return list(self._concepts.values())

    def containers(self) -> list[Concept]:
        return [c for c in self._concepts.values() if c.is_container]

    def leaves(self) -> list[Concept]:
        return [c for c in self._concepts.values() if not c.is_container]

    def synonyms_of(self, name: str) -> tuple[str, ...]:
        """All surface forms + abbreviations of a concept."""
        return self.concept(name).all_forms()


def _c(
    name: str,
    forms: str,
    datatype: Datatype = Datatype.STRING,
    abbrev: str = "",
    children: tuple[str, ...] = (),
) -> Concept:
    """Terse concept constructor: forms/abbrevs are comma-separated."""
    return Concept(
        name=name,
        surface_forms=tuple(f.strip() for f in forms.split(",") if f.strip()),
        datatype=Datatype.COMPLEX if children else datatype,
        abbreviations=tuple(a.strip() for a in abbrev.split(",") if a.strip()),
        children=children,
    )


def _bibliography() -> Vocabulary:
    concepts = [
        _c("bib:library", "library, collection, catalog, archive",
           children=("bib:book", "bib:article", "bib:journal")),
        _c("bib:book", "book, monograph, volume",
           children=("bib:title", "bib:author", "bib:editor", "bib:year",
                     "bib:publisher", "bib:isbn", "bib:price", "bib:chapter",
                     "bib:keywords")),
        _c("bib:article", "article, paper, publication",
           children=("bib:title", "bib:author", "bib:year", "bib:journal-ref",
                     "bib:pages", "bib:doi", "bib:abstract", "bib:keywords")),
        _c("bib:journal", "journal, periodical, magazine",
           children=("bib:title", "bib:issn", "bib:volume-no", "bib:issue",
                     "bib:publisher")),
        _c("bib:chapter", "chapter, section",
           children=("bib:title", "bib:pages")),
        _c("bib:author", "author, writer, creator",
           children=("bib:first-name", "bib:last-name", "bib:affiliation",
                     "bib:email")),
        _c("bib:editor", "editor, reviser",
           children=("bib:first-name", "bib:last-name", "bib:affiliation")),
        _c("bib:title", "title, name, heading", abbrev="ttl"),
        _c("bib:first-name", "first-name, given-name, forename", abbrev="fname, fn"),
        _c("bib:last-name", "last-name, surname, family-name", abbrev="lname, ln"),
        _c("bib:affiliation", "affiliation, institution, organization", abbrev="org"),
        _c("bib:email", "email, e-mail, mail-address", abbrev="eml"),
        _c("bib:year", "year, publication-year, date-published",
           Datatype.INTEGER, abbrev="yr"),
        _c("bib:publisher", "publisher, publishing-house, press", abbrev="pub"),
        _c("bib:isbn", "isbn, book-number", Datatype.IDENTIFIER),
        _c("bib:issn", "issn, serial-number", Datatype.IDENTIFIER),
        _c("bib:doi", "doi, digital-object-identifier", Datatype.IDENTIFIER),
        _c("bib:price", "price, cost, list-price", Datatype.DECIMAL, abbrev="prc"),
        _c("bib:pages", "pages, page-range, page-numbers", abbrev="pp, pgs"),
        _c("bib:abstract", "abstract, summary, synopsis", abbrev="abstr"),
        _c("bib:keywords", "keywords, subject-terms, topics", abbrev="kw"),
        _c("bib:journal-ref", "journal, venue, published-in", abbrev="jnl"),
        _c("bib:volume-no", "volume, volume-number", Datatype.INTEGER, abbrev="vol"),
        _c("bib:issue", "issue, number", Datatype.INTEGER, abbrev="no"),
    ]
    return Vocabulary("bibliography", concepts, roots=["bib:library", "bib:book",
                                                       "bib:article"])


def _commerce() -> Vocabulary:
    concepts = [
        _c("com:store", "store, shop, marketplace, catalog",
           children=("com:product", "com:order", "com:customer", "com:supplier")),
        _c("com:order", "order, purchase, sale, transaction",
           children=("com:order-id", "com:order-date", "com:customer",
                     "com:line-item", "com:total", "com:shipping", "com:status")),
        _c("com:line-item", "line-item, item, order-line, position",
           children=("com:product", "com:quantity", "com:unit-price",
                     "com:discount")),
        _c("com:product", "product, article, item, goods",
           children=("com:sku", "com:product-name", "com:description",
                     "com:price", "com:category", "com:stock", "com:weight")),
        _c("com:customer", "customer, client, buyer, account-holder",
           children=("com:customer-id", "com:full-name", "com:email",
                     "com:phone", "com:address")),
        _c("com:supplier", "supplier, vendor, distributor",
           children=("com:supplier-id", "com:company-name", "com:address",
                     "com:phone")),
        _c("com:address", "address, location, residence",
           children=("com:street", "com:city", "com:postal-code", "com:country")),
        _c("com:shipping", "shipping, delivery, shipment",
           children=("com:address", "com:carrier", "com:tracking-number")),
        _c("com:order-id", "order-id, order-number, reference",
           Datatype.IDENTIFIER, abbrev="ord-no"),
        _c("com:order-date", "order-date, purchase-date, date",
           Datatype.DATE, abbrev="dt"),
        _c("com:total", "total, amount, grand-total, sum",
           Datatype.DECIMAL, abbrev="tot"),
        _c("com:status", "status, state, order-status", abbrev="st"),
        _c("com:quantity", "quantity, count, amount-ordered",
           Datatype.INTEGER, abbrev="qty"),
        _c("com:unit-price", "unit-price, price-per-unit, rate",
           Datatype.DECIMAL, abbrev="uprice"),
        _c("com:discount", "discount, rebate, reduction",
           Datatype.DECIMAL, abbrev="disc"),
        _c("com:sku", "sku, product-code, article-number", Datatype.IDENTIFIER),
        _c("com:product-name", "name, product-name, label, designation"),
        _c("com:description", "description, details, long-text", abbrev="descr"),
        _c("com:price", "price, cost, list-price", Datatype.DECIMAL, abbrev="prc"),
        _c("com:category", "category, product-group, class", abbrev="cat"),
        _c("com:stock", "stock, inventory, on-hand", Datatype.INTEGER, abbrev="inv"),
        _c("com:weight", "weight, mass", Datatype.DECIMAL, abbrev="wt"),
        _c("com:customer-id", "customer-id, client-number, account-id",
           Datatype.IDENTIFIER, abbrev="cust-no"),
        _c("com:full-name", "name, full-name, customer-name"),
        _c("com:email", "email, e-mail, mail", abbrev="eml"),
        _c("com:phone", "phone, telephone, phone-number", abbrev="tel"),
        _c("com:street", "street, street-address, address-line"),
        _c("com:city", "city, town, municipality"),
        _c("com:postal-code", "postal-code, zip, zip-code", Datatype.IDENTIFIER),
        _c("com:country", "country, nation, country-code"),
        _c("com:carrier", "carrier, shipper, courier"),
        _c("com:tracking-number", "tracking-number, shipment-id, trace-code",
           Datatype.IDENTIFIER, abbrev="trk"),
        _c("com:supplier-id", "supplier-id, vendor-number",
           Datatype.IDENTIFIER),
        _c("com:company-name", "company, company-name, firm, business-name"),
    ]
    return Vocabulary("commerce", concepts, roots=["com:store", "com:order",
                                                   "com:product"])


def _medical() -> Vocabulary:
    concepts = [
        _c("med:hospital", "hospital, clinic, medical-center",
           children=("med:patient", "med:physician", "med:ward")),
        _c("med:patient", "patient, case, subject",
           children=("med:patient-id", "med:person-name", "med:birth-date",
                     "med:gender", "med:admission", "med:diagnosis",
                     "med:medication", "med:insurance")),
        _c("med:admission", "admission, hospitalization, stay",
           children=("med:admit-date", "med:discharge-date", "med:ward",
                     "med:reason")),
        _c("med:diagnosis", "diagnosis, condition, finding",
           children=("med:icd-code", "med:diagnosis-name", "med:severity",
                     "med:diagnosed-on")),
        _c("med:medication", "medication, drug, prescription, treatment",
           children=("med:drug-name", "med:dosage", "med:frequency",
                     "med:start-date", "med:end-date")),
        _c("med:physician", "physician, doctor, practitioner, clinician",
           children=("med:person-name", "med:specialty", "med:license-number")),
        _c("med:ward", "ward, department, unit",
           children=("med:ward-name", "med:bed-count")),
        _c("med:insurance", "insurance, coverage, health-plan",
           children=("med:policy-number", "med:provider")),
        _c("med:patient-id", "patient-id, medical-record-number, case-number",
           Datatype.IDENTIFIER, abbrev="mrn, pid"),
        _c("med:person-name", "name, full-name, person-name"),
        _c("med:birth-date", "birth-date, date-of-birth, born-on",
           Datatype.DATE, abbrev="dob"),
        _c("med:gender", "gender, sex"),
        _c("med:admit-date", "admission-date, admitted-on, start-of-stay",
           Datatype.DATE),
        _c("med:discharge-date", "discharge-date, released-on, end-of-stay",
           Datatype.DATE),
        _c("med:reason", "reason, cause, chief-complaint"),
        _c("med:icd-code", "icd-code, diagnosis-code, code", Datatype.IDENTIFIER),
        _c("med:diagnosis-name", "name, diagnosis-name, condition-name"),
        _c("med:severity", "severity, grade, stage"),
        _c("med:diagnosed-on", "diagnosed-on, diagnosis-date, found-on",
           Datatype.DATE),
        _c("med:drug-name", "drug, drug-name, medication-name, substance"),
        _c("med:dosage", "dosage, dose, strength", abbrev="dos"),
        _c("med:frequency", "frequency, schedule, times-per-day", abbrev="freq"),
        _c("med:start-date", "start-date, from, begin", Datatype.DATE),
        _c("med:end-date", "end-date, until, stop", Datatype.DATE),
        _c("med:specialty", "specialty, field, discipline"),
        _c("med:license-number", "license-number, registration-id",
           Datatype.IDENTIFIER),
        _c("med:ward-name", "name, ward-name, department-name"),
        _c("med:bed-count", "beds, bed-count, capacity", Datatype.INTEGER),
        _c("med:policy-number", "policy-number, contract-id",
           Datatype.IDENTIFIER),
        _c("med:provider", "provider, insurer, company"),
    ]
    return Vocabulary("medical", concepts, roots=["med:hospital", "med:patient"])


def _university() -> Vocabulary:
    concepts = [
        _c("uni:university", "university, college, institute",
           children=("uni:department", "uni:student", "uni:course")),
        _c("uni:department", "department, faculty, school",
           children=("uni:dept-name", "uni:chair", "uni:course",
                     "uni:lecturer")),
        _c("uni:course", "course, class, module, subject",
           children=("uni:course-code", "uni:course-title", "uni:credits",
                     "uni:lecturer", "uni:semester", "uni:enrollment")),
        _c("uni:student", "student, learner, enrollee",
           children=("uni:student-id", "uni:person-name", "uni:email",
                     "uni:major", "uni:gpa", "uni:enrollment")),
        _c("uni:lecturer", "lecturer, professor, instructor, teacher",
           children=("uni:person-name", "uni:email", "uni:office", "uni:rank")),
        _c("uni:enrollment", "enrollment, registration, participation",
           children=("uni:enroll-date", "uni:grade", "uni:status")),
        _c("uni:dept-name", "name, department-name, faculty-name"),
        _c("uni:chair", "chair, head, dean"),
        _c("uni:course-code", "code, course-code, course-number",
           Datatype.IDENTIFIER, abbrev="cno"),
        _c("uni:course-title", "title, course-title, name", abbrev="ttl"),
        _c("uni:credits", "credits, credit-points, ects", Datatype.INTEGER,
           abbrev="cp"),
        _c("uni:semester", "semester, term, session"),
        _c("uni:student-id", "student-id, matriculation-number, student-number",
           Datatype.IDENTIFIER, abbrev="sid"),
        _c("uni:person-name", "name, full-name, person-name"),
        _c("uni:email", "email, e-mail, mail-address", abbrev="eml"),
        _c("uni:major", "major, field-of-study, programme"),
        _c("uni:gpa", "gpa, grade-average, mean-grade", Datatype.DECIMAL),
        _c("uni:office", "office, room, office-number"),
        _c("uni:rank", "rank, position, academic-rank"),
        _c("uni:enroll-date", "enroll-date, registered-on, date", Datatype.DATE),
        _c("uni:grade", "grade, mark, score", Datatype.DECIMAL),
        _c("uni:status", "status, state", abbrev="st"),
    ]
    return Vocabulary("university", concepts, roots=["uni:university",
                                                     "uni:department",
                                                     "uni:course",
                                                     "uni:student"])


def _finance() -> Vocabulary:
    concepts = [
        _c("fin:bank", "bank, institution, financial-institution",
           children=("fin:account", "fin:customer", "fin:branch")),
        _c("fin:account", "account, bank-account, deposit-account",
           children=("fin:account-number", "fin:balance", "fin:currency",
                     "fin:owner", "fin:transaction", "fin:opened-on")),
        _c("fin:transaction", "transaction, booking, movement, entry",
           children=("fin:transaction-id", "fin:amount", "fin:value-date",
                     "fin:counterparty", "fin:purpose")),
        _c("fin:customer", "customer, client, account-holder",
           children=("fin:customer-id", "fin:holder-name", "fin:tax-id")),
        _c("fin:branch", "branch, office, subsidiary",
           children=("fin:branch-code", "fin:branch-name")),
        _c("fin:owner", "owner, holder, proprietor",
           children=("fin:holder-name", "fin:tax-id")),
        _c("fin:counterparty", "counterparty, beneficiary, payee",
           children=("fin:holder-name", "fin:iban")),
        _c("fin:account-number", "account-number, iban, account-id",
           Datatype.IDENTIFIER, abbrev="acct-no"),
        _c("fin:balance", "balance, current-balance, funds",
           Datatype.DECIMAL, abbrev="bal"),
        _c("fin:currency", "currency, currency-code, denomination",
           abbrev="ccy"),
        _c("fin:opened-on", "opened-on, opening-date, since", Datatype.DATE),
        _c("fin:transaction-id", "transaction-id, reference, booking-number",
           Datatype.IDENTIFIER, abbrev="txn"),
        _c("fin:amount", "amount, sum, value", Datatype.DECIMAL, abbrev="amt"),
        _c("fin:value-date", "value-date, booking-date, date", Datatype.DATE),
        _c("fin:purpose", "purpose, description, memo, reference-text"),
        _c("fin:customer-id", "customer-id, client-number",
           Datatype.IDENTIFIER),
        _c("fin:holder-name", "name, full-name, account-name"),
        _c("fin:tax-id", "tax-id, tax-number, fiscal-code",
           Datatype.IDENTIFIER, abbrev="tin"),
        _c("fin:branch-code", "branch-code, sort-code, routing-number",
           Datatype.IDENTIFIER),
        _c("fin:branch-name", "name, branch-name, office-name"),
        _c("fin:iban", "iban, account-number", Datatype.IDENTIFIER),
    ]
    return Vocabulary("finance", concepts, roots=["fin:bank", "fin:account"])


def _travel() -> Vocabulary:
    concepts = [
        _c("trv:agency", "agency, travel-agency, operator",
           children=("trv:trip", "trv:traveller", "trv:booking")),
        _c("trv:trip", "trip, journey, tour, itinerary",
           children=("trv:destination", "trv:departure-date",
                     "trv:return-date", "trv:price", "trv:flight",
                     "trv:hotel")),
        _c("trv:booking", "booking, reservation, order",
           children=("trv:booking-code", "trv:traveller", "trv:trip",
                     "trv:status")),
        _c("trv:flight", "flight, air-segment, connection",
           children=("trv:flight-number", "trv:origin", "trv:destination",
                     "trv:departure-time")),
        _c("trv:hotel", "hotel, accommodation, lodging",
           children=("trv:hotel-name", "trv:stars", "trv:check-in")),
        _c("trv:traveller", "traveller, passenger, guest, tourist",
           children=("trv:passenger-name", "trv:passport-number",
                     "trv:birth-date")),
        _c("trv:destination", "destination, to, arrival-city"),
        _c("trv:origin", "origin, from, departure-city"),
        _c("trv:departure-date", "departure-date, start-date, from-date",
           Datatype.DATE, abbrev="dep"),
        _c("trv:return-date", "return-date, end-date, until", Datatype.DATE),
        _c("trv:price", "price, cost, fare, rate", Datatype.DECIMAL),
        _c("trv:booking-code", "booking-code, confirmation-number, pnr",
           Datatype.IDENTIFIER),
        _c("trv:status", "status, state, booking-status"),
        _c("trv:flight-number", "flight-number, flight-code",
           Datatype.IDENTIFIER),
        _c("trv:departure-time", "departure-time, takeoff, leaves-at",
           Datatype.DATE),
        _c("trv:hotel-name", "name, hotel-name, property-name"),
        _c("trv:stars", "stars, category, rating", Datatype.INTEGER),
        _c("trv:check-in", "check-in, arrival, check-in-date", Datatype.DATE),
        _c("trv:passenger-name", "name, full-name, passenger-name"),
        _c("trv:passport-number", "passport-number, document-number, travel-id",
           Datatype.IDENTIFIER),
        _c("trv:birth-date", "birth-date, date-of-birth, born-on",
           Datatype.DATE, abbrev="dob"),
    ]
    return Vocabulary("travel", concepts, roots=["trv:agency", "trv:trip",
                                                 "trv:booking"])


_DOMAINS: dict[str, Vocabulary] | None = None
_EXTENDED: dict[str, Vocabulary] | None = None


def builtin_domains() -> dict[str, Vocabulary]:
    """The four default domain vocabularies, keyed by domain name.

    These are the domains the standard experiment workloads draw from;
    the set is stable so that seeded experiment numbers stay reproducible.
    """
    global _DOMAINS
    if _DOMAINS is None:
        vocabularies = [_bibliography(), _commerce(), _medical(), _university()]
        _DOMAINS = {v.domain: v for v in vocabularies}
    return dict(_DOMAINS)


def extended_domains() -> dict[str, Vocabulary]:
    """Opt-in extra domains (finance, travel).

    Not part of the default workloads — adding domains would change every
    seeded experiment — but available to user workloads via
    ``GeneratorConfig(domains=("finance", ...))``.
    """
    global _EXTENDED
    if _EXTENDED is None:
        vocabularies = [_finance(), _travel()]
        _EXTENDED = {v.domain: v for v in vocabularies}
    return dict(_EXTENDED)


def all_domains() -> dict[str, Vocabulary]:
    """Built-in plus extended domains."""
    return {**builtin_domains(), **extended_domains()}


def get_domain(name: str) -> Vocabulary:
    """Look up any known domain (built-in or extended) by name."""
    domains = all_domains()
    try:
        return domains[name]
    except KeyError:
        known = ", ".join(sorted(domains))
        raise SchemaError(f"unknown domain {name!r}; available: {known}") from None

"""Tree-structured schema model.

A :class:`Schema` is an ordered tree of :class:`SchemaElement` nodes, the
abstraction level at which XML schema matching operates in the paper's
line of work (element names + datatypes + parent/child structure; we do
not model the full XSD type system, which none of the cited matchers use
either).

Concept provenance
------------------
Every element optionally carries a ``concept`` identifier naming the
domain concept it denotes (e.g. ``"bib:author"``).  Synthetic generation
assigns concepts, and mutation operators preserve them.  The simulated
human judge (:mod:`repro.evaluation.judge`) decides semantic correctness
of a mapping by comparing concepts — this is what stands in for the human
evaluators the paper says are unaffordable at scale.
"""

from __future__ import annotations

import enum
import hashlib
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import SchemaError

__all__ = ["Datatype", "SchemaElement", "Schema"]


class Datatype(enum.Enum):
    """Leaf datatypes; a coarse but matcher-relevant set."""

    STRING = "string"
    INTEGER = "integer"
    DECIMAL = "decimal"
    DATE = "date"
    BOOLEAN = "boolean"
    IDENTIFIER = "identifier"
    COMPLEX = "complex"  # non-leaf / container elements

    @classmethod
    def parse(cls, token: str) -> "Datatype":
        """Parse a datatype token (case-insensitive)."""
        try:
            return cls(token.strip().lower())
        except ValueError:
            valid = ", ".join(d.value for d in cls)
            raise SchemaError(
                f"unknown datatype {token!r}; expected one of: {valid}"
            ) from None


@dataclass
class SchemaElement:
    """One node in a schema tree.

    Parameters
    ----------
    name:
        The element's label as it appears in the schema.
    datatype:
        Leaf datatype, or :attr:`Datatype.COMPLEX` for containers.
    concept:
        Hidden semantic identity (see module docstring); ``None`` for
        hand-written schemas without provenance.
    children:
        Ordered child elements.
    """

    name: str
    datatype: Datatype = Datatype.STRING
    concept: str | None = None
    children: list["SchemaElement"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise SchemaError("element name must be a non-empty string")

    def add_child(self, child: "SchemaElement") -> "SchemaElement":
        """Append ``child`` and return it (convenient for building trees)."""
        self.children.append(child)
        return child

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self) -> Iterator["SchemaElement"]:
        """Pre-order traversal of this subtree (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def subtree_size(self) -> int:
        """Number of elements in this subtree, including self."""
        return sum(1 for _ in self.walk())

    def copy(self) -> "SchemaElement":
        """Deep copy of this subtree."""
        return SchemaElement(
            name=self.name,
            datatype=self.datatype,
            concept=self.concept,
            children=[child.copy() for child in self.children],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SchemaElement({self.name!r}, {self.datatype.value},"
            f" children={len(self.children)})"
        )


class Schema:
    """A named schema tree with derived indexes.

    Elements get stable integer ids in pre-order; ids, parent pointers,
    depths and paths are computed once at construction.  The tree must not
    be mutated afterwards — build a new :class:`Schema` instead (mutation
    operators in :mod:`repro.schema.mutations` follow that rule).
    """

    def __init__(self, schema_id: str, root: SchemaElement):
        if not schema_id:
            raise SchemaError("schema_id must be a non-empty string")
        self.schema_id = schema_id
        self.root = root
        self._elements: list[SchemaElement] = list(root.walk())
        self._index: dict[int, int] = {
            id(element): i for i, element in enumerate(self._elements)
        }
        if len(self._index) != len(self._elements):
            raise SchemaError(
                f"schema {schema_id!r} contains a shared/cyclic subtree; "
                "every element object must appear exactly once"
            )
        self._parents: list[int | None] = [None] * len(self._elements)
        self._depths: list[int] = [0] * len(self._elements)
        for element in self._elements:
            parent_pos = self._index[id(element)]
            for child in element.children:
                child_pos = self._index[id(child)]
                self._parents[child_pos] = parent_pos
                self._depths[child_pos] = self._depths[parent_pos] + 1
        self._digest: str | None = None
        self._ancestor_masks: tuple[int, ...] | None = None
        self._parent_ids: tuple[int | None, ...] | None = None

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[SchemaElement]:
        return iter(self._elements)

    def elements(self) -> list[SchemaElement]:
        """All elements in pre-order (index == element id)."""
        return list(self._elements)

    def element(self, element_id: int) -> SchemaElement:
        """Element with the given pre-order id."""
        try:
            return self._elements[element_id]
        except IndexError:
            raise SchemaError(
                f"schema {self.schema_id!r} has no element {element_id}"
                f" (size {len(self)})"
            ) from None

    def element_id(self, element: SchemaElement) -> int:
        """Pre-order id of ``element`` (must belong to this schema)."""
        try:
            return self._index[id(element)]
        except KeyError:
            raise SchemaError(
                f"element {element.name!r} does not belong to schema"
                f" {self.schema_id!r}"
            ) from None

    def parent_id(self, element_id: int) -> int | None:
        """Id of the parent element, or ``None`` for the root."""
        self.element(element_id)  # bounds check
        return self._parents[element_id]

    def parent_ids(self) -> tuple[int | None, ...]:
        """All parent ids in pre-order (index == element id); memoised.

        The bulk counterpart of :meth:`parent_id` for per-search setup
        paths that need every parent anyway — one tuple handed out
        instead of one bounds-checked call per element per search.
        """
        if self._parent_ids is None:
            self._parent_ids = tuple(self._parents)
        return self._parent_ids

    def depth(self, element_id: int) -> int:
        """Root distance of an element (root is depth 0)."""
        self.element(element_id)
        return self._depths[element_id]

    def path(self, element_id: int) -> tuple[str, ...]:
        """Names from the root down to the element, inclusive."""
        names: list[str] = []
        current: int | None = element_id
        while current is not None:
            names.append(self._elements[current].name)
            current = self._parents[current]
        return tuple(reversed(names))

    def path_string(self, element_id: int) -> str:
        """Slash-joined path, e.g. ``book/author/name``."""
        return "/".join(self.path(element_id))

    def ancestors(self, element_id: int) -> list[int]:
        """Ids from the element's parent up to the root."""
        out: list[int] = []
        current = self._parents[element_id]
        while current is not None:
            out.append(current)
            current = self._parents[current]
        return out

    def is_ancestor(self, ancestor_id: int, descendant_id: int) -> bool:
        """True when ``ancestor_id`` lies strictly above ``descendant_id``."""
        current = self._parents[descendant_id]
        while current is not None:
            if current == ancestor_id:
                return True
            current = self._parents[current]
        return False

    def ancestor_masks(self) -> tuple[int, ...]:
        """Per-element ancestor bitsets: bit ``a`` of ``out[d]`` is set
        exactly when :meth:`is_ancestor` (``a``, ``d``) is true.

        Computed once per schema and memoised (schemas are immutable
        after construction).  The matching engine's flattened
        branch-and-bound reads ancestry as ``(out[target] >> parent) &
        1`` instead of walking parent chains per expansion — the hottest
        structural check in the search.  Pre-order ids guarantee a
        parent's mask is final before any child's is derived.
        """
        if self._ancestor_masks is None:
            masks = [0] * len(self._elements)
            for element_id, parent in enumerate(self._parents):
                if parent is not None:
                    masks[element_id] = masks[parent] | (1 << parent)
            self._ancestor_masks = tuple(masks)
        return self._ancestor_masks

    def content_digest(self) -> str:
        """Content hash of everything matching can observe about the schema.

        Covers the id, element names, datatypes and parent structure;
        ``concept`` provenance is deliberately excluded (only the oracle
        judge reads it).  Memoised — schemas are immutable after
        construction (see class docstring).
        """
        if self._digest is None:
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(self.schema_id.encode())
            for element_id, element in enumerate(self._elements):
                parent = self._parents[element_id]
                hasher.update(
                    f"\x1e{element.name}\x1f{element.datatype.value}"
                    f"\x1f{parent}".encode()
                )
            self._digest = hasher.hexdigest()
        return self._digest

    def leaves(self) -> list[int]:
        """Ids of all leaf elements."""
        return [i for i, e in enumerate(self._elements) if e.is_leaf]

    def concepts(self) -> set[str]:
        """The set of concepts present (ignoring elements without one)."""
        return {e.concept for e in self._elements if e.concept is not None}

    def copy(self, schema_id: str | None = None) -> "Schema":
        """Deep copy, optionally renamed."""
        return Schema(schema_id or self.schema_id, self.root.copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({self.schema_id!r}, size={len(self)})"

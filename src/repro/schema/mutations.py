"""Mutation operators over schema names and trees.

These operators serve two roles:

1. **Repository realism** — the generator renders each concept through a
   :class:`NameStyler` so the same concept appears as ``lastName``,
   ``last_name`` or ``SURNAME`` in different schemas.
2. **Synthetic scenarios** — personal schemas are derived from repository
   subtrees by semantic-preserving mutations (synonym swap, abbreviation,
   typo, subtree drop, flattening), following the synthetic-scenario idea
   of Sayyadian et al. (VLDB'05) that the paper cites as the standard way
   to obtain ground truth without human judges: because mutations preserve
   the ``concept`` provenance, every derived element's correct targets are
   known by construction.

All operators are pure: they return new elements/trees and never mutate
their inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SchemaError
from repro.schema.model import Schema, SchemaElement
from repro.schema.vocabulary import Vocabulary
from repro.util import rng as rng_util
from repro.util.text import tokenize_label

__all__ = [
    "NameStyler",
    "apply_typo",
    "abbreviate_tokens",
    "MutationConfig",
    "mutate_name",
    "mutate_subtree",
    "rename_schema",
    "extract_personal_schema",
]

_STYLES = ("camel", "snake", "kebab", "plain", "upper")


@dataclass(frozen=True)
class NameStyler:
    """Renders a token list in one of the usual schema naming styles."""

    style: str = "kebab"

    def __post_init__(self) -> None:
        if self.style not in _STYLES:
            raise SchemaError(
                f"unknown naming style {self.style!r}; expected one of {_STYLES}"
            )

    @classmethod
    def random(cls, generator: random.Random) -> "NameStyler":
        return cls(generator.choice(_STYLES))

    def render(self, label: str) -> str:
        """Re-render a (possibly multi-word) label in this style."""
        tokens = tokenize_label(label)
        if not tokens:
            return label
        if self.style == "camel":
            return tokens[0] + "".join(t.capitalize() for t in tokens[1:])
        if self.style == "snake":
            return "_".join(tokens)
        if self.style == "kebab":
            return "-".join(tokens)
        if self.style == "upper":
            return "_".join(t.upper() for t in tokens)
        return "".join(tokens)  # plain concatenation


def apply_typo(generator: random.Random, name: str) -> str:
    """Introduce a single realistic typo (swap, drop or double a letter).

    Names of length < 4 are returned unchanged — a typo in a very short
    name produces a different word, not a misspelling.
    """
    if len(name) < 4:
        return name
    kind = generator.choice(("swap", "drop", "double"))
    pos = generator.randrange(1, len(name) - 1)
    if kind == "swap":
        chars = list(name)
        chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
        return "".join(chars)
    if kind == "drop":
        return name[:pos] + name[pos + 1 :]
    return name[:pos] + name[pos] + name[pos:]


def abbreviate_tokens(label: str, keep: int = 4) -> str:
    """Crude consonant-biased abbreviation of each token (``quantity``→``qnty``)."""
    tokens = tokenize_label(label)
    out = []
    for token in tokens:
        if len(token) <= keep:
            out.append(token)
            continue
        head, rest = token[0], token[1:]
        consonants = [ch for ch in rest if ch not in "aeiou"]
        short = (head + "".join(consonants))[:keep]
        out.append(short if len(short) >= 2 else token[:keep])
    return " ".join(out)


@dataclass(frozen=True)
class MutationConfig:
    """Probabilities for the individual name-mutation operators.

    The defaults are tuned so that derived names stay recognisable to a
    lexical matcher most of the time but are renamed beyond lexical reach
    (synonym from the vocabulary) often enough to make matching imperfect.
    """

    synonym_probability: float = 0.45
    abbreviation_probability: float = 0.15
    typo_probability: float = 0.08
    restyle_probability: float = 0.9

    def __post_init__(self) -> None:
        for field_name in (
            "synonym_probability",
            "abbreviation_probability",
            "typo_probability",
            "restyle_probability",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise SchemaError(f"{field_name} must be in [0, 1], got {value!r}")


def mutate_name(
    generator: random.Random,
    name: str,
    concept: str | None,
    vocabulary: Vocabulary | None,
    config: MutationConfig = MutationConfig(),
    styler: NameStyler | None = None,
) -> str:
    """Produce a mutated surface form for an element.

    Mutations are applied independently: synonym replacement (needs the
    concept + vocabulary), abbreviation, typo, and re-styling.
    """
    if (
        vocabulary is not None
        and concept is not None
        and concept in vocabulary
        and generator.random() < config.synonym_probability
    ):
        name = generator.choice(vocabulary.synonyms_of(concept))
    if generator.random() < config.abbreviation_probability:
        name = abbreviate_tokens(name)
    if generator.random() < config.typo_probability:
        name = apply_typo(generator, name)
    if styler is None and generator.random() < config.restyle_probability:
        styler = NameStyler.random(generator)
    if styler is not None:
        name = styler.render(name)
    return name


def mutate_subtree(
    generator: random.Random,
    element: SchemaElement,
    vocabulary: Vocabulary | None,
    config: MutationConfig = MutationConfig(),
    drop_probability: float = 0.2,
    min_children_kept: int = 1,
    styler: NameStyler | None = None,
) -> SchemaElement:
    """Copy a subtree while mutating names and randomly dropping children.

    Dropping never removes the subtree root and keeps at least
    ``min_children_kept`` children of any node that had children (an empty
    personal schema is useless as a query).
    """
    new_name = mutate_name(
        generator, element.name, element.concept, vocabulary, config, styler
    )
    root = SchemaElement(
        name=new_name, datatype=element.datatype, concept=element.concept
    )
    children = list(element.children)
    if children:
        # Track children by identity: dataclass equality would conflate
        # equal duplicate siblings (e.g. two identical 'author' leaves)
        # and scramble their order.
        position = {id(child): i for i, child in enumerate(children)}
        kept = [c for c in children if generator.random() >= drop_probability]
        while len(kept) < min(min_children_kept, len(children)):
            kept_ids = {id(c) for c in kept}
            candidates = [c for c in children if id(c) not in kept_ids]
            kept.append(generator.choice(candidates))
        kept.sort(key=lambda c: position[id(c)])
        for child in kept:
            root.add_child(
                mutate_subtree(
                    generator,
                    child,
                    vocabulary,
                    config,
                    drop_probability,
                    min_children_kept,
                    styler,
                )
            )
    return root


def rename_schema(
    generator: random.Random,
    source: Schema,
    vocabulary: Vocabulary | None,
    config: MutationConfig = MutationConfig(),
    schema_id: str | None = None,
    element_probability: float = 1.0,
) -> Schema:
    """A shape-preserving rename of a schema (repository churn).

    Each element's surface name is re-drawn through :func:`mutate_name`
    with probability ``element_probability`` (one consistent
    :class:`NameStyler` for the whole schema, like real revisions;
    1.0 renames everything, lower values model the common revision that
    touches a handful of fields); tree structure, datatypes and concept
    provenance are copied verbatim.  Because no element is added,
    dropped or reordered, pre-order element ids are stable: element
    ``i`` of the result is the (possibly renamed) element ``i`` of the
    source — the invariant repository deltas
    (:mod:`repro.schema.delta`) rely on for id-preserving replacements.
    """
    if not 0.0 <= element_probability <= 1.0:
        raise SchemaError(
            f"element_probability must be in [0, 1], got {element_probability!r}"
        )
    styler = NameStyler.random(generator)

    def clone(element: SchemaElement) -> SchemaElement:
        name = element.name
        if generator.random() < element_probability:
            name = mutate_name(
                generator, name, element.concept, vocabulary, config, styler
            )
        return SchemaElement(
            name=name,
            datatype=element.datatype,
            concept=element.concept,
            children=[clone(child) for child in element.children],
        )

    return Schema(schema_id or source.schema_id, clone(source.root))


def extract_personal_schema(
    generator: random.Random,
    source: Schema,
    vocabulary: Vocabulary | None,
    target_size: int = 4,
    config: MutationConfig = MutationConfig(),
    schema_id: str | None = None,
) -> Schema:
    """Derive a small personal schema from a repository schema.

    Picks a subtree whose size is close to ``target_size``, then mutates it
    (synonyms/abbreviations/typos/drops) while preserving concept
    provenance.  The result is the "user-defined schema" of the paper's
    matching problems; its correct mappings are recoverable because the
    concepts survive mutation.
    """
    if target_size < 1:
        raise SchemaError(f"target_size must be >= 1, got {target_size!r}")
    candidates = [
        element
        for element in source
        if 1 <= element.subtree_size() <= max(target_size * 2, 3)
    ]
    if not candidates:
        candidates = list(source.elements())
    # Prefer subtrees whose size is closest to the target.
    best_distance = min(abs(c.subtree_size() - target_size) for c in candidates)
    closest = [
        c for c in candidates if abs(c.subtree_size() - target_size) == best_distance
    ]
    seed_element = generator.choice(closest)
    child = rng_util.derive(generator, "personal", source.schema_id)
    styler = NameStyler.random(child)
    mutated = mutate_subtree(
        child,
        seed_element,
        vocabulary,
        config=config,
        drop_probability=0.15 if seed_element.subtree_size() > target_size else 0.0,
        styler=styler,
    )
    return Schema(schema_id or f"personal-from-{source.schema_id}", mutated)

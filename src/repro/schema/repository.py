"""Schema repository: the searchable collection the matchers run against.

A :class:`SchemaRepository` is an immutable, indexed set of
:class:`~repro.schema.model.Schema` objects.  Matchers address elements
through :class:`ElementHandle` values — a (schema, element-id) pair with
convenience accessors — which are hashable and cheap, so answer sets and
mappings can be compared across systems.

Repositories evolve by construction, not mutation:
:meth:`SchemaRepository.apply` takes a
:class:`~repro.schema.delta.RepositoryDelta` and returns a *new*
repository plus a :class:`~repro.schema.delta.DeltaReport` describing —
at schema granularity, in content digests — exactly what changed.
Untouched :class:`Schema` objects are shared between the versions, so
their memoised digests (and everything keyed on them: score matrices,
token-index groups, candidate-cache entries) stay valid for free.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SchemaError
from repro.schema.model import Datatype, Schema, SchemaElement

if TYPE_CHECKING:  # pragma: no cover - type-only (delta imports this module's types)
    from repro.schema.delta import DeltaReport, RepositoryDelta

__all__ = ["ElementHandle", "SchemaRepository"]


@dataclass(frozen=True)
class ElementHandle:
    """A stable reference to one element of one repository schema."""

    schema: Schema
    element_id: int

    def __post_init__(self) -> None:
        if not 0 <= self.element_id < len(self.schema):
            self.schema.element(self.element_id)  # raises the canonical error

    @property
    def element(self) -> SchemaElement:
        return self.schema.element(self.element_id)

    @property
    def name(self) -> str:
        return self.element.name

    @property
    def datatype(self) -> Datatype:
        return self.element.datatype

    @property
    def concept(self) -> str | None:
        return self.element.concept

    @property
    def key(self) -> tuple[str, int]:
        """Hashable identity ``(schema_id, element_id)``."""
        return (self.schema.schema_id, self.element_id)

    def path_string(self) -> str:
        return f"{self.schema.schema_id}:{self.schema.path_string(self.element_id)}"

    def __hash__(self) -> int:
        return hash(self.key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ElementHandle):
            return NotImplemented
        return self.key == other.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ElementHandle({self.schema.schema_id}:{self.element_id} {self.name!r})"


class SchemaRepository:
    """An immutable collection of schemas with element-level access."""

    def __init__(self, repository_id: str, schemas: list[Schema]):
        if not repository_id:
            raise SchemaError("repository_id must be non-empty")
        if not schemas:
            raise SchemaError("a repository needs at least one schema")
        self.repository_id = repository_id
        self._schemas: dict[str, Schema] = {}
        for schema in schemas:
            if schema.schema_id in self._schemas:
                raise SchemaError(
                    f"duplicate schema id {schema.schema_id!r} in repository"
                )
            self._schemas[schema.schema_id] = schema
        self._digest: str | None = None

    def __len__(self) -> int:
        return len(self._schemas)

    def __iter__(self) -> Iterator[Schema]:
        return iter(self._schemas.values())

    def __contains__(self, schema_id: str) -> bool:
        return schema_id in self._schemas

    def schema(self, schema_id: str) -> Schema:
        try:
            return self._schemas[schema_id]
        except KeyError:
            raise SchemaError(
                f"repository {self.repository_id!r} has no schema {schema_id!r}"
            ) from None

    def schemas(self) -> list[Schema]:
        return list(self._schemas.values())

    def handle(self, schema_id: str, element_id: int) -> ElementHandle:
        return ElementHandle(self.schema(schema_id), element_id)

    def all_elements(self) -> Iterator[ElementHandle]:
        """Every element of every schema, as handles."""
        for schema in self._schemas.values():
            for element_id in range(len(schema)):
                yield ElementHandle(schema, element_id)

    def element_count(self) -> int:
        """Total number of elements across all schemas."""
        return sum(len(schema) for schema in self._schemas.values())

    def content_digest(self) -> str:
        """Content hash over all schemas, in repository order (memoised).

        Two repositories with equal digests are indistinguishable to any
        matcher — repository-global preparation (clustering) and the
        pipeline's candidate cache key on this rather than on
        ``repository_id``, which synthetic workloads reuse across
        different contents.
        """
        if self._digest is None:
            hasher = hashlib.blake2b(digest_size=16)
            for schema in self._schemas.values():
                hasher.update(schema.content_digest().encode())
            self._digest = hasher.hexdigest()
        return self._digest

    def apply(self, delta: "RepositoryDelta") -> tuple["SchemaRepository", "DeltaReport"]:
        """Apply an edit script; returns ``(new_repository, report)``.

        Replacements keep their position in repository order, removals
        drop out, additions append (in delta order) — so two processes
        applying the same delta to the same repository produce
        digest-identical results.  The receiver is never mutated, and
        untouched ``Schema`` objects are shared with the new repository.

        Raises :class:`~repro.errors.SchemaError` when an add collides
        with an existing id, a remove/replace names an unknown id, or
        the delta would empty the repository.
        """
        from repro.schema.delta import DeltaReport

        for schema in delta.adds:
            if schema.schema_id in self._schemas:
                raise SchemaError(
                    f"cannot add schema {schema.schema_id!r}: id already in "
                    f"repository {self.repository_id!r}"
                )
        for schema_id in delta.removes:
            if schema_id not in self._schemas:
                raise SchemaError(
                    f"cannot remove schema {schema_id!r}: not in repository "
                    f"{self.repository_id!r}"
                )
        replacements = {schema.schema_id: schema for schema in delta.replaces}
        for schema_id in replacements:
            if schema_id not in self._schemas:
                raise SchemaError(
                    f"cannot replace schema {schema_id!r}: not in repository "
                    f"{self.repository_id!r}"
                )
        removed_ids = set(delta.removes)
        new_schemas: list[Schema] = []
        changed: list[str] = []
        unchanged: list[str] = []
        removed_schemas: list[Schema] = []
        replaced_old: list[Schema] = []
        for schema in self._schemas.values():
            if schema.schema_id in removed_ids:
                removed_schemas.append(schema)
                continue
            replacement = replacements.get(schema.schema_id)
            if replacement is None:
                new_schemas.append(schema)
                unchanged.append(schema.schema_id)
                continue
            replaced_old.append(schema)
            new_schemas.append(replacement)
            if replacement.content_digest() == schema.content_digest():
                unchanged.append(schema.schema_id)
            else:
                changed.append(schema.schema_id)
        new_schemas.extend(delta.adds)
        changed.extend(schema.schema_id for schema in delta.adds)
        if not new_schemas:
            raise SchemaError(
                f"delta would empty repository {self.repository_id!r}"
            )
        new_repository = SchemaRepository(self.repository_id, new_schemas)
        report = DeltaReport(
            old_digest=self.content_digest(),
            new_digest=new_repository.content_digest(),
            added=tuple(schema.schema_id for schema in delta.adds),
            removed=delta.removes,
            replaced=tuple(schema.schema_id for schema in delta.replaces),
            changed=tuple(changed),
            unchanged=tuple(unchanged),
            removed_schemas=tuple(removed_schemas),
            replaced_old=tuple(replaced_old),
        )
        return new_repository, report

    def concept_index(self) -> dict[str, list[ElementHandle]]:
        """Concept -> handles of all elements denoting it (oracle support)."""
        index: dict[str, list[ElementHandle]] = {}
        for handle in self.all_elements():
            if handle.concept is not None:
                index.setdefault(handle.concept, []).append(handle)
        return index

    def stats(self) -> dict[str, float]:
        """Basic shape statistics (used in reports and tests)."""
        sizes = [len(schema) for schema in self._schemas.values()]
        leaves = sum(len(schema.leaves()) for schema in self._schemas.values())
        return {
            "schemas": float(len(sizes)),
            "elements": float(sum(sizes)),
            "min_size": float(min(sizes)),
            "max_size": float(max(sizes)),
            "mean_size": sum(sizes) / len(sizes),
            "leaf_fraction": leaves / max(1, sum(sizes)),
            "distinct_concepts": float(len(self.concept_index())),
        }

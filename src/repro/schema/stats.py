"""Repository statistics and lexical-diversity reports.

Experiment write-ups need to characterise the synthetic collection the
way the paper characterises its schema repositories: sizes, depth, how
many distinct surface forms each concept appears under (the lexical
spread that makes matching hard), and how many cross-domain homonyms
exist (the false-friend source).  These functions compute those numbers;
the workload documentation in EXPERIMENTS.md quotes them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.schema.repository import SchemaRepository
from repro.util.text import normalise_label

__all__ = ["LexicalStats", "lexical_stats", "depth_histogram", "describe_repository"]


@dataclass(frozen=True)
class LexicalStats:
    """Lexical diversity of a repository's concept naming."""

    distinct_concepts: int
    mean_surface_forms_per_concept: float
    max_surface_forms_per_concept: int
    homonym_labels: int  # normalised labels used by more than one concept
    unlabelled_elements: int  # noise elements without provenance


def lexical_stats(repository: SchemaRepository) -> LexicalStats:
    """Compute surface-form spread and homonymy over a repository."""
    forms_per_concept: dict[str, set[str]] = {}
    concepts_per_label: dict[str, set[str]] = {}
    unlabelled = 0
    for handle in repository.all_elements():
        label = normalise_label(handle.name)
        if handle.concept is None:
            unlabelled += 1
            continue
        forms_per_concept.setdefault(handle.concept, set()).add(label)
        concepts_per_label.setdefault(label, set()).add(handle.concept)
    if not forms_per_concept:
        return LexicalStats(0, 0.0, 0, 0, unlabelled)
    counts = [len(forms) for forms in forms_per_concept.values()]
    homonyms = sum(1 for concepts in concepts_per_label.values() if len(concepts) > 1)
    return LexicalStats(
        distinct_concepts=len(forms_per_concept),
        mean_surface_forms_per_concept=sum(counts) / len(counts),
        max_surface_forms_per_concept=max(counts),
        homonym_labels=homonyms,
        unlabelled_elements=unlabelled,
    )


def depth_histogram(repository: SchemaRepository) -> Counter:
    """Element count per tree depth across the repository."""
    histogram: Counter = Counter()
    for schema in repository:
        for element_id in range(len(schema)):
            histogram[schema.depth(element_id)] += 1
    return histogram


def describe_repository(repository: SchemaRepository) -> str:
    """A human-readable characterisation block (for reports)."""
    base = repository.stats()
    lexical = lexical_stats(repository)
    depths = depth_histogram(repository)
    max_depth = max(depths) if depths else 0
    lines = [
        f"repository {repository.repository_id!r}:",
        f"  schemas             : {int(base['schemas'])}",
        f"  elements            : {int(base['elements'])}"
        f" (sizes {int(base['min_size'])}..{int(base['max_size'])},"
        f" mean {base['mean_size']:.1f})",
        f"  max depth           : {max_depth}",
        f"  leaf fraction       : {base['leaf_fraction']:.2f}",
        f"  distinct concepts   : {lexical.distinct_concepts}",
        "  surface forms/conc. : "
        f"mean {lexical.mean_surface_forms_per_concept:.2f},"
        f" max {lexical.max_surface_forms_per_concept}",
        f"  homonym labels      : {lexical.homonym_labels}",
        f"  noise elements      : {lexical.unlabelled_elements}",
    ]
    return "\n".join(lines)

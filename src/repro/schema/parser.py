"""Textual schema format: parse and serialize.

The format is indentation-based (two spaces per level), one element per
line::

    book
      title : string
      author : complex @ bib:author
        first-name : string
        last-name : string
      year : integer

Each line is ``name [: datatype] [@ concept]``.  Missing datatypes default
to ``complex`` for elements with children and ``string`` for leaves.
The format exists so test fixtures and examples can define schemas
legibly; the synthetic generator builds :class:`~repro.schema.model.Schema`
objects directly.
"""

from __future__ import annotations

from repro.errors import SchemaParseError
from repro.schema.model import Datatype, Schema, SchemaElement

__all__ = ["parse_schema", "serialize_schema"]

_INDENT = "  "


def parse_schema(text: str, schema_id: str = "schema") -> Schema:
    """Parse the textual format into a :class:`Schema`.

    Raises :class:`~repro.errors.SchemaParseError` with a line number on
    malformed input (bad indentation, multiple roots, empty input...).
    """
    entries: list[tuple[int, int, str]] = []  # (line_no, depth, body)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip() or raw.lstrip().startswith("#"):
            continue
        stripped = raw.lstrip(" ")
        indent = len(raw) - len(stripped)
        if "\t" in raw[: indent + 1]:
            raise SchemaParseError("tabs are not allowed in indentation", line_no)
        if indent % len(_INDENT) != 0:
            raise SchemaParseError(
                f"indentation must be a multiple of {len(_INDENT)} spaces", line_no
            )
        entries.append((line_no, indent // len(_INDENT), stripped.rstrip()))

    if not entries:
        raise SchemaParseError("schema text contains no elements")

    first_line, first_depth, _ = entries[0]
    if first_depth != 0:
        raise SchemaParseError("the first element must not be indented", first_line)

    root: SchemaElement | None = None
    stack: list[SchemaElement] = []
    explicit_type: dict[int, bool] = {}

    for line_no, depth, body in entries:
        element, had_type = _parse_line(body, line_no)
        explicit_type[id(element)] = had_type
        if depth == 0:
            if root is not None:
                raise SchemaParseError(
                    "multiple root elements; a schema has exactly one root", line_no
                )
            root = element
            stack = [element]
            continue
        if depth > len(stack):
            raise SchemaParseError(
                f"indentation jumped from depth {len(stack) - 1} to {depth}", line_no
            )
        del stack[depth:]
        stack[-1].add_child(element)
        stack.append(element)

    assert root is not None  # guaranteed by the entries check above
    _apply_default_datatypes(root, explicit_type)
    return Schema(schema_id, root)


def _parse_line(body: str, line_no: int) -> tuple[SchemaElement, bool]:
    concept: str | None = None
    if "@" in body:
        body, _, concept_part = body.partition("@")
        concept = concept_part.strip()
        if not concept:
            raise SchemaParseError("'@' must be followed by a concept name", line_no)
    datatype = Datatype.STRING
    had_type = False
    if ":" in body:
        name_part, _, type_part = body.partition(":")
        type_token = type_part.strip()
        if not type_token:
            raise SchemaParseError("':' must be followed by a datatype", line_no)
        try:
            datatype = Datatype.parse(type_token)
        except Exception as exc:
            raise SchemaParseError(str(exc), line_no) from None
        had_type = True
    else:
        name_part = body
    name = name_part.strip()
    if not name:
        raise SchemaParseError("element name is empty", line_no)
    return SchemaElement(name=name, datatype=datatype, concept=concept), had_type


def _apply_default_datatypes(
    root: SchemaElement, explicit_type: dict[int, bool]
) -> None:
    for element in root.walk():
        if not explicit_type.get(id(element), False) and element.children:
            element.datatype = Datatype.COMPLEX


def serialize_schema(schema: Schema) -> str:
    """Serialize to the textual format; inverse of :func:`parse_schema`."""
    lines: list[str] = []

    def emit(element: SchemaElement, depth: int) -> None:
        body = element.name
        default = Datatype.COMPLEX if element.children else Datatype.STRING
        if element.datatype is not default:
            body += f" : {element.datatype.value}"
        if element.concept is not None:
            body += f" @ {element.concept}"
        lines.append(_INDENT * depth + body)
        for child in element.children:
            emit(child, depth + 1)

    emit(schema.root, 0)
    return "\n".join(lines) + "\n"

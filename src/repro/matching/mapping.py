"""Schema mappings: the elements of the search space (paper section 2.1).

"A schema mapping maps each element of a user-defined schema onto one
element in the repository."  Here a :class:`Mapping` assigns every
element of the personal (query) schema to a distinct element of a single
repository schema — the personal-schema-querying setting of the authors'
DEXA'05 formalisation, where a query is answered from one source schema
at a time.

Mappings are hashable values; their identity is the pair (query schema
id, tuple of target element keys), which is what makes answer sets of
different systems comparable (the subset property checks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MatchingError
from repro.schema.model import Schema
from repro.schema.repository import ElementHandle

__all__ = ["Mapping", "canonical_answers"]


def canonical_answers(answer_sets) -> list[list[tuple]]:
    """Canonical, comparable form of per-query mapping answer sets.

    ``[(mapping key, score), ...]`` per answer set, in score order —
    items, scores *and* ranking, the strongest equality the
    :class:`~repro.core.answers.AnswerSet` type offers.  This is the
    **single** definition of "byte-identical answers": the CLI's
    ``serve --verify`` and the benchmark contracts all compare through
    it, so they cannot silently drift apart in strength.  (The property
    test suites keep deliberately independent local copies — a test
    should not trust the library's own comparator.)
    """
    return [
        [(answer.item.key, answer.score) for answer in answers.answers()]
        for answers in answer_sets
    ]


@dataclass(frozen=True)
class Mapping:
    """An assignment of all query elements to elements of one repo schema.

    ``targets[i]`` is the image of the query element with pre-order id
    ``i``.  All targets live in the same repository schema and are
    pairwise distinct (injectivity), both enforced at construction.
    """

    query_schema_id: str
    targets: tuple[ElementHandle, ...]

    def __post_init__(self) -> None:
        if not self.targets:
            raise MatchingError("a mapping needs at least one target")
        first = self.targets[0].schema
        if any(t.schema is not first for t in self.targets):
            # distinct objects may still be the same schema id; only then
            # build the full id set for the error message
            schema_ids = {t.schema.schema_id for t in self.targets}
            if len(schema_ids) != 1:
                raise MatchingError(
                    f"mapping spans repository schemas {sorted(schema_ids)}; "
                    "a mapping must stay within one schema"
                )
        ids = tuple(t.element_id for t in self.targets)
        if len(set(ids)) != len(ids):
            raise MatchingError(
                "mapping assigns two query elements to the same target "
                f"(element ids {list(ids)})"
            )
        # injectivity already walked the targets; keep the result (the
        # answer-set layer hashes every mapping it ingests)
        object.__setattr__(self, "_target_ids", ids)

    @classmethod
    def _from_search(
        cls,
        query_schema_id: str,
        targets: tuple[ElementHandle, ...],
        target_ids: tuple[int, ...],
    ) -> "Mapping":
        """Construct without re-validating — for engine-produced output.

        The branch-and-bound guarantees single-schema injective
        assignments (``used`` excludes every assigned target), so
        :meth:`~repro.matching.base.Matcher.assemble` — which turns tens
        of thousands of search results into mappings on the hot path —
        skips the constructor's checks.  Every other producer goes
        through ``Mapping(...)`` and keeps them.
        """
        mapping = object.__new__(cls)
        object.__setattr__(mapping, "query_schema_id", query_schema_id)
        object.__setattr__(mapping, "targets", targets)
        object.__setattr__(mapping, "_target_ids", target_ids)
        return mapping

    @property
    def target_schema(self) -> Schema:
        return self.targets[0].schema

    @property
    def target_ids(self) -> tuple[int, ...]:
        return self._target_ids  # type: ignore[attr-defined]

    @property
    def key(self) -> tuple:
        """Hashable identity used across systems (computed once)."""
        key = self.__dict__.get("_key")
        if key is None:
            key = (
                self.query_schema_id,
                self.targets[0].schema.schema_id,
                self._target_ids,  # type: ignore[attr-defined]
            )
            object.__setattr__(self, "_key", key)
        return key

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(self.key)
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self.key == other.key

    def describe(self, query: Schema) -> str:
        """Human-readable pairing, one query element per line."""
        if query.schema_id != self.query_schema_id:
            raise MatchingError(
                f"mapping belongs to query {self.query_schema_id!r}, "
                f"not {query.schema_id!r}"
            )
        if len(query) != len(self.targets):
            raise MatchingError(
                f"mapping has {len(self.targets)} targets but the query has "
                f"{len(query)} elements"
            )
        lines = []
        for element_id in range(len(query)):
            source = query.path_string(element_id)
            target = self.targets[element_id]
            lines.append(f"  {source}  ->  {target.path_string()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Mapping({self.query_schema_id!r} -> "
            f"{self.target_schema.schema_id!r}:{self.target_ids})"
        )

"""Schema mappings: the elements of the search space (paper section 2.1).

"A schema mapping maps each element of a user-defined schema onto one
element in the repository."  Here a :class:`Mapping` assigns every
element of the personal (query) schema to a distinct element of a single
repository schema — the personal-schema-querying setting of the authors'
DEXA'05 formalisation, where a query is answered from one source schema
at a time.

Mappings are hashable values; their identity is the pair (query schema
id, tuple of target element keys), which is what makes answer sets of
different systems comparable (the subset property checks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MatchingError
from repro.schema.model import Schema
from repro.schema.repository import ElementHandle

__all__ = ["Mapping", "canonical_answers"]


def canonical_answers(answer_sets) -> list[list[tuple]]:
    """Canonical, comparable form of per-query mapping answer sets.

    ``[(mapping key, score), ...]`` per answer set, in score order —
    items, scores *and* ranking, the strongest equality the
    :class:`~repro.core.answers.AnswerSet` type offers.  This is the
    **single** definition of "byte-identical answers": the CLI's
    ``serve --verify`` and the benchmark contracts all compare through
    it, so they cannot silently drift apart in strength.  (The property
    test suites keep deliberately independent local copies — a test
    should not trust the library's own comparator.)
    """
    return [
        [(answer.item.key, answer.score) for answer in answers.answers()]
        for answers in answer_sets
    ]


@dataclass(frozen=True)
class Mapping:
    """An assignment of all query elements to elements of one repo schema.

    ``targets[i]`` is the image of the query element with pre-order id
    ``i``.  All targets live in the same repository schema and are
    pairwise distinct (injectivity), both enforced at construction.
    """

    query_schema_id: str
    targets: tuple[ElementHandle, ...]

    def __post_init__(self) -> None:
        if not self.targets:
            raise MatchingError("a mapping needs at least one target")
        schema_ids = {t.schema.schema_id for t in self.targets}
        if len(schema_ids) != 1:
            raise MatchingError(
                f"mapping spans repository schemas {sorted(schema_ids)}; "
                "a mapping must stay within one schema"
            )
        ids = [t.element_id for t in self.targets]
        if len(set(ids)) != len(ids):
            raise MatchingError(
                "mapping assigns two query elements to the same target "
                f"(element ids {ids})"
            )

    @property
    def target_schema(self) -> Schema:
        return self.targets[0].schema

    @property
    def target_ids(self) -> tuple[int, ...]:
        return tuple(t.element_id for t in self.targets)

    @property
    def key(self) -> tuple:
        """Hashable identity used across systems."""
        return (
            self.query_schema_id,
            self.target_schema.schema_id,
            self.target_ids,
        )

    def __hash__(self) -> int:
        return hash(self.key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self.key == other.key

    def describe(self, query: Schema) -> str:
        """Human-readable pairing, one query element per line."""
        if query.schema_id != self.query_schema_id:
            raise MatchingError(
                f"mapping belongs to query {self.query_schema_id!r}, "
                f"not {query.schema_id!r}"
            )
        if len(query) != len(self.targets):
            raise MatchingError(
                f"mapping has {len(self.targets)} targets but the query has "
                f"{len(query)} elements"
            )
        lines = []
        for element_id in range(len(query)):
            source = query.path_string(element_id)
            target = self.targets[element_id]
            lines.append(f"  {source}  ->  {target.path_string()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Mapping({self.query_schema_id!r} -> "
            f"{self.target_schema.schema_id!r}:{self.target_ids})"
        )

"""Incremental re-matching over an evolving repository.

Real schema repositories are not fixed: schemas get registered, revised
and retired while queries keep arriving.  Before this module, any
repository change forced a full re-match of every query against every
schema.  The pieces that make incremental work sound already existed —

* per-pair search results are plain data, retained by the pipeline
  (:class:`~repro.matching.pipeline.PipelineResult.pair_results`);
* :class:`~repro.schema.delta.DeltaReport` names, in content digests,
  exactly which schemas a delta changed;
* the similarity substrate keys matrices by schema content, so
  untouched schemas' matrices survive evolution for free;
* the branch-and-bound's static admissible bound
  (:func:`~repro.matching.engine.threshold_unreachable`) proves many
  (query, new schema) searches empty without running them —

and :class:`EvolutionSession` ties them together.  A session holds one
matcher, one query set and one threshold; :meth:`EvolutionSession.match`
runs the cold baseline, :meth:`EvolutionSession.apply` evolves the
repository by a :class:`~repro.schema.delta.RepositoryDelta` and
re-matches **incrementally**: results are reused for unchanged schemas,
skipped where the bound proves emptiness, recomputed only where the
delta can actually matter.  The answer sets are byte-identical to a
cold re-match of the new repository — for every matcher (matchers with
repository-global state transparently fall back to a full, still
identical, recompute) and every delta kind, property-tested in
``tests/matching/test_evolution.py`` and benchmarked in
``benchmarks/bench_evolution.py`` (≥ 2× over cold at ≤ 10 % churn).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.answers import AnswerSet
from repro.errors import MatchingError
from repro.matching.base import Matcher
from repro.matching.executor import ShardExecutor
from repro.matching.pipeline import (
    CandidateCache,
    MatchingPipeline,
    PipelineResult,
    RematchStats,
    matcher_fingerprint,
)
from repro.schema.delta import DeltaReport, RepositoryDelta
from repro.schema.model import Schema
from repro.schema.repository import SchemaRepository

__all__ = ["EvolutionSession"]


class EvolutionSession:
    """Matcher + queries + threshold, tracked across repository versions.

    The session owns a :class:`~repro.matching.pipeline.MatchingPipeline`
    (``workers``/``shards``/``cache`` as in
    :meth:`~repro.matching.base.Matcher.batch_match`) and remembers the
    last repository and result, so replaying a delta stream is::

        session = EvolutionSession(matcher, queries, delta_max=0.3)
        session.match(repository)          # cold baseline
        for delta in stream:
            result, report = session.apply(delta)   # incremental

    ``session.answer_sets`` always equals what a cold
    ``matcher.batch_match(queries, session.repository, delta_max)``
    would return — byte for byte.
    """

    def __init__(
        self,
        matcher: Matcher,
        queries: Sequence[Schema],
        delta_max: float,
        *,
        workers: int | None = None,
        shards: int | None = None,
        cache: CandidateCache | bool | None = None,
        executor: ShardExecutor | None = None,
    ):
        if delta_max < 0:
            raise MatchingError(f"delta_max must be >= 0, got {delta_max!r}")
        self.matcher = matcher
        self.queries = list(queries)
        if not self.queries:
            raise MatchingError("an evolution session needs at least one query")
        self.delta_max = delta_max
        self._pipeline = MatchingPipeline(
            matcher, workers=workers, shards=shards, cache=cache,
            executor=executor,
        )
        self._repository: SchemaRepository | None = None
        self._result: PipelineResult | None = None
        self.last_report: DeltaReport | None = None

    @classmethod
    def from_state(
        cls,
        matcher: Matcher,
        repository: SchemaRepository,
        result: PipelineResult,
        queries: Sequence[Schema],
        *,
        workers: int | None = None,
        shards: int | None = None,
        cache: CandidateCache | bool | None = None,
        executor: ShardExecutor | None = None,
    ) -> "EvolutionSession":
        """Resume a session from a previously computed result.

        The warm-start path: ``result`` (typically restored from a
        snapshot, see :mod:`repro.matching.similarity.persist`) must
        have been produced by the *same* matcher configuration for
        exactly ``queries`` against ``repository`` — all three are
        digest/fingerprint-checked here, so a resumed session can never
        silently carry state computed elsewhere.  The returned session
        behaves as if it had just run :meth:`match`.
        """
        if result.matcher_key != matcher_fingerprint(matcher):
            raise MatchingError(
                "cannot resume: result was computed by a differently "
                "configured matcher (fingerprints differ)"
            )
        if result.repository_digest != repository.content_digest():
            raise MatchingError(
                "cannot resume: result was computed against a different "
                "repository version (content digests differ)"
            )
        if result.query_digests != tuple(
            query.content_digest() for query in queries
        ):
            raise MatchingError(
                "cannot resume: result was computed for a different query "
                "list (content digests differ)"
            )
        if not result.pair_results:
            raise MatchingError(
                "cannot resume: result retains no pair_results (produced "
                "by MatchingPipeline.run / rematch)"
            )
        session = cls(
            matcher,
            queries,
            result.delta_max,
            workers=workers,
            shards=shards,
            cache=cache,
            executor=executor,
        )
        session._repository = repository
        session._result = result
        return session

    # -- state accessors -----------------------------------------------------

    @property
    def repository(self) -> SchemaRepository:
        """The current repository version (after :meth:`match`/:meth:`apply`)."""
        if self._repository is None:
            raise MatchingError("session has no repository yet; call match()")
        return self._repository

    @property
    def result(self) -> PipelineResult:
        """The latest matching result over the current repository."""
        if self._result is None:
            raise MatchingError("session has no result yet; call match()")
        return self._result

    @property
    def answer_sets(self) -> list[AnswerSet]:
        """Per-query answer sets over the current repository version."""
        return self.result.answer_sets

    @property
    def last_rematch(self) -> RematchStats | None:
        """Stats of the latest incremental step (``None`` after a cold run)."""
        return self.result.rematch

    # -- lifecycle -----------------------------------------------------------

    def match(self, repository: SchemaRepository) -> PipelineResult:
        """Cold full match; (re)bases the session on ``repository``."""
        self._result = self._pipeline.run(
            self.queries, repository, self.delta_max
        )
        self._repository = repository
        self.last_report = None
        return self._result

    def extend(self, queries: Sequence[Schema]) -> list[AnswerSet]:
        """Grow the session's query set; returns the new queries' answers.

        The serving path: a long-lived session accumulates queries as
        they arrive.  The new queries are matched against the *current*
        repository version through the session's pipeline and their
        pair results merged into the retained state, so later deltas
        re-match them incrementally alongside the original set.  Content
        digests already tracked by the session are rejected — callers
        (the :class:`~repro.matching.service.MatchingService`) dedupe
        and serve those from the retained answer sets instead.
        """
        new_queries = list(queries)
        if not new_queries:
            return []
        result = self.result  # raises before match()
        known = set(result.query_digests)
        fresh: set[str] = set()
        for query in new_queries:
            digest = query.content_digest()
            if digest in known or digest in fresh:
                raise MatchingError(
                    f"query {query.schema_id!r} (digest {digest}) is "
                    "already tracked by this session"
                )
            fresh.add(digest)
        addition = self._pipeline.run(
            new_queries, self.repository, self.delta_max
        )
        result.answer_sets.extend(addition.answer_sets)
        result.pair_results.extend(addition.pair_results)
        result.query_digests = result.query_digests + addition.query_digests
        self.queries.extend(new_queries)
        return addition.answer_sets

    def apply(
        self, delta: RepositoryDelta
    ) -> tuple[PipelineResult, DeltaReport]:
        """Evolve the repository by ``delta`` and re-match incrementally.

        Returns the new result and the application report; the session's
        ``repository``/``result`` advance to the new version.  The
        report is also kept as :attr:`last_report`.
        """
        new_repository, report = self.repository.apply(delta)
        return self.rebase(new_repository, report)

    def rebase(
        self, repository: SchemaRepository, report: DeltaReport
    ) -> tuple[PipelineResult, DeltaReport]:
        """Adopt an externally applied repository version incrementally.

        ``repository``/``report`` must come from ``apply()`` on the
        session's current repository (digest-checked by the pipeline);
        useful when one delta application is shared by several sessions
        (e.g. one per matcher under comparison).
        """
        self._result = self._pipeline.rematch(
            self.queries,
            repository,
            self.delta_max,
            previous=self.result,
            report=report,
        )
        self._repository = repository
        self.last_report = report
        return self._result, report

"""Matcher registry: build systems by name.

Central place mapping system names to constructors, used by the CLI and
the experiment configs so that a run is fully described by plain data
(name + parameter dict).  :func:`batch_match` is the one-call entry
point from plain data to the sharded matching pipeline.

Beyond the paper's five search systems, the registry carries the
**backend variants** — ``bm25``, ``dense`` and ``ensemble`` — which run
the exhaustive search over a *derived* objective whose name plane is a
different :mod:`similarity backend
<repro.matching.similarity.backends>`.  A variant's objective
fingerprints differently from the base objective (the backend is part
of the identity), so variants form their own matcher families: the
bounds technique compares systems *within* one family — e.g. a beam
search against the exhaustive baseline on the same BM25 objective —
never across backends, whose answer scores are not comparable.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.core.answers import AnswerSet
from repro.errors import MatchingError
from repro.matching.base import Matcher
from repro.matching.beam import BeamMatcher
from repro.matching.clustering import ClusteringMatcher
from repro.matching.exhaustive import ExhaustiveMatcher
from repro.matching.hybrid import HybridMatcher
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.backends import (
    EnsembleBackend,
    HashedVectorBackend,
    LexicalBackend,
    SparseBM25Backend,
)
from repro.matching.topk import TopKCandidateMatcher
from repro.schema.model import Schema
from repro.schema.repository import SchemaRepository

__all__ = [
    "available_matchers",
    "batch_match",
    "evolution_session",
    "make_matcher",
    "matching_service",
    "replica_group",
]


def _variant(name: str, objective: ObjectiveFunction, backend) -> Matcher:
    """An exhaustive matcher over ``objective`` rebased onto ``backend``.

    The derived objective shares the base's name similarity and weights
    but scores names through ``backend`` — and gets its own substrate,
    so no matrix or kernel row crosses backends.  The instance ``name``
    carries the variant name into reports and matcher fingerprints.
    """
    matcher = ExhaustiveMatcher(objective.with_backend(backend))
    matcher.name = name
    return matcher


def _bm25_matcher(
    objective: ObjectiveFunction, k1: float = 1.5, b: float = 0.75
) -> Matcher:
    return _variant("bm25", objective, SparseBM25Backend(k1=k1, b=b))


def _dense_matcher(
    objective: ObjectiveFunction, dim: int = 256, n: int = 3
) -> Matcher:
    return _variant("dense", objective, HashedVectorBackend(dim=int(dim), n=int(n)))


def _ensemble_matcher(
    objective: ObjectiveFunction,
    lexical: float = 0.5,
    bm25: float = 0.25,
    dense: float = 0.25,
    k1: float = 1.5,
    b: float = 0.75,
    dim: int = 256,
    n: int = 3,
) -> Matcher:
    backend = EnsembleBackend(
        [
            LexicalBackend(objective.name_similarity),
            SparseBM25Backend(k1=k1, b=b),
            HashedVectorBackend(dim=int(dim), n=int(n)),
        ],
        [lexical, bm25, dense],
    )
    return _variant("ensemble", objective, backend)


_FACTORIES: dict[str, Callable[..., Matcher]] = {
    "exhaustive": ExhaustiveMatcher,
    "beam": BeamMatcher,
    "clustering": ClusteringMatcher,
    "topk": TopKCandidateMatcher,
    "hybrid": HybridMatcher,
    "bm25": _bm25_matcher,
    "dense": _dense_matcher,
    "ensemble": _ensemble_matcher,
}


def available_matchers() -> list[str]:
    """Names accepted by :func:`make_matcher`."""
    return sorted(_FACTORIES)


def make_matcher(
    name: str, objective: ObjectiveFunction, **params: object
) -> Matcher:
    """Instantiate a matcher by name with keyword parameters.

    All matchers built against the *same* ``objective`` instance satisfy
    the shared-objective precondition by construction.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise MatchingError(
            f"unknown matcher {name!r}; available: {', '.join(available_matchers())}"
        ) from None
    return factory(objective, **params)


def batch_match(
    name: str,
    objective: ObjectiveFunction,
    queries: Sequence[Schema],
    repository: SchemaRepository,
    delta_max: float,
    *,
    params: Mapping[str, object] | None = None,
    workers: int | None = None,
    shards: int | None = None,
    cache: object | None = None,
    executor: object | None = None,
) -> list[AnswerSet]:
    """Run many queries through the sharded pipeline, by matcher name.

    Convenience wrapper: ``make_matcher(name, objective, **params)``
    followed by :meth:`~repro.matching.base.Matcher.batch_match`.  The
    run is fully described by plain data plus the objective, which is
    what the CLI and experiment configs need.
    """
    matcher = make_matcher(name, objective, **(params or {}))
    return matcher.batch_match(
        queries, repository, delta_max, workers=workers, shards=shards,
        cache=cache, executor=executor,
    )


def evolution_session(
    name: str,
    objective: ObjectiveFunction,
    queries: Sequence[Schema],
    delta_max: float,
    *,
    params: Mapping[str, object] | None = None,
    workers: int | None = None,
    shards: int | None = None,
    cache: object | None = None,
    executor: object | None = None,
):
    """An :class:`~repro.matching.evolution.EvolutionSession` by matcher name.

    The evolving-repository counterpart of :func:`batch_match`: the
    session is fully described by plain data plus the objective.  Call
    ``session.match(repository)`` for the cold baseline, then
    ``session.apply(delta)`` per evolution step.
    """
    from repro.matching.evolution import EvolutionSession

    matcher = make_matcher(name, objective, **(params or {}))
    return EvolutionSession(
        matcher, queries, delta_max, workers=workers, shards=shards,
        cache=cache, executor=executor,
    )


def matching_service(
    name: str,
    objective: ObjectiveFunction,
    delta_max: float,
    *,
    params: Mapping[str, object] | None = None,
    **options: object,
):
    """A :class:`~repro.matching.service.MatchingService` by matcher name.

    The serving counterpart of :func:`batch_match`: the service is fully
    described by plain data plus the objective.  ``options`` are
    forwarded to the service constructor (``store``, ``max_batch``,
    ``max_delay``, ``workers``, ``shards``, ``cache``, ``executor``,
    ``checkpoint_every``); call ``await service.start(repository)`` (or
    just ``start()`` over a snapshot store) before submitting requests.
    """
    from repro.matching.service import MatchingService

    matcher = make_matcher(name, objective, **(params or {}))
    return MatchingService(matcher, delta_max, **options)


def replica_group(
    name: str,
    objective: ObjectiveFunction,
    replicas: int,
    delta_max: float,
    *,
    params: Mapping[str, object] | None = None,
    **options: object,
):
    """A :class:`~repro.matching.replication.ReplicaGroup` by matcher name.

    Builds ``replicas`` config-equal matchers, each over its **own**
    clone of ``objective`` (same name similarity and weights — the value
    caches are shareable, the similarity substrates must not be), which
    is the replica group's distinct-objective requirement.  Backend
    variants (``bm25``/``dense``/``ensemble``) derive their backends
    inside the factory, so clones stay config-identical there too.
    ``options`` are forwarded to the group constructor (``store``,
    ``max_batch``, ``max_delay``, ``workers``, ``shards``, ``cache``,
    ``executor``, ``delivery``, ``max_lag``, ``settle_timeout``).
    """
    from repro.matching.replication import ReplicaGroup

    if replicas < 1:
        raise MatchingError(f"replicas must be >= 1, got {replicas!r}")
    matchers = [
        make_matcher(
            name,
            ObjectiveFunction(objective.name_similarity, objective.weights),
            **(params or {}),
        )
        for _ in range(replicas)
    ]
    return ReplicaGroup(matchers, delta_max, **options)

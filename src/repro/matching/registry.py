"""Matcher registry: build systems by name.

Central place mapping system names to constructors, used by the CLI and
the experiment configs so that a run is fully described by plain data
(name + parameter dict).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import MatchingError
from repro.matching.base import Matcher
from repro.matching.beam import BeamMatcher
from repro.matching.clustering import ClusteringMatcher
from repro.matching.exhaustive import ExhaustiveMatcher
from repro.matching.hybrid import HybridMatcher
from repro.matching.objective import ObjectiveFunction
from repro.matching.topk import TopKCandidateMatcher

__all__ = ["available_matchers", "make_matcher"]

_FACTORIES: dict[str, Callable[..., Matcher]] = {
    "exhaustive": ExhaustiveMatcher,
    "beam": BeamMatcher,
    "clustering": ClusteringMatcher,
    "topk": TopKCandidateMatcher,
    "hybrid": HybridMatcher,
}


def available_matchers() -> list[str]:
    """Names accepted by :func:`make_matcher`."""
    return sorted(_FACTORIES)


def make_matcher(
    name: str, objective: ObjectiveFunction, **params: object
) -> Matcher:
    """Instantiate a matcher by name with keyword parameters.

    All matchers built against the *same* ``objective`` instance satisfy
    the shared-objective precondition by construction.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise MatchingError(
            f"unknown matcher {name!r}; available: {', '.join(available_matchers())}"
        ) from None
    return factory(objective, **params)

"""Matcher registry: build systems by name.

Central place mapping system names to constructors, used by the CLI and
the experiment configs so that a run is fully described by plain data
(name + parameter dict).  :func:`batch_match` is the one-call entry
point from plain data to the sharded matching pipeline.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.core.answers import AnswerSet
from repro.errors import MatchingError
from repro.matching.base import Matcher
from repro.matching.beam import BeamMatcher
from repro.matching.clustering import ClusteringMatcher
from repro.matching.exhaustive import ExhaustiveMatcher
from repro.matching.hybrid import HybridMatcher
from repro.matching.objective import ObjectiveFunction
from repro.matching.topk import TopKCandidateMatcher
from repro.schema.model import Schema
from repro.schema.repository import SchemaRepository

__all__ = [
    "available_matchers",
    "batch_match",
    "evolution_session",
    "make_matcher",
    "matching_service",
]

_FACTORIES: dict[str, Callable[..., Matcher]] = {
    "exhaustive": ExhaustiveMatcher,
    "beam": BeamMatcher,
    "clustering": ClusteringMatcher,
    "topk": TopKCandidateMatcher,
    "hybrid": HybridMatcher,
}


def available_matchers() -> list[str]:
    """Names accepted by :func:`make_matcher`."""
    return sorted(_FACTORIES)


def make_matcher(
    name: str, objective: ObjectiveFunction, **params: object
) -> Matcher:
    """Instantiate a matcher by name with keyword parameters.

    All matchers built against the *same* ``objective`` instance satisfy
    the shared-objective precondition by construction.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise MatchingError(
            f"unknown matcher {name!r}; available: {', '.join(available_matchers())}"
        ) from None
    return factory(objective, **params)


def batch_match(
    name: str,
    objective: ObjectiveFunction,
    queries: Sequence[Schema],
    repository: SchemaRepository,
    delta_max: float,
    *,
    params: Mapping[str, object] | None = None,
    workers: int | None = None,
    shards: int | None = None,
    cache: object | None = None,
) -> list[AnswerSet]:
    """Run many queries through the sharded pipeline, by matcher name.

    Convenience wrapper: ``make_matcher(name, objective, **params)``
    followed by :meth:`~repro.matching.base.Matcher.batch_match`.  The
    run is fully described by plain data plus the objective, which is
    what the CLI and experiment configs need.
    """
    matcher = make_matcher(name, objective, **(params or {}))
    return matcher.batch_match(
        queries, repository, delta_max, workers=workers, shards=shards, cache=cache
    )


def evolution_session(
    name: str,
    objective: ObjectiveFunction,
    queries: Sequence[Schema],
    delta_max: float,
    *,
    params: Mapping[str, object] | None = None,
    workers: int | None = None,
    shards: int | None = None,
    cache: object | None = None,
):
    """An :class:`~repro.matching.evolution.EvolutionSession` by matcher name.

    The evolving-repository counterpart of :func:`batch_match`: the
    session is fully described by plain data plus the objective.  Call
    ``session.match(repository)`` for the cold baseline, then
    ``session.apply(delta)`` per evolution step.
    """
    from repro.matching.evolution import EvolutionSession

    matcher = make_matcher(name, objective, **(params or {}))
    return EvolutionSession(
        matcher, queries, delta_max, workers=workers, shards=shards, cache=cache
    )


def matching_service(
    name: str,
    objective: ObjectiveFunction,
    delta_max: float,
    *,
    params: Mapping[str, object] | None = None,
    **options: object,
):
    """A :class:`~repro.matching.service.MatchingService` by matcher name.

    The serving counterpart of :func:`batch_match`: the service is fully
    described by plain data plus the objective.  ``options`` are
    forwarded to the service constructor (``store``, ``max_batch``,
    ``max_delay``, ``workers``, ``shards``, ``cache``,
    ``checkpoint_every``); call ``await service.start(repository)`` (or
    just ``start()`` over a snapshot store) before submitting requests.
    """
    from repro.matching.service import MatchingService

    matcher = make_matcher(name, objective, **(params or {}))
    return MatchingService(matcher, delta_max, **options)

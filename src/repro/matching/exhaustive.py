"""The exhaustive matching system S1.

"A system S is called exhaustive if it returns all possible mappings for
a certain threshold" (section 2.1).  This matcher is exactly that: the
branch-and-bound engine with no candidate restriction enumerates every
injective assignment with Δ ≤ δ — pruning only via an admissible bound,
which never loses an in-threshold answer (property-tested against brute
force in the suite).  Searches read the shared similarity substrate
(precomputed score matrices, exact candidate trimming), which changes
wall-clock, never answers.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.matching.base import Matcher
from repro.matching.engine import SchemaSearch
from repro.schema.model import Schema

__all__ = ["ExhaustiveMatcher"]


class ExhaustiveMatcher(Matcher):
    """Complete enumeration up to the threshold (the original system)."""

    name = "exhaustive"

    def _match_schema(
        self, query: Schema, schema: Schema, delta_max: float
    ) -> Iterable[tuple[tuple[int, ...], float]]:
        search = SchemaSearch(
            query, schema, self.objective, substrate=self._substrate()
        )
        yield from search.exhaustive(delta_max)

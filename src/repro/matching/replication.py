"""Replicated serving: N matching services behind one replicated delta log.

A :class:`ReplicaGroup` runs N :class:`~repro.matching.service
.MatchingService` replicas — warm-started from one shared
:class:`~repro.schema.store.SnapshotStore` or cold from one repository —
behind a round-robin front-end, and keeps them consistent through a
**sequence-numbered replicated delta log**:

* :meth:`apply_delta` applies the delta to the group's *authoritative*
  repository first, appends a :class:`DeltaRecord` (1-based, contiguous
  sequence numbers) with the resulting repository content digest, and
  hands the record to every replica's **bounded delivery queue** — a
  per-replica drain worker applies queued records concurrently across
  replicas, and ``apply_delta`` waits (bounded by ``settle_timeout``)
  for the queues to drain, so on the fast path every live replica has
  applied the record when it returns, exactly as before;
* **backpressure instead of blocking**: a replica whose queue already
  holds ``max_lag`` undelivered records — or whose delivery raised, or
  whose drain outlived ``settle_timeout`` — is marked **lagging**: the
  log keeps advancing (the authoritative repository never waits on a
  slow replica), further deliveries to that replica are skipped, and
  the front-end skips it exactly as it skips a stale replica;
  :meth:`catch_up` replays the missed records and returns it to
  serving;
* :meth:`receive` is each replica's delivery endpoint, with full
  gap/duplicate discipline: a record already applied (``sequence <=
  applied``) is **ignored** (delivery may duplicate), a record from the
  future (``sequence > applied + 1``) is **buffered** (delivery may
  reorder or delay) and the replica is *stale* until the gap closes —
  buffered records drain automatically the moment the missing sequence
  arrives;
* a **stale or lagging replica refuses to serve** (:meth:`match_on`
  raises :class:`~repro.errors.ReplicationError`; the round-robin
  front-end simply skips it) because serving from an old repository
  version would break the group's acceptance property — *byte-identity
  of served answers across replicas and with the single-node offline
  path*;
* after every replica-side apply, the replica's repository digest is
  compared to the log's authoritative digest for that sequence — any
  divergence (a corrupted delivery, non-deterministic apply) raises
  :class:`~repro.errors.ReplicationError` instead of letting a forked
  replica keep answering.

Delivery is injectable (``delivery=``) precisely so the fault-injection
harness (``tests/helpers/faults.py``) can drop, duplicate, reorder and
delay records; the default delivers immediately and in order.

Each replica needs its **own** matcher built over its **own** objective
(config-equal — fingerprints are checked — but distinct objects):
services run their pipelines on executor threads, and sharing one
similarity substrate across replicas would race.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Awaitable, Callable, Sequence

from repro.core.answers import AnswerSet
from repro.errors import MatchingError, ReplicationError
from repro.matching.base import Matcher
from repro.matching.pipeline import CandidateCache, matcher_fingerprint
from repro.matching.service import MatchingService
from repro.schema.delta import DeltaReport, RepositoryDelta
from repro.schema.model import Schema
from repro.schema.repository import SchemaRepository
from repro.schema.store import SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.executor import ShardExecutor

__all__ = ["DeltaRecord", "GroupStats", "ReplicaGroup", "ReplicaGroupStats"]

#: delivery hook: ``(group, replica_index, record)`` → awaitable.  The
#: default awaits ``group.receive(replica_index, record)`` immediately.
DeliveryHook = Callable[["ReplicaGroup", int, "DeltaRecord"], Awaitable[None]]


@dataclass(frozen=True)
class DeltaRecord:
    """One replicated log entry: a delta under its 1-based sequence number."""

    sequence: int
    delta: RepositoryDelta

    def __post_init__(self) -> None:
        if self.sequence < 1:
            raise ReplicationError(
                f"delta log sequences are 1-based, got {self.sequence!r}"
            )


@dataclass
class ReplicaGroupStats:
    """Counters of one group's lifetime."""

    served: int = 0
    deltas_logged: int = 0
    #: per-replica applied record counts (indexed by replica)
    applied: list[int] = field(default_factory=list)
    duplicates_ignored: int = 0
    gaps_buffered: int = 0
    catch_ups: int = 0
    digest_checks: int = 0
    #: replicas added at runtime (:meth:`ReplicaGroup.join`)
    joins: int = 0
    #: replicas removed at runtime (:meth:`ReplicaGroup.leave`)
    leaves: int = 0
    #: deliveries skipped because the target replica was lagging
    deliveries_skipped: int = 0
    #: replicas marked lagging (queue overflow, delivery failure, or
    #: a delivery outliving ``settle_timeout``)
    replicas_lagged: int = 0
    #: delivery-hook invocations that raised
    delivery_failures: int = 0
    #: ``apply_delta`` settles that hit ``settle_timeout`` with
    #: deliveries still in flight
    settle_timeouts: int = 0


#: the name the graceful-degradation surface exposes these under
GroupStats = ReplicaGroupStats


@dataclass
class _ReplicaState:
    """Everything the group tracks per replica, in one object.

    Drain workers hold the *object*, never an index: replica indices
    shift on :meth:`ReplicaGroup.leave`, so anything long-lived resolves
    its current index (via ``list.index``) only at the moment it needs
    one — or discovers it has been removed and stands down.
    """

    service: MatchingService
    #: highest contiguously applied log sequence
    applied: int = 0
    #: out-of-order future records, keyed by sequence
    buffer: dict[int, DeltaRecord] = field(default_factory=dict)
    #: the bounded delivery queue apply_delta feeds
    queue: asyncio.Queue = field(default_factory=asyncio.Queue)
    #: records enqueued but not yet delivered (queue depth + in flight)
    pending: int = 0
    #: backpressure flag: skipped by delivery and by the front-end
    lagging: bool = False
    #: the first unreported delivery failure (raised by the next settle)
    error: Exception | None = None
    #: serializes applies onto this replica (drain vs. catch_up races)
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: the drain worker (created at start/join, cancelled at stop/leave)
    task: asyncio.Task | None = None


class ReplicaGroup:
    """N warm-started service replicas + replicated delta log + front-end.

    ``matchers`` are the per-replica matchers — one each, config-equal
    (fingerprint-checked) but distinct objects over distinct objectives.
    ``store`` warm-starts every replica from the same snapshot when it
    holds one; ``delivery`` overrides how log records reach replicas
    (fault injection).  ``max_lag`` bounds each replica's delivery
    queue — a replica that falls further behind is marked *lagging*
    (skipped, recoverable via :meth:`catch_up`) instead of blocking the
    log — and ``settle_timeout`` bounds how long :meth:`apply_delta`
    waits for deliveries to drain before letting slow replicas lag.
    The remaining options are forwarded to each
    :class:`~repro.matching.service.MatchingService`.

    Usage::

        group = ReplicaGroup([make() for _ in range(2)], delta_max=0.3)
        await group.start(repository)
        answers = await group.match(query)       # round-robin
        await group.apply_delta(delta)           # logged + replicated
        await group.stop()
    """

    def __init__(
        self,
        matchers: Sequence[Matcher],
        delta_max: float,
        *,
        store: SnapshotStore | str | Path | None = None,
        max_batch: int = 32,
        max_delay: float = 0.0,
        workers: int | None = None,
        shards: int | None = None,
        cache: CandidateCache | bool | None = None,
        executor: "ShardExecutor | None" = None,
        delivery: DeliveryHook | None = None,
        max_lag: int = 8,
        settle_timeout: float = 30.0,
    ):
        matchers = list(matchers)
        if not matchers:
            raise ReplicationError("a replica group needs >= 1 matcher")
        if max_lag < 1:
            raise ReplicationError(f"max_lag must be >= 1, got {max_lag!r}")
        if settle_timeout <= 0:
            raise ReplicationError(
                f"settle_timeout must be positive, got {settle_timeout!r}"
            )
        fingerprints = {matcher_fingerprint(m) for m in matchers}
        if len(fingerprints) != 1:
            raise ReplicationError(
                "replica matchers are configured differently (fingerprints "
                "differ); replicas must be config-identical or their answers "
                "cannot be byte-identical"
            )
        if len({id(m.objective) for m in matchers}) != len(matchers):
            raise ReplicationError(
                "replica matchers share an objective object; each replica "
                "needs its own (similarity substrates are not shared safely "
                "across concurrently serving replicas)"
            )
        self.store = (
            store
            if store is None or isinstance(store, SnapshotStore)
            else SnapshotStore(store)
        )
        # kept for replicas built later: join() constructs its service
        # with exactly the founding replicas' pipeline options
        self._service_options = {
            "max_batch": max_batch,
            "max_delay": max_delay,
            "workers": workers,
            "shards": shards,
            "cache": cache,
            "executor": executor,
        }
        self._states = [
            _ReplicaState(
                MatchingService(
                    matcher,
                    delta_max,
                    store=self.store,
                    **self._service_options,
                )
            )
            for matcher in matchers
        ]
        self.delta_max = delta_max
        self.max_lag = max_lag
        self.settle_timeout = settle_timeout
        self.log: list[DeltaRecord] = []
        self.stats = ReplicaGroupStats(applied=[0] * len(matchers))
        self._digests: list[str] = []
        self._repository: SchemaRepository | None = None
        self._base_repository: SchemaRepository | None = None
        self._next_replica = 0
        self._delivery = delivery if delivery is not None else _deliver_direct
        #: pulsed by drain workers after every delivery so settle()
        #: wakes the moment a queue may have emptied
        self._drained = asyncio.Event()

    def __len__(self) -> int:
        return len(self._states)

    @property
    def services(self) -> list[MatchingService]:
        """The live replica services, in index order."""
        return [state.service for state in self._states]

    # -- lifecycle -----------------------------------------------------------

    async def start(self, repository: SchemaRepository | None = None) -> None:
        """Start every replica (warm from the shared store when it holds one).

        All replicas must come up on the *same* repository version —
        digest-checked here, so a half-written store or a mismatched
        cold repository cannot produce a group that is forked from the
        first request on.
        """
        warm = self.store is not None and self.store.exists()
        for state in self._states:
            await state.service.start(None if warm else repository)
        digests = {
            state.service.repository.content_digest()
            for state in self._states
        }
        if len(digests) != 1:
            await self.stop()
            raise ReplicationError(
                f"replicas started on {len(digests)} distinct repository "
                "versions; a group must start converged"
            )
        self._repository = self._states[0].service.repository
        # The log is empty at start, so the started version is the base
        # every later join() cold-starts from before replaying the log.
        self._base_repository = self._repository
        loop = asyncio.get_running_loop()
        for state in self._states:
            if state.task is None:
                state.task = loop.create_task(self._drain(state))

    async def stop(self) -> None:
        """Stop every replica and drain worker (idempotent per service)."""
        for state in self._states:
            if state.task is not None:
                state.task.cancel()
        for state in self._states:
            if state.task is not None:
                try:
                    await state.task
                except asyncio.CancelledError:
                    pass
                state.task = None
        for state in self._states:
            if state.service.started:
                await state.service.stop()

    async def checkpoint(self) -> SnapshotStore:
        """Write one snapshot from replica 0 (replicas are identical)."""
        if self.store is None:
            raise MatchingError("replica group has no snapshot store")
        return await self._states[0].service.checkpoint()

    # -- runtime membership ---------------------------------------------------

    async def join(self, matcher: Matcher) -> int:
        """Add a replica at runtime; returns its index.

        The joiner cold-starts on the group's **base** repository (the
        version every founding replica started on) and then replays the
        whole replicated log through :meth:`catch_up` — every record
        digest-checked against the authoritative digests — so it ends
        byte-identical to the founding replicas without the group ever
        pausing: no drain, no handoff, the round-robin keeps serving
        from the existing replicas while the joiner catches up.  The
        same config discipline as construction applies: the matcher
        must be fingerprint-equal to the group's and must not share an
        objective object with a live replica.
        """
        if self._base_repository is None:
            raise MatchingError("replica group not started; call start()")
        if matcher_fingerprint(matcher) != matcher_fingerprint(
            self._states[0].service.matcher
        ):
            raise ReplicationError(
                "joining matcher is configured differently from the group's "
                "(fingerprints differ); replicas must be config-identical or "
                "their answers cannot be byte-identical"
            )
        if any(
            matcher.objective is state.service.matcher.objective
            for state in self._states
        ):
            raise ReplicationError(
                "joining matcher shares an objective object with a live "
                "replica; each replica needs its own (similarity substrates "
                "are not shared safely across concurrently serving replicas)"
            )
        service = MatchingService(
            matcher,
            self.delta_max,
            store=None,  # the log replay, not a snapshot, is its truth
            **self._service_options,
        )
        await service.start(self._base_repository)
        state = _ReplicaState(service)
        self._states.append(state)
        self.stats.applied.append(0)
        self.stats.joins += 1
        state.task = asyncio.get_running_loop().create_task(
            self._drain(state)
        )
        index = len(self._states) - 1
        await self.catch_up(index)
        return index

    async def leave(self, index: int) -> MatchingService:
        """Remove replica ``index`` at runtime, without draining.

        The slot disappears from routing, delivery and bookkeeping
        immediately, then the service is stopped **without drain**:
        requests still queued on it fail with
        :class:`~repro.errors.MatchingError` rather than being
        answered — a replica leaving mid-request refuses loudly, it
        never serves on the way out.  Replica indices above ``index``
        shift down by one (delivery hooks that script faults by index
        address the current membership).  The returned (stopped)
        service is handed back for inspection.
        """
        if not 0 <= index < len(self._states):
            raise ReplicationError(
                f"no replica at index {index} "
                f"(group has {len(self._states)})"
            )
        if len(self._states) == 1:
            raise ReplicationError(
                "cannot remove the last replica; stop() the group instead"
            )
        state = self._states.pop(index)
        self.stats.applied.pop(index)
        self._next_replica %= len(self._states)
        self.stats.leaves += 1
        if state.task is not None:
            state.task.cancel()
            try:
                await state.task
            except asyncio.CancelledError:
                pass
            state.task = None
        if state.service.started:
            await state.service.stop(drain=False)
        return state.service

    # -- authoritative state -------------------------------------------------

    @property
    def repository(self) -> SchemaRepository:
        """The authoritative repository (head of the delta log)."""
        if self._repository is None:
            raise MatchingError("replica group not started; call start()")
        return self._repository

    def applied(self, index: int) -> int:
        """How many log records replica ``index`` has applied."""
        return self._states[index].applied

    def lagging(self, index: int) -> bool:
        """Is replica ``index`` marked lagging (backpressured out)?"""
        return self._states[index].lagging

    def pending(self, index: int) -> int:
        """Deliveries enqueued for replica ``index`` but not yet applied."""
        return self._states[index].pending

    def current(self, index: int) -> bool:
        """Is replica ``index`` caught up with the whole log (and serving)?"""
        state = self._states[index]
        return (
            not state.lagging
            and state.applied == len(self.log)
            and not state.buffer
        )

    def current_replicas(self) -> list[int]:
        """Indices of replicas that may serve right now."""
        return [i for i in range(len(self._states)) if self.current(i)]

    def status(self) -> str:
        """One operator line: per-replica lag/serving state + the executor's.

        The graceful-degradation surface: what an operator (or
        ``repro-bounds serve --status``) reads to see which replicas
        serve, which lag, and how the shard transport's breakers stand.
        """
        parts = []
        for index, state in enumerate(self._states):
            if state.lagging:
                phase = "lagging"
            elif self.current(index):
                phase = "current"
            else:
                phase = "stale"
            parts.append(
                f"r{index}={phase} applied {state.applied}/{len(self.log)}"
                + (f" pending {state.pending}" if state.pending else "")
            )
        line = (
            f"group: {len(self._states)} replicas "
            f"({len(self.current_replicas())} serving) [{', '.join(parts)}]"
        )
        executor = self._service_options.get("executor")
        if executor is not None:
            line += " | " + executor.status()
        return line

    # -- the replicated delta log --------------------------------------------

    async def apply_delta(self, delta: RepositoryDelta) -> DeltaReport:
        """Log a delta authoritatively, then deliver it to every replica.

        The authoritative repository advances first — the log entry
        records the digest every replica must reach at this sequence —
        then the record enters each replica's bounded delivery queue
        and the call waits (at most ``settle_timeout``) for the queues
        to drain.  On the fast path every live replica has applied (and
        digest-checked) the record when this returns, exactly as the
        synchronous delivery did; a replica that is already lagging, or
        whose queue holds ``max_lag`` undelivered records, is skipped
        and left for :meth:`catch_up` — the log **never blocks on a
        slow replica**.  The first delivery failure observed is
        re-raised here (the log still holds the record; the failed
        replica is lagging and recoverable).
        """
        new_repository, report = self.repository.apply(delta)
        self._repository = new_repository
        record = DeltaRecord(len(self.log) + 1, delta)
        self.log.append(record)
        self._digests.append(new_repository.content_digest())
        self.stats.deltas_logged += 1
        for state in self._states:
            if state.lagging:
                self.stats.deliveries_skipped += 1
                continue
            if state.pending >= self.max_lag:
                # backpressure: this replica is not keeping up — let it
                # lag (catch_up() replays from the log) rather than
                # grow its queue or stall the log
                state.lagging = True
                self.stats.replicas_lagged += 1
                self.stats.deliveries_skipped += 1
                continue
            state.pending += 1
            state.queue.put_nowait(record)
        await self._settle()
        return report

    async def _drain(self, state: _ReplicaState) -> None:
        """One replica's delivery worker: queue → delivery hook, forever.

        A delivery that raises marks the replica lagging and parks the
        error for the next :meth:`apply_delta` settle to re-raise; a
        lagging replica's queued records are discarded (the log holds
        them — :meth:`catch_up` is the road back, and re-delivering out
        of a poisoned queue would just repeat the failure).
        """
        while True:
            record = await state.queue.get()
            try:
                if state.lagging:
                    continue
                try:
                    index = self._states.index(state)
                except ValueError:
                    return  # replica left the group; stand down
                try:
                    await self._delivery(self, index, record)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - parked, re-raised
                    state.lagging = True
                    state.error = exc
                    self.stats.delivery_failures += 1
                    self.stats.replicas_lagged += 1
            finally:
                state.pending -= 1
                self._drained.set()

    async def _settle(self) -> None:
        """Wait (bounded) for non-lagging replicas' deliveries to drain.

        Raises the first parked delivery error, if any; on timeout,
        replicas with deliveries still in flight are marked lagging and
        the log moves on without them.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.settle_timeout
        while True:
            self._drained.clear()
            error: Exception | None = None
            busy = False
            for state in self._states:
                if state.error is not None and error is None:
                    error, state.error = state.error, None
                if not state.lagging and state.pending:
                    busy = True
            if error is not None:
                raise error
            if not busy:
                return
            remaining = deadline - loop.time()
            if remaining <= 0:
                for state in self._states:
                    if not state.lagging and state.pending:
                        state.lagging = True
                        self.stats.replicas_lagged += 1
                self.stats.settle_timeouts += 1
                return
            try:
                await asyncio.wait_for(self._drained.wait(), remaining)
            except asyncio.TimeoutError:
                pass

    async def receive(self, index: int, record: DeltaRecord) -> None:
        """Deliver one log record to replica ``index`` (gap/dup discipline).

        Duplicates (sequence already applied) are counted and ignored;
        future records (a gap) are counted and buffered — the replica is
        stale, and :meth:`match_on` refuses it, until the missing
        records arrive and the buffer drains in sequence order.
        """
        if not 0 <= index < len(self._states):
            raise ReplicationError(
                f"delivery addressed replica {index}, but the group has "
                f"{len(self._states)} (did the membership change under a "
                "held delivery?)"
            )
        state = self._states[index]
        if record.sequence <= state.applied:
            self.stats.duplicates_ignored += 1
            return
        if record.sequence > state.applied + 1:
            state.buffer[record.sequence] = record
            self.stats.gaps_buffered += 1
            return
        await self._apply_record(state, record)
        while state.applied + 1 in state.buffer:
            await self._apply_record(
                state, state.buffer.pop(state.applied + 1)
            )

    async def _apply_record(
        self, state: _ReplicaState, record: DeltaRecord
    ) -> None:
        async with state.lock:
            if record.sequence <= state.applied:
                # raced with a concurrent path (a queued delivery vs. a
                # catch_up replay of the same record): the second apply
                # is the duplicate-delivery case and is ignored
                self.stats.duplicates_ignored += 1
                return
            await state.service.apply_delta(record.delta)
            state.applied = record.sequence
            try:
                self.stats.applied[
                    self._states.index(state)
                ] = record.sequence
            except ValueError:
                pass  # replica left mid-apply; its stats slot is gone
            expected = self._digests[record.sequence - 1]
            actual = state.service.repository.content_digest()
            self.stats.digest_checks += 1
            if actual != expected:
                try:
                    index = self._states.index(state)
                except ValueError:
                    index = -1
                raise ReplicationError(
                    f"replica {index} diverged at sequence "
                    f"{record.sequence}: repository digest {actual} != "
                    f"authoritative {expected}"
                )

    async def catch_up(self, index: int) -> int:
        """Replay missed log records into replica ``index``; returns count.

        The recovery path after dropped deliveries *and* after
        backpressure: everything past the replica's applied position is
        re-delivered from the authoritative log in order (which also
        drains its buffer), and a successful replay clears the lagging
        flag — the replica returns to serving.
        """
        state = self._states[index]
        replayed = 0
        while state.applied < len(self.log):
            record = self.log[state.applied]
            state.buffer.pop(record.sequence, None)
            await self._apply_record(state, record)
            replayed += 1
        state.buffer.clear()
        state.lagging = False
        state.error = None
        if replayed:
            self.stats.catch_ups += 1
        return replayed

    # -- serving front-end ---------------------------------------------------

    async def match(self, query: Schema) -> AnswerSet:
        """Serve one query from the next current replica (round-robin).

        Stale and lagging replicas are skipped — they would serve
        answers computed against an old repository version.  When
        *every* replica is behind the log, the group refuses loudly
        rather than serve a stale answer.
        """
        count = len(self._states)
        for offset in range(count):
            index = (self._next_replica + offset) % count
            if self.current(index):
                self._next_replica = (index + 1) % count
                self.stats.served += 1
                return await self._states[index].service.match(query)
        raise ReplicationError(
            f"every replica is behind the delta log (log at "
            f"{len(self.log)}, applied: "
            f"{[state.applied for state in self._states]}); deliver the "
            "missing records or call catch_up()"
        )

    async def match_on(self, index: int, query: Schema) -> AnswerSet:
        """Serve from one specific replica; refuses a stale/lagging one."""
        if not self.current(index):
            state = self._states[index]
            raise ReplicationError(
                f"replica {index} is behind the delta log (applied "
                f"{state.applied} of {len(self.log)}, "
                f"{len(state.buffer)} buffered"
                + (", lagging" if state.lagging else "")
                + "); serving would break byte-identity — call catch_up() "
                "first"
            )
        self.stats.served += 1
        return await self._states[index].service.match(query)

    async def match_all(self, query: Schema) -> list[AnswerSet]:
        """One answer set per replica — the byte-identity verification hook.

        Every replica must be current; the caller compares the answer
        sets (canonically encoded) for identity.
        """
        return [
            await self.match_on(index, query)
            for index in range(len(self._states))
        ]


async def _deliver_direct(
    group: ReplicaGroup, index: int, record: DeltaRecord
) -> None:
    await group.receive(index, record)

"""Replicated serving: N matching services behind one replicated delta log.

A :class:`ReplicaGroup` runs N :class:`~repro.matching.service
.MatchingService` replicas — warm-started from one shared
:class:`~repro.schema.store.SnapshotStore` or cold from one repository —
behind a round-robin front-end, and keeps them consistent through a
**sequence-numbered replicated delta log**:

* :meth:`apply_delta` applies the delta to the group's *authoritative*
  repository first, appends a :class:`DeltaRecord` (1-based, contiguous
  sequence numbers) with the resulting repository content digest, and
  delivers the record to every replica;
* :meth:`receive` is each replica's delivery endpoint, with full
  gap/duplicate discipline: a record already applied (``sequence <=
  applied``) is **ignored** (delivery may duplicate), a record from the
  future (``sequence > applied + 1``) is **buffered** (delivery may
  reorder or delay) and the replica is *stale* until the gap closes —
  buffered records drain automatically the moment the missing sequence
  arrives;
* a **stale replica refuses to serve** (:meth:`match_on` raises
  :class:`~repro.errors.ReplicationError`; the round-robin front-end
  simply skips it) because serving from an old repository version would
  break the group's acceptance property — *byte-identity of served
  answers across replicas and with the single-node offline path*;
* after every replica-side apply, the replica's repository digest is
  compared to the log's authoritative digest for that sequence — any
  divergence (a corrupted delivery, non-deterministic apply) raises
  :class:`~repro.errors.ReplicationError` instead of letting a forked
  replica keep answering.

Delivery is injectable (``delivery=``) precisely so the fault-injection
harness (``tests/helpers/faults.py``) can drop, duplicate, reorder and
delay records; the default delivers immediately and in order.

Each replica needs its **own** matcher built over its **own** objective
(config-equal — fingerprints are checked — but distinct objects):
services run their pipelines on executor threads, and sharing one
similarity substrate across replicas would race.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Awaitable, Callable, Sequence

from repro.core.answers import AnswerSet
from repro.errors import MatchingError, ReplicationError
from repro.matching.base import Matcher
from repro.matching.pipeline import CandidateCache, matcher_fingerprint
from repro.matching.service import MatchingService
from repro.schema.delta import DeltaReport, RepositoryDelta
from repro.schema.model import Schema
from repro.schema.repository import SchemaRepository
from repro.schema.store import SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.executor import ShardExecutor

__all__ = ["DeltaRecord", "ReplicaGroup", "ReplicaGroupStats"]

#: delivery hook: ``(group, replica_index, record)`` → awaitable.  The
#: default awaits ``group.receive(replica_index, record)`` immediately.
DeliveryHook = Callable[["ReplicaGroup", int, "DeltaRecord"], Awaitable[None]]


@dataclass(frozen=True)
class DeltaRecord:
    """One replicated log entry: a delta under its 1-based sequence number."""

    sequence: int
    delta: RepositoryDelta

    def __post_init__(self) -> None:
        if self.sequence < 1:
            raise ReplicationError(
                f"delta log sequences are 1-based, got {self.sequence!r}"
            )


@dataclass
class ReplicaGroupStats:
    """Counters of one group's lifetime."""

    served: int = 0
    deltas_logged: int = 0
    #: per-replica applied record counts (indexed by replica)
    applied: list[int] = field(default_factory=list)
    duplicates_ignored: int = 0
    gaps_buffered: int = 0
    catch_ups: int = 0
    digest_checks: int = 0
    #: replicas added at runtime (:meth:`ReplicaGroup.join`)
    joins: int = 0
    #: replicas removed at runtime (:meth:`ReplicaGroup.leave`)
    leaves: int = 0


class ReplicaGroup:
    """N warm-started service replicas + replicated delta log + front-end.

    ``matchers`` are the per-replica matchers — one each, config-equal
    (fingerprint-checked) but distinct objects over distinct objectives.
    ``store`` warm-starts every replica from the same snapshot when it
    holds one; ``delivery`` overrides how log records reach replicas
    (fault injection).  The remaining options are forwarded to each
    :class:`~repro.matching.service.MatchingService`.

    Usage::

        group = ReplicaGroup([make() for _ in range(2)], delta_max=0.3)
        await group.start(repository)
        answers = await group.match(query)       # round-robin
        await group.apply_delta(delta)           # logged + replicated
        await group.stop()
    """

    def __init__(
        self,
        matchers: Sequence[Matcher],
        delta_max: float,
        *,
        store: SnapshotStore | str | Path | None = None,
        max_batch: int = 32,
        max_delay: float = 0.0,
        workers: int | None = None,
        shards: int | None = None,
        cache: CandidateCache | bool | None = None,
        executor: "ShardExecutor | None" = None,
        delivery: DeliveryHook | None = None,
    ):
        matchers = list(matchers)
        if not matchers:
            raise ReplicationError("a replica group needs >= 1 matcher")
        fingerprints = {matcher_fingerprint(m) for m in matchers}
        if len(fingerprints) != 1:
            raise ReplicationError(
                "replica matchers are configured differently (fingerprints "
                "differ); replicas must be config-identical or their answers "
                "cannot be byte-identical"
            )
        if len({id(m.objective) for m in matchers}) != len(matchers):
            raise ReplicationError(
                "replica matchers share an objective object; each replica "
                "needs its own (similarity substrates are not shared safely "
                "across concurrently serving replicas)"
            )
        self.store = (
            store
            if store is None or isinstance(store, SnapshotStore)
            else SnapshotStore(store)
        )
        # kept for replicas built later: join() constructs its service
        # with exactly the founding replicas' pipeline options
        self._service_options = {
            "max_batch": max_batch,
            "max_delay": max_delay,
            "workers": workers,
            "shards": shards,
            "cache": cache,
            "executor": executor,
        }
        self.services = [
            MatchingService(
                matcher,
                delta_max,
                store=self.store,
                **self._service_options,
            )
            for matcher in matchers
        ]
        self.delta_max = delta_max
        self.log: list[DeltaRecord] = []
        self.stats = ReplicaGroupStats(applied=[0] * len(matchers))
        self._digests: list[str] = []
        self._applied = [0] * len(matchers)
        self._buffers: list[dict[int, DeltaRecord]] = [
            {} for _ in matchers
        ]
        self._repository: SchemaRepository | None = None
        self._base_repository: SchemaRepository | None = None
        self._next_replica = 0
        self._delivery = delivery if delivery is not None else _deliver_direct

    def __len__(self) -> int:
        return len(self.services)

    # -- lifecycle -----------------------------------------------------------

    async def start(self, repository: SchemaRepository | None = None) -> None:
        """Start every replica (warm from the shared store when it holds one).

        All replicas must come up on the *same* repository version —
        digest-checked here, so a half-written store or a mismatched
        cold repository cannot produce a group that is forked from the
        first request on.
        """
        warm = self.store is not None and self.store.exists()
        for service in self.services:
            await service.start(None if warm else repository)
        digests = {
            service.repository.content_digest() for service in self.services
        }
        if len(digests) != 1:
            await self.stop()
            raise ReplicationError(
                f"replicas started on {len(digests)} distinct repository "
                "versions; a group must start converged"
            )
        self._repository = self.services[0].repository
        # The log is empty at start, so the started version is the base
        # every later join() cold-starts from before replaying the log.
        self._base_repository = self._repository

    async def stop(self) -> None:
        """Stop every replica (idempotent per service)."""
        for service in self.services:
            if service.started:
                await service.stop()

    async def checkpoint(self) -> SnapshotStore:
        """Write one snapshot from replica 0 (replicas are identical)."""
        if self.store is None:
            raise MatchingError("replica group has no snapshot store")
        return await self.services[0].checkpoint()

    # -- runtime membership ---------------------------------------------------

    async def join(self, matcher: Matcher) -> int:
        """Add a replica at runtime; returns its index.

        The joiner cold-starts on the group's **base** repository (the
        version every founding replica started on) and then replays the
        whole replicated log through :meth:`catch_up` — every record
        digest-checked against the authoritative digests — so it ends
        byte-identical to the founding replicas without the group ever
        pausing: no drain, no handoff, the round-robin keeps serving
        from the existing replicas while the joiner catches up.  The
        same config discipline as construction applies: the matcher
        must be fingerprint-equal to the group's and must not share an
        objective object with a live replica.
        """
        if self._base_repository is None:
            raise MatchingError("replica group not started; call start()")
        if matcher_fingerprint(matcher) != matcher_fingerprint(
            self.services[0].matcher
        ):
            raise ReplicationError(
                "joining matcher is configured differently from the group's "
                "(fingerprints differ); replicas must be config-identical or "
                "their answers cannot be byte-identical"
            )
        if any(
            matcher.objective is service.matcher.objective
            for service in self.services
        ):
            raise ReplicationError(
                "joining matcher shares an objective object with a live "
                "replica; each replica needs its own (similarity substrates "
                "are not shared safely across concurrently serving replicas)"
            )
        service = MatchingService(
            matcher,
            self.delta_max,
            store=None,  # the log replay, not a snapshot, is its truth
            **self._service_options,
        )
        await service.start(self._base_repository)
        self.services.append(service)
        self._applied.append(0)
        self._buffers.append({})
        self.stats.applied.append(0)
        self.stats.joins += 1
        index = len(self.services) - 1
        await self.catch_up(index)
        return index

    async def leave(self, index: int) -> MatchingService:
        """Remove replica ``index`` at runtime, without draining.

        The slot disappears from routing, delivery and bookkeeping
        immediately, then the service is stopped **without drain**:
        requests still queued on it fail with
        :class:`~repro.errors.MatchingError` rather than being
        answered — a replica leaving mid-request refuses loudly, it
        never serves on the way out.  Replica indices above ``index``
        shift down by one (delivery hooks that script faults by index
        address the current membership).  The returned (stopped)
        service is handed back for inspection.
        """
        if not 0 <= index < len(self.services):
            raise ReplicationError(
                f"no replica at index {index} "
                f"(group has {len(self.services)})"
            )
        if len(self.services) == 1:
            raise ReplicationError(
                "cannot remove the last replica; stop() the group instead"
            )
        service = self.services.pop(index)
        self._applied.pop(index)
        self._buffers.pop(index)
        self.stats.applied.pop(index)
        self._next_replica %= len(self.services)
        self.stats.leaves += 1
        if service.started:
            await service.stop(drain=False)
        return service

    # -- authoritative state -------------------------------------------------

    @property
    def repository(self) -> SchemaRepository:
        """The authoritative repository (head of the delta log)."""
        if self._repository is None:
            raise MatchingError("replica group not started; call start()")
        return self._repository

    def applied(self, index: int) -> int:
        """How many log records replica ``index`` has applied."""
        return self._applied[index]

    def current(self, index: int) -> bool:
        """Is replica ``index`` caught up with the whole log?"""
        return (
            self._applied[index] == len(self.log)
            and not self._buffers[index]
        )

    def current_replicas(self) -> list[int]:
        """Indices of replicas that may serve right now."""
        return [i for i in range(len(self.services)) if self.current(i)]

    # -- the replicated delta log --------------------------------------------

    async def apply_delta(self, delta: RepositoryDelta) -> DeltaReport:
        """Log a delta authoritatively, then deliver it to every replica.

        The authoritative repository advances first — the log entry
        records the digest every replica must reach at this sequence —
        then the record goes out through the delivery hook.  With the
        default hook, every live replica has applied (and digest-
        checked) the record when this returns.
        """
        new_repository, report = self.repository.apply(delta)
        self._repository = new_repository
        record = DeltaRecord(len(self.log) + 1, delta)
        self.log.append(record)
        self._digests.append(new_repository.content_digest())
        self.stats.deltas_logged += 1
        for index in range(len(self.services)):
            await self._delivery(self, index, record)
        return report

    async def receive(self, index: int, record: DeltaRecord) -> None:
        """Deliver one log record to replica ``index`` (gap/dup discipline).

        Duplicates (sequence already applied) are counted and ignored;
        future records (a gap) are counted and buffered — the replica is
        stale, and :meth:`match_on` refuses it, until the missing
        records arrive and the buffer drains in sequence order.
        """
        if not 0 <= index < len(self.services):
            raise ReplicationError(
                f"delivery addressed replica {index}, but the group has "
                f"{len(self.services)} (did the membership change under a "
                "held delivery?)"
            )
        if record.sequence <= self._applied[index]:
            self.stats.duplicates_ignored += 1
            return
        buffer = self._buffers[index]
        if record.sequence > self._applied[index] + 1:
            buffer[record.sequence] = record
            self.stats.gaps_buffered += 1
            return
        await self._apply_record(index, record)
        while self._applied[index] + 1 in buffer:
            await self._apply_record(
                index, buffer.pop(self._applied[index] + 1)
            )

    async def _apply_record(self, index: int, record: DeltaRecord) -> None:
        service = self.services[index]
        await service.apply_delta(record.delta)
        self._applied[index] = record.sequence
        self.stats.applied[index] = record.sequence
        expected = self._digests[record.sequence - 1]
        actual = service.repository.content_digest()
        self.stats.digest_checks += 1
        if actual != expected:
            raise ReplicationError(
                f"replica {index} diverged at sequence {record.sequence}: "
                f"repository digest {actual} != authoritative {expected}"
            )

    async def catch_up(self, index: int) -> int:
        """Replay missed log records into replica ``index``; returns count.

        The recovery path after dropped deliveries: everything past the
        replica's applied position is re-delivered from the
        authoritative log in order (which also drains its buffer).
        """
        replayed = 0
        while self._applied[index] < len(self.log):
            record = self.log[self._applied[index]]
            self._buffers[index].pop(record.sequence, None)
            await self._apply_record(index, record)
            replayed += 1
        self._buffers[index].clear()
        if replayed:
            self.stats.catch_ups += 1
        return replayed

    # -- serving front-end ---------------------------------------------------

    async def match(self, query: Schema) -> AnswerSet:
        """Serve one query from the next current replica (round-robin).

        Stale replicas are skipped — they would serve answers computed
        against an old repository version.  When *every* replica is
        behind the log, the group refuses loudly rather than serve a
        stale answer.
        """
        count = len(self.services)
        for offset in range(count):
            index = (self._next_replica + offset) % count
            if self.current(index):
                self._next_replica = (index + 1) % count
                self.stats.served += 1
                return await self.services[index].match(query)
        raise ReplicationError(
            f"every replica is behind the delta log (log at "
            f"{len(self.log)}, applied: {self._applied}); deliver the "
            "missing records or call catch_up()"
        )

    async def match_on(self, index: int, query: Schema) -> AnswerSet:
        """Serve from one specific replica; refuses a stale replica."""
        if not self.current(index):
            raise ReplicationError(
                f"replica {index} is behind the delta log (applied "
                f"{self._applied[index]} of {len(self.log)}, "
                f"{len(self._buffers[index])} buffered); serving would "
                "break byte-identity — call catch_up() first"
            )
        self.stats.served += 1
        return await self.services[index].match(query)

    async def match_all(self, query: Schema) -> list[AnswerSet]:
        """One answer set per replica — the byte-identity verification hook.

        Every replica must be current; the caller compares the answer
        sets (canonically encoded) for identity.
        """
        return [
            await self.match_on(index, query)
            for index in range(len(self.services))
        ]


async def _deliver_direct(
    group: ReplicaGroup, index: int, record: DeltaRecord
) -> None:
    await group.receive(index, record)

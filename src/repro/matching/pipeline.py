"""Sharded, parallel repository matching with per-pair memoisation.

The paper's cost driver is the per-schema mapping search: matching one
query against a repository is ``|repository|`` independent
:meth:`~repro.matching.base.Matcher.match_pair` calls.  This module
exploits that independence three ways:

* **Sharding** — :func:`shard_repository` partitions the repository
  deterministically (round robin) into sub-repositories.
* **Parallel fan-out** — :class:`MatchingPipeline` runs each
  (query, shard) unit in a pool of worker processes; ``workers=1`` is a
  deterministic serial fallback with no multiprocessing involved.
* **Memoisation** — a :class:`CandidateCache` (LRU) keyed by matcher
  configuration, repository content, query content and threshold stores
  every pair's ``(target_ids, score)`` list, so repeated workloads
  (top-n sweeps, threshold sweeps, the figure experiments) stop
  recomputing identical searches.

Results are **identical to serial matching** by construction: the
matcher ``prepare()``s on the *full* repository before sharding (so
repository-global state such as clustering is unaffected), per-pair
results are reassembled in repository order, and mapping scores are
rounded by the shared objective, so process boundaries cannot introduce
drift.  Per-shard results stream back as :class:`MatchIncrement` values
in completion order; the final :class:`PipelineResult` is
order-independent.

Module-level defaults (used when ``workers``/``shards``/``cache`` are
not given explicitly) are set with :func:`configure`; the CLI's
``--workers``/``--shards`` flags call it.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from time import perf_counter

from repro.core.answers import AnswerSet
from repro.errors import MatchingError
from repro.matching.base import Matcher
from repro.schema.model import Schema
from repro.schema.repository import SchemaRepository

__all__ = [
    "CacheStats",
    "CandidateCache",
    "MatchIncrement",
    "MatchingPipeline",
    "PipelineResult",
    "PipelineStats",
    "configure",
    "default_cache",
    "matcher_fingerprint",
    "pipeline_defaults",
    "schema_digest",
    "shard_repository",
]

#: one pair's search result: the ``(target_ids, score)`` list of
#: :meth:`~repro.matching.base.Matcher.match_pair`
PairResult = list[tuple[tuple[int, ...], float]]


# ---------------------------------------------------------------------------
# Fingerprints (cache identity)
# ---------------------------------------------------------------------------

def schema_digest(schema: Schema) -> str:
    """Content hash of everything matching can observe about a schema.

    Alias for :meth:`~repro.schema.model.Schema.content_digest` — names,
    datatypes and parent/child structure; ``concept`` provenance is
    deliberately excluded (only the oracle judge reads it).  The
    repository-level counterpart,
    :meth:`~repro.schema.repository.SchemaRepository.content_digest`,
    enters every cache key because per-pair results of repository-global
    matchers (clustering) depend on all schemas, not just the pair's.
    """
    return schema.content_digest()


def matcher_fingerprint(matcher: Matcher) -> str:
    """Configuration identity of a matcher, for cache keys.

    :meth:`Matcher.describe` covers the system name, its parameters and
    the objective fingerprint — which itself folds in the thesaurus
    content digest (:meth:`NameSimilarity.fingerprint`), so same-size,
    different-content thesauri cannot collide here.
    """
    description = sorted(
        (key, repr(value)) for key, value in matcher.describe().items()
    )
    return repr(description)


# ---------------------------------------------------------------------------
# Candidate cache
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`CandidateCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


_MISS = object()


class CandidateCache:
    """LRU memo of per-(matcher, repository, query, schema, δ) results.

    Values are the ``(target_ids, score)`` lists of
    :meth:`~repro.matching.base.Matcher.match_pair` — plain tuples, so
    entries are independent of live ``Schema`` objects and survive
    workload rebuilds (keys are content hashes, not object identities).

    ``maxsize`` counts entries (pairs), not bytes.  The cache is not
    thread-safe; the pipeline only touches it from the coordinating
    process.
    """

    def __init__(self, maxsize: int = 8192):
        if maxsize < 0:
            raise MatchingError(f"cache maxsize must be >= 0, got {maxsize!r}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, PairResult] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> PairResult | None:
        """The cached pair result, or ``None`` on a miss."""
        entry = self._entries.get(key, _MISS)
        if entry is _MISS:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry  # type: ignore[return-value]

    def put(self, key: Hashable, value: PairResult) -> None:
        """Store one pair result, evicting least-recently-used entries."""
        if self.maxsize == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters keep running)."""
        self._entries.clear()


# ---------------------------------------------------------------------------
# Module defaults
# ---------------------------------------------------------------------------

@dataclass
class PipelineDefaults:
    """Module-wide execution defaults (see :func:`configure`)."""

    workers: int = 1
    shards: int | None = None  # None = one shard per worker
    cache_size: int = 8192


_DEFAULTS = PipelineDefaults()
_DEFAULT_CACHE = CandidateCache(_DEFAULTS.cache_size)
_UNSET = object()


def configure(
    *,
    workers: int | None = None,
    shards: int | None | object = _UNSET,
    cache_size: int | None = None,
) -> PipelineDefaults:
    """Set process-wide pipeline defaults; omitted values are kept.

    ``workers`` is the default process count (1 = serial), ``shards``
    the default shard count (``None`` = one per worker) and
    ``cache_size`` resizes the shared default cache (entries; 0 disables
    it).  Validation is atomic: any invalid argument raises before
    *anything* is mutated, so a failed call never leaves the process
    half-configured.  Returns the resulting defaults.
    """
    global _DEFAULT_CACHE
    if workers is not None and workers < 1:
        raise MatchingError(f"workers must be >= 1, got {workers!r}")
    if shards is not _UNSET and shards is not None and shards < 1:  # type: ignore[operator]
        raise MatchingError(f"shards must be >= 1, got {shards!r}")
    new_cache = None
    if cache_size is not None:
        new_cache = CandidateCache(cache_size)  # validates maxsize
    if workers is not None:
        _DEFAULTS.workers = workers
    if shards is not _UNSET:
        _DEFAULTS.shards = shards  # type: ignore[assignment]
    if new_cache is not None:
        _DEFAULT_CACHE = new_cache
        _DEFAULTS.cache_size = cache_size
    return _DEFAULTS


def pipeline_defaults() -> PipelineDefaults:
    """The current module-wide defaults (live object)."""
    return _DEFAULTS


def default_cache() -> CandidateCache:
    """The shared candidate cache used when ``cache`` is not given."""
    return _DEFAULT_CACHE


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------

def shard_repository(
    repository: SchemaRepository, num_shards: int
) -> list[SchemaRepository]:
    """Partition a repository into at most ``num_shards`` sub-repositories.

    Round-robin by repository order, so shard sizes differ by at most
    one schema and the partition is deterministic.  Shard ids are
    ``<repository_id>#<i>/<n>``; every schema appears in exactly one
    shard.
    """
    if num_shards < 1:
        raise MatchingError(f"num_shards must be >= 1, got {num_shards!r}")
    schemas = repository.schemas()
    num_shards = min(num_shards, len(schemas))
    return [
        SchemaRepository(
            f"{repository.repository_id}#{index}/{num_shards}",
            schemas[index::num_shards],
        )
        for index in range(num_shards)
    ]


# ---------------------------------------------------------------------------
# Worker process protocol
# ---------------------------------------------------------------------------

# Initialised once per worker process; tasks then reference queries and
# schemas by index/id so each task submission pickles only a few scalars.
_WORKER_STATE: dict[str, object] | None = None


def _init_worker(
    matcher: Matcher, queries: list[Schema], schemas: dict[str, Schema]
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = {"matcher": matcher, "queries": queries, "schemas": schemas}


def _run_unit(
    query_index: int, schema_ids: tuple[str, ...], delta_max: float
) -> list[tuple[str, PairResult]]:
    """Execute one (query, shard) unit inside a worker process.

    The matcher arrives already ``prepare()``d on the full repository
    (its state was pickled with it), so only ``begin_query`` — once per
    query per worker, not per shard — and the per-pair searches run here.
    """
    assert _WORKER_STATE is not None, "worker initializer did not run"
    matcher: Matcher = _WORKER_STATE["matcher"]  # type: ignore[assignment]
    queries: list[Schema] = _WORKER_STATE["queries"]  # type: ignore[assignment]
    schemas: dict[str, Schema] = _WORKER_STATE["schemas"]  # type: ignore[assignment]
    query = queries[query_index]
    if _WORKER_STATE.get("active_query") != query_index:
        matcher.begin_query(query)
        _WORKER_STATE["active_query"] = query_index
    return [
        (schema_id, matcher.match_pair(query, schemas[schema_id], delta_max))
        for schema_id in schema_ids
    ]


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MatchIncrement:
    """Results of one (query, shard) unit, streamed as it completes.

    ``pair_results`` holds ``(schema_id, match_pair result)`` for every
    schema of the shard; ``from_cache`` is true when no search ran at
    all because every pair was memoised.
    """

    query_index: int
    shard_index: int
    pair_results: tuple[tuple[str, PairResult], ...]
    from_cache: bool


@dataclass
class PipelineStats:
    """Execution record of one pipeline run."""

    workers: int
    shards: int
    queries: int
    pairs_total: int = 0
    pairs_from_cache: int = 0
    increments: int = 0
    wall_seconds: float = 0.0


@dataclass
class PipelineResult:
    """Per-query answer sets plus the run's execution statistics."""

    answer_sets: list[AnswerSet]
    stats: PipelineStats


class MatchingPipeline:
    """Shard → fan out → stream → reassemble, for one matcher.

    Parameters mirror :meth:`Matcher.batch_match`: ``workers`` processes
    (``None`` = module default; 1 = serial in-process), ``shards``
    partitions (``None`` = one per worker), ``cache`` a
    :class:`CandidateCache` (``None`` = shared default, ``False`` =
    disabled).
    """

    def __init__(
        self,
        matcher: Matcher,
        *,
        workers: int | None = None,
        shards: int | None = None,
        cache: CandidateCache | bool | None = None,
    ):
        defaults = pipeline_defaults()
        self.matcher = matcher
        self.workers = workers if workers is not None else defaults.workers
        if self.workers < 1:
            raise MatchingError(f"workers must be >= 1, got {self.workers!r}")
        self.shards = shards if shards is not None else defaults.shards
        if self.shards is not None and self.shards < 1:
            raise MatchingError(f"shards must be >= 1, got {self.shards!r}")
        if cache is None:
            self.cache: CandidateCache | None = default_cache()
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache  # type: ignore[assignment]
        self.last_stats: PipelineStats | None = None

    # -- execution ----------------------------------------------------------

    def run(
        self,
        queries: Sequence[Schema],
        repository: SchemaRepository,
        delta_max: float,
    ) -> PipelineResult:
        """Match every query against the repository; order-deterministic.

        Consumes the increment stream and reassembles per-pair results
        in repository order, so the resulting answer sets are identical
        to serial :meth:`Matcher.match` output for any worker/shard
        count.
        """
        queries = list(queries)
        started = perf_counter()
        collected: list[dict[str, PairResult]] = [{} for _ in queries]
        for increment in self.stream(queries, repository, delta_max):
            collected[increment.query_index].update(increment.pair_results)
        answer_sets = [
            self.matcher.assemble(query, repository, by_schema, delta_max)
            for query, by_schema in zip(queries, collected)
        ]
        stats = self.last_stats
        assert stats is not None
        stats.wall_seconds = perf_counter() - started
        return PipelineResult(answer_sets=answer_sets, stats=stats)

    def stream(
        self,
        queries: Sequence[Schema],
        repository: SchemaRepository,
        delta_max: float,
    ) -> Iterator[MatchIncrement]:
        """Yield per-(query, shard) increments as they complete.

        Fully-cached units are yielded first (no search runs); the rest
        arrive in completion order — deterministic serially, arbitrary
        with workers.  Callers needing a stable order should consume the
        whole stream and sort (:meth:`run` does).
        """
        if delta_max < 0:
            raise MatchingError(f"delta_max must be >= 0, got {delta_max!r}")
        queries = list(queries)
        stats = PipelineStats(
            workers=self.workers,
            shards=0,
            queries=len(queries),
        )
        self.last_stats = stats
        if not queries:
            return
        matcher = self.matcher
        matcher.prepare(repository)
        shards = shard_repository(
            repository, self.shards if self.shards is not None else self.workers
        )
        stats.shards = len(shards)

        cache = self.cache
        if cache is not None:  # keys are only needed when memoising
            repo_digest = repository.content_digest()
            matcher_key = matcher_fingerprint(matcher)
            query_digests = [schema_digest(query) for query in queries]

        def pair_key(query_index: int, schema_id: str) -> tuple:
            return (
                matcher_key,
                repo_digest,
                query_digests[query_index],
                schema_id,
                delta_max,
            )

        # Split every (query, shard) unit into cached and missing pairs.
        pending: list[tuple[int, int, list[tuple[str, PairResult]], list[str]]] = []
        for query_index in range(len(queries)):
            for shard_index, shard in enumerate(shards):
                cached: list[tuple[str, PairResult]] = []
                missing: list[str] = []
                for schema in shard:
                    hit = (
                        cache.get(pair_key(query_index, schema.schema_id))
                        if cache is not None
                        else None
                    )
                    if hit is not None:
                        cached.append((schema.schema_id, hit))
                    else:
                        missing.append(schema.schema_id)
                stats.pairs_total += len(shard)
                stats.pairs_from_cache += len(cached)
                if missing:
                    pending.append((query_index, shard_index, cached, missing))
                else:
                    stats.increments += 1
                    yield MatchIncrement(
                        query_index, shard_index, tuple(cached), from_cache=True
                    )

        if not pending:
            return

        def record(
            query_index: int,
            shard_index: int,
            cached: list[tuple[str, PairResult]],
            computed: list[tuple[str, PairResult]],
        ) -> MatchIncrement:
            if cache is not None:
                for schema_id, result in computed:
                    cache.put(pair_key(query_index, schema_id), result)
            stats.increments += 1
            return MatchIncrement(
                query_index,
                shard_index,
                tuple(cached) + tuple(computed),
                from_cache=False,
            )

        if self.workers == 1:
            # Serial fallback: no processes, deterministic unit order,
            # one begin_query per query (units are query-grouped).
            schemas_by_id = {s.schema_id: s for s in repository}
            active_query: int | None = None
            for query_index, shard_index, cached, missing in pending:
                if query_index != active_query:
                    matcher.begin_query(queries[query_index])
                    active_query = query_index
                computed = [
                    (
                        schema_id,
                        matcher.match_pair(
                            queries[query_index],
                            schemas_by_id[schema_id],
                            delta_max,
                        ),
                    )
                    for schema_id in missing
                ]
                yield record(query_index, shard_index, cached, computed)
            return

        # Parallel fan-out.  The matcher is pickled *after* prepare(), so
        # repository-global state (e.g. clusters) rides along; tasks then
        # carry only indices and schema ids.
        needed_ids = {schema_id for _, _, _, missing in pending for schema_id in missing}
        schema_table = {
            schema.schema_id: schema
            for schema in repository
            if schema.schema_id in needed_ids
        }
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(matcher, queries, schema_table),
        ) as pool:
            futures = {
                pool.submit(_run_unit, query_index, tuple(missing), delta_max): (
                    query_index,
                    shard_index,
                    cached,
                )
                for query_index, shard_index, cached, missing in pending
            }
            for future in as_completed(futures):
                query_index, shard_index, cached = futures[future]
                yield record(query_index, shard_index, cached, future.result())

"""Sharded, parallel repository matching with per-pair memoisation.

The paper's cost driver is the per-schema mapping search: matching one
query against a repository is ``|repository|`` independent
:meth:`~repro.matching.base.Matcher.match_pair` calls.  This module
exploits that independence three ways:

* **Sharding** — :func:`shard_repository` partitions the repository
  deterministically (round robin) into sub-repositories.
* **Parallel fan-out** — :class:`MatchingPipeline` runs each
  (query, shard) unit in a pool of worker processes; ``workers=1`` is a
  deterministic serial fallback with no multiprocessing involved.
* **Memoisation** — a :class:`CandidateCache` (LRU) keyed by matcher
  configuration, repository content, query content and threshold stores
  every pair's ``(target_ids, score)`` list, so repeated workloads
  (top-n sweeps, threshold sweeps, the figure experiments) stop
  recomputing identical searches.

Results are **identical to serial matching** by construction: the
matcher ``prepare()``s on the *full* repository before sharding (so
repository-global state such as clustering is unaffected), per-pair
results are reassembled in repository order, and mapping scores are
rounded by the shared objective, so process boundaries cannot introduce
drift.  Per-shard results stream back as :class:`MatchIncrement` values
in completion order; the final :class:`PipelineResult` is
order-independent.

Two further mechanisms ride on the same per-pair decomposition:

* **Pluggable transports** — *where* units run is delegated to a
  :class:`~repro.matching.executor.ShardExecutor`: serial in-process,
  the shared persistent worker pool with one-shot state install
  (:mod:`repro.matching.executor`), or remote socket workers
  (:mod:`repro.matching.remote`).  Successive runs with the same
  matcher/repository/query identity — a threshold sweep, repeated
  experiments — reuse live workers and pickle nothing but indices and
  thresholds (:func:`shutdown_workers` tears the shared pool down).
* **Incremental re-matching** — :meth:`MatchingPipeline.rematch` takes
  a previous :class:`PipelineResult` plus a
  :class:`~repro.schema.delta.DeltaReport` and re-runs only the
  searches a repository delta can actually affect, with byte-identical
  output (see :mod:`repro.matching.evolution` for the stateful
  session API).

Module-level defaults (used when ``workers``/``shards``/``cache`` are
not given explicitly) are set with :func:`configure`; the CLI's
``--workers``/``--shards`` flags call it.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Iterator, Sequence
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.answers import AnswerSet
from repro.errors import MatchingError
from repro.matching.base import Matcher
from repro.matching.engine import threshold_unreachable
from repro.matching.executor import (
    ExecutionState,
    ProcessPoolShardExecutor,
    SerialExecutor,
    ShardExecutor,
    WorkUnit,
    current_switches,
    shutdown_workers,
)
from repro.matching.similarity.matrix import suffix_cost_sums
from repro.schema.delta import DeltaReport
from repro.schema.model import Schema
from repro.schema.repository import SchemaRepository

__all__ = [
    "CacheStats",
    "CandidateCache",
    "MatchIncrement",
    "MatchingPipeline",
    "PipelineResult",
    "PipelineStats",
    "RematchStats",
    "configure",
    "default_cache",
    "matcher_fingerprint",
    "pipeline_defaults",
    "schema_digest",
    "shard_repository",
    "shutdown_workers",
]

#: one pair's search result: the ``(target_ids, score)`` list of
#: :meth:`~repro.matching.base.Matcher.match_pair`
PairResult = list[tuple[tuple[int, ...], float]]


# ---------------------------------------------------------------------------
# Fingerprints (cache identity)
# ---------------------------------------------------------------------------

def schema_digest(schema: Schema) -> str:
    """Content hash of everything matching can observe about a schema.

    Alias for :meth:`~repro.schema.model.Schema.content_digest` — names,
    datatypes and parent/child structure; ``concept`` provenance is
    deliberately excluded (only the oracle judge reads it).  The
    repository-level counterpart,
    :meth:`~repro.schema.repository.SchemaRepository.content_digest`,
    enters every cache key because per-pair results of repository-global
    matchers (clustering) depend on all schemas, not just the pair's.
    """
    return schema.content_digest()


def matcher_fingerprint(matcher: Matcher) -> str:
    """Configuration identity of a matcher, for cache keys.

    :meth:`Matcher.describe` covers the system name, its parameters and
    the objective fingerprint — which itself folds in the thesaurus
    content digest (:meth:`NameSimilarity.fingerprint`), so same-size,
    different-content thesauri cannot collide here.
    """
    description = sorted(
        (key, repr(value)) for key, value in matcher.describe().items()
    )
    return repr(description)


# ---------------------------------------------------------------------------
# Candidate cache
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`CandidateCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


_MISS = object()


class CandidateCache:
    """LRU memo of per-(matcher, repository, query, schema, δ) results.

    Values are the ``(target_ids, score)`` lists of
    :meth:`~repro.matching.base.Matcher.match_pair` — plain tuples, so
    entries are independent of live ``Schema`` objects and survive
    workload rebuilds (keys are content hashes, not object identities).

    ``maxsize`` counts entries (pairs), not bytes.  The cache is not
    thread-safe; the pipeline only touches it from the coordinating
    process.
    """

    def __init__(self, maxsize: int = 8192):
        if maxsize < 0:
            raise MatchingError(f"cache maxsize must be >= 0, got {maxsize!r}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, PairResult] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> PairResult | None:
        """The cached pair result, or ``None`` on a miss."""
        entry = self._entries.get(key, _MISS)
        if entry is _MISS:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry  # type: ignore[return-value]

    def put(self, key: Hashable, value: PairResult) -> None:
        """Store one pair result, evicting least-recently-used entries."""
        if self.maxsize == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters keep running)."""
        self._entries.clear()


# ---------------------------------------------------------------------------
# Module defaults
# ---------------------------------------------------------------------------

@dataclass
class PipelineDefaults:
    """Module-wide execution defaults (see :func:`configure`)."""

    workers: int = 1
    shards: int | None = None  # None = one shard per worker
    cache_size: int = 8192


_DEFAULTS = PipelineDefaults()
_DEFAULT_CACHE = CandidateCache(_DEFAULTS.cache_size)
_UNSET = object()


def configure(
    *,
    workers: int | None = None,
    shards: int | None | object = _UNSET,
    cache_size: int | None = None,
) -> PipelineDefaults:
    """Set process-wide pipeline defaults; omitted values are kept.

    ``workers`` is the default process count (1 = serial), ``shards``
    the default shard count (``None`` = one per worker) and
    ``cache_size`` resizes the shared default cache (entries; 0 disables
    it).  Validation is atomic: any invalid argument raises before
    *anything* is mutated, so a failed call never leaves the process
    half-configured.  Returns the resulting defaults.
    """
    global _DEFAULT_CACHE
    if workers is not None and workers < 1:
        raise MatchingError(f"workers must be >= 1, got {workers!r}")
    if shards is not _UNSET and shards is not None and shards < 1:  # type: ignore[operator]
        raise MatchingError(f"shards must be >= 1, got {shards!r}")
    new_cache = None
    if cache_size is not None:
        new_cache = CandidateCache(cache_size)  # validates maxsize
    if workers is not None:
        _DEFAULTS.workers = workers
    if shards is not _UNSET:
        _DEFAULTS.shards = shards  # type: ignore[assignment]
    if new_cache is not None:
        _DEFAULT_CACHE = new_cache
        _DEFAULTS.cache_size = cache_size
    return _DEFAULTS


def pipeline_defaults() -> PipelineDefaults:
    """The current module-wide defaults (live object)."""
    return _DEFAULTS


def default_cache() -> CandidateCache:
    """The shared candidate cache used when ``cache`` is not given."""
    return _DEFAULT_CACHE


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------

def shard_repository(
    repository: SchemaRepository, num_shards: int
) -> list[SchemaRepository]:
    """Partition a repository into at most ``num_shards`` sub-repositories.

    Round-robin by repository order, so shard sizes differ by at most
    one schema and the partition is deterministic.  Shard ids are
    ``<repository_id>#<i>/<n>``; every schema appears in exactly one
    shard.
    """
    if num_shards < 1:
        raise MatchingError(f"num_shards must be >= 1, got {num_shards!r}")
    schemas = repository.schemas()
    num_shards = min(num_shards, len(schemas))
    return [
        SchemaRepository(
            f"{repository.repository_id}#{index}/{num_shards}",
            schemas[index::num_shards],
        )
        for index in range(num_shards)
    ]


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MatchIncrement:
    """Results of one (query, shard) unit, streamed as it completes.

    ``pair_results`` holds ``(schema_id, match_pair result)`` for every
    schema of the shard; ``from_cache`` is true when no search ran at
    all because every pair was memoised.
    """

    query_index: int
    shard_index: int
    pair_results: tuple[tuple[str, PairResult], ...]
    from_cache: bool


@dataclass
class PipelineStats:
    """Execution record of one pipeline run."""

    workers: int
    shards: int
    queries: int
    pairs_total: int = 0
    pairs_from_cache: int = 0
    increments: int = 0
    wall_seconds: float = 0.0


@dataclass
class RematchStats:
    """Execution record of one incremental re-match (see ``rematch``).

    ``pairs_reused`` were carried over from the previous run unchanged,
    ``pairs_skipped`` are delta-changed pairs proven empty by the static
    admissible bound (no search ran), ``pairs_recomputed`` actually
    searched.  ``queries_touched`` counts queries for which at least one
    search re-ran.  ``full_recompute`` is set when the matcher carries
    repository-global state (``pair_local`` false) and the whole run had
    to be repeated.
    """

    queries: int
    pairs_total: int = 0
    pairs_reused: int = 0
    pairs_skipped: int = 0
    pairs_recomputed: int = 0
    queries_touched: int = 0
    #: previous AnswerSet objects adopted wholesale because the delta
    #: provably contributed no pair to them (changed and removed schemas
    #: all empty for that query, before and after)
    answer_sets_reused: int = 0
    full_recompute: bool = False
    wall_seconds: float = 0.0


@dataclass
class PipelineResult:
    """Per-query answer sets plus the run's execution statistics.

    ``pair_results`` retains every per-(query, schema) search result in
    plain ``(target_ids, score)`` form — the state incremental
    re-matching (:meth:`MatchingPipeline.rematch`,
    :class:`~repro.matching.evolution.EvolutionSession`) reuses after a
    repository delta.  ``repository_digest``/``query_digests``/
    ``delta_max`` identify what the results were computed against, so a
    re-match can refuse mismatched inputs.  ``rematch`` is set only on
    results produced incrementally.
    """

    answer_sets: list[AnswerSet]
    stats: PipelineStats
    pair_results: list[dict[str, PairResult]] = field(default_factory=list)
    repository_digest: str = ""
    query_digests: tuple[str, ...] = ()
    matcher_key: str = ""
    delta_max: float = 0.0
    rematch: RematchStats | None = None


class MatchingPipeline:
    """Shard → fan out → stream → reassemble, for one matcher.

    Parameters mirror :meth:`Matcher.batch_match`: ``workers`` processes
    (``None`` = module default; 1 = serial in-process), ``shards``
    partitions (``None`` = one per worker), ``cache`` a
    :class:`CandidateCache` (``None`` = shared default, ``False`` =
    disabled).  ``executor`` overrides the transport units run on
    (``None`` = serial for ``workers=1``, the shared process pool
    otherwise) — e.g. a
    :class:`~repro.matching.remote.RemoteShardExecutor` fans the same
    units out to socket workers on other nodes.
    """

    def __init__(
        self,
        matcher: Matcher,
        *,
        workers: int | None = None,
        shards: int | None = None,
        cache: CandidateCache | bool | None = None,
        executor: ShardExecutor | None = None,
    ):
        defaults = pipeline_defaults()
        self.matcher = matcher
        self.workers = workers if workers is not None else defaults.workers
        if self.workers < 1:
            raise MatchingError(f"workers must be >= 1, got {self.workers!r}")
        self.shards = shards if shards is not None else defaults.shards
        if self.shards is not None and self.shards < 1:
            raise MatchingError(f"shards must be >= 1, got {self.shards!r}")
        if cache is None:
            self.cache: CandidateCache | None = default_cache()
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache  # type: ignore[assignment]
        self.executor = executor
        self.last_stats: PipelineStats | None = None

    # -- execution ----------------------------------------------------------

    def run(
        self,
        queries: Sequence[Schema],
        repository: SchemaRepository,
        delta_max: float,
    ) -> PipelineResult:
        """Match every query against the repository; order-deterministic.

        Consumes the increment stream and reassembles per-pair results
        in repository order, so the resulting answer sets are identical
        to serial :meth:`Matcher.match` output for any worker/shard
        count.
        """
        queries = list(queries)
        started = perf_counter()
        collected: list[dict[str, PairResult]] = [{} for _ in queries]
        for increment in self.stream(queries, repository, delta_max):
            collected[increment.query_index].update(increment.pair_results)
        answer_sets = [
            self.matcher.assemble(query, repository, by_schema, delta_max)
            for query, by_schema in zip(queries, collected)
        ]
        stats = self.last_stats
        assert stats is not None
        stats.wall_seconds = perf_counter() - started
        return PipelineResult(
            answer_sets=answer_sets,
            stats=stats,
            pair_results=collected,
            repository_digest=repository.content_digest(),
            query_digests=tuple(schema_digest(query) for query in queries),
            matcher_key=matcher_fingerprint(self.matcher),
            delta_max=delta_max,
        )

    def rematch(
        self,
        queries: Sequence[Schema],
        repository: SchemaRepository,
        delta_max: float,
        *,
        previous: PipelineResult,
        report: DeltaReport,
    ) -> PipelineResult:
        """Incremental re-match after a repository delta; byte-identical.

        ``previous`` must be the :meth:`run` (or ``rematch``) result for
        the *same* matcher, queries and threshold against the delta's
        old repository; ``report`` the
        :class:`~repro.schema.delta.DeltaReport` of applying the delta.
        Per-(query, schema) results are then **reused** for every schema
        the report lists as content-unchanged, **skipped** for changed
        schemas the static admissible bound proves empty
        (:func:`~repro.matching.engine.threshold_unreachable` — the
        branch-and-bound's own first pruning step, so nothing an actual
        search would emit is ever skipped), and **recomputed** only for
        the rest.  The reassembled answer sets are byte-identical to a
        cold ``run()`` against the new repository — property-tested for
        every matcher and delta kind.

        Matchers whose per-pair results depend on repository-global
        state (``pair_local`` false: clustering and its hybrids — any
        delta can move cluster boundaries everywhere), and objectives
        whose *scores* do (corpus-sensitive similarity backends — a
        delta moves the corpus statistics under every pair), fall back
        to a full recompute, flagged in the returned ``rematch`` stats.

        Recomputed pairs run serially in the coordinating process and
        bypass the candidate cache: the changed set is small by
        construction (that is the point of a delta), so process fan-out
        and memoisation overheads would dominate the work.  At high
        churn rates, prefer a fresh :meth:`run`.
        """
        queries = list(queries)
        if delta_max < 0:
            raise MatchingError(f"delta_max must be >= 0, got {delta_max!r}")
        if not previous.pair_results:
            raise MatchingError(
                "rematch needs a previous result with retained pair_results "
                "(produced by MatchingPipeline.run)"
            )
        if previous.delta_max != delta_max:
            raise MatchingError(
                f"rematch threshold {delta_max!r} differs from the previous "
                f"run's {previous.delta_max!r}"
            )
        if previous.matcher_key != matcher_fingerprint(self.matcher):
            raise MatchingError(
                "previous result was computed by a differently configured "
                "matcher (fingerprints differ); rematch can only extend a "
                "run of the same system"
            )
        if previous.repository_digest != report.old_digest:
            raise MatchingError(
                "previous result was not computed against the delta's old "
                "repository (content digests differ)"
            )
        if repository.content_digest() != report.new_digest:
            raise MatchingError(
                "repository does not match the delta report's new content "
                "digest"
            )
        query_digests = tuple(schema_digest(query) for query in queries)
        if query_digests != previous.query_digests:
            raise MatchingError(
                "query set differs from the previous run's (content digests "
                "do not match)"
            )

        started = perf_counter()
        matcher = self.matcher
        rematch_stats = RematchStats(
            queries=len(queries),
            pairs_total=len(queries) * len(repository),
        )
        if not matcher.pair_local or getattr(
            matcher.objective, "corpus_sensitive", False
        ):
            # Corpus-sensitive backends re-freeze their repository-wide
            # statistics against the evolved repository, which can move
            # *every* pair's score — stored pair results for unchanged
            # schemas are as stale as a clustering matcher's boundaries.
            result = self.run(queries, repository, delta_max)
            rematch_stats.full_recompute = True
            rematch_stats.pairs_recomputed = rematch_stats.pairs_total
            rematch_stats.queries_touched = len(queries)
            rematch_stats.wall_seconds = perf_counter() - started
            result.rematch = rematch_stats
            return result

        matcher.prepare(repository)
        changed = set(report.changed)
        objective = matcher.objective
        structure_weight = objective.weights.structure
        substrate = matcher._substrate()
        collected: list[dict[str, PairResult]] = []
        answer_sets: list[AnswerSet] = []
        for query_index, query in enumerate(queries):
            prior = previous.pair_results[query_index]
            by_schema: dict[str, PairResult] = {}
            began_query = False
            touched = False
            # When every changed schema contributes no pair — new result
            # empty AND old result (for replaced ids) empty — and every
            # removed schema's old result was empty too, the previous
            # AnswerSet is provably what assemble() would rebuild
            # (unchanged schemas keep their relative repository order and
            # their pair results verbatim), so it is adopted wholesale.
            reusable_answers = all(
                not prior[removed_id] for removed_id in report.removed
            )
            for schema in repository:
                schema_id = schema.schema_id
                if schema_id not in changed:
                    by_schema[schema_id] = prior[schema_id]
                    rematch_stats.pairs_reused += 1
                    continue
                if prior.get(schema_id):
                    reusable_answers = False  # replaced away a non-empty pair
                if len(schema) < len(query):
                    by_schema[schema_id] = []  # injectivity impossible
                    rematch_stats.pairs_skipped += 1
                    continue
                if substrate is not None:
                    floor = substrate.matrix(query, schema).min_rest[0]
                else:
                    costs = objective.cost_matrix(query, schema)
                    floor = suffix_cost_sums([min(row) for row in costs])[0]
                if threshold_unreachable(
                    floor, len(query), structure_weight, delta_max
                ):
                    by_schema[schema_id] = []
                    rematch_stats.pairs_skipped += 1
                    continue
                if not began_query:
                    matcher.begin_query(query)
                    began_query = True
                result = matcher.match_pair(query, schema, delta_max)
                by_schema[schema_id] = result
                rematch_stats.pairs_recomputed += 1
                touched = True
                if result:
                    reusable_answers = False
            if touched:
                rematch_stats.queries_touched += 1
            collected.append(by_schema)
            if reusable_answers:
                answer_sets.append(previous.answer_sets[query_index])
                rematch_stats.answer_sets_reused += 1
            else:
                answer_sets.append(
                    matcher.assemble(query, repository, by_schema, delta_max)
                )
        stats = PipelineStats(
            workers=1,
            shards=1,
            queries=len(queries),
            pairs_total=rematch_stats.pairs_total,
            increments=0,
        )
        rematch_stats.wall_seconds = perf_counter() - started
        stats.wall_seconds = rematch_stats.wall_seconds
        self.last_stats = stats
        return PipelineResult(
            answer_sets=answer_sets,
            stats=stats,
            pair_results=collected,
            repository_digest=repository.content_digest(),
            query_digests=query_digests,
            matcher_key=previous.matcher_key,
            delta_max=delta_max,
            rematch=rematch_stats,
        )

    def stream(
        self,
        queries: Sequence[Schema],
        repository: SchemaRepository,
        delta_max: float,
    ) -> Iterator[MatchIncrement]:
        """Yield per-(query, shard) increments as they complete.

        Fully-cached units are yielded first (no search runs); the rest
        arrive in completion order — deterministic serially, arbitrary
        with workers.  Callers needing a stable order should consume the
        whole stream and sort (:meth:`run` does).
        """
        if delta_max < 0:
            raise MatchingError(f"delta_max must be >= 0, got {delta_max!r}")
        queries = list(queries)
        stats = PipelineStats(
            workers=self.workers,
            shards=0,
            queries=len(queries),
        )
        self.last_stats = stats
        if not queries:
            return
        matcher = self.matcher
        matcher.prepare(repository)
        shards = shard_repository(
            repository, self.shards if self.shards is not None else self.workers
        )
        stats.shards = len(shards)

        cache = self.cache
        if cache is not None:  # keys are only needed when memoising
            repo_digest = repository.content_digest()
            matcher_key = matcher_fingerprint(matcher)
            query_digests = [schema_digest(query) for query in queries]

        def pair_key(query_index: int, schema_id: str) -> tuple:
            return (
                matcher_key,
                repo_digest,
                query_digests[query_index],
                schema_id,
                delta_max,
            )

        # Split every (query, shard) unit into cached and missing pairs.
        pending: list[tuple[int, int, list[tuple[str, PairResult]], list[str]]] = []
        for query_index in range(len(queries)):
            for shard_index, shard in enumerate(shards):
                cached: list[tuple[str, PairResult]] = []
                missing: list[str] = []
                for schema in shard:
                    hit = (
                        cache.get(pair_key(query_index, schema.schema_id))
                        if cache is not None
                        else None
                    )
                    if hit is not None:
                        cached.append((schema.schema_id, hit))
                    else:
                        missing.append(schema.schema_id)
                stats.pairs_total += len(shard)
                stats.pairs_from_cache += len(cached)
                if missing:
                    pending.append((query_index, shard_index, cached, missing))
                else:
                    stats.increments += 1
                    yield MatchIncrement(
                        query_index, shard_index, tuple(cached), from_cache=True
                    )

        if not pending:
            return

        def record(
            query_index: int,
            shard_index: int,
            cached: list[tuple[str, PairResult]],
            computed: list[tuple[str, PairResult]],
        ) -> MatchIncrement:
            if cache is not None:
                for schema_id, result in computed:
                    cache.put(pair_key(query_index, schema_id), result)
            stats.increments += 1
            return MatchIncrement(
                query_index,
                shard_index,
                tuple(cached) + tuple(computed),
                from_cache=False,
            )

        # Hand the missing units to a transport.  The matcher is shipped
        # *after* prepare(), so repository-global state (e.g. clusters)
        # rides along; the repository's full schema table is one copy
        # shared by all shards.  Stateful transports (the shared pool,
        # remote workers) install this bundle one-shot and reuse it
        # across runs while the state key matches; the A/B switches
        # enter the key because workers hold a copy of the matcher (and
        # its substrate/kernel), so a toggle flip must re-install state
        # rather than reuse workers warmed on the other code path.
        switches = current_switches()
        state = ExecutionState(
            matcher=matcher,
            queries=queries,
            repository=repository,
            schema_table={schema.schema_id: schema for schema in repository},
            switches=switches,
            state_key=(
                matcher_fingerprint(matcher),
                repository.content_digest(),
                tuple(schema_digest(query) for query in queries),
                *switches,
            ),
        )
        units = [
            WorkUnit(query_index, shard_index, tuple(missing))
            for query_index, shard_index, _, missing in pending
        ]
        cached_by_unit = {
            (query_index, shard_index): cached
            for query_index, shard_index, cached, _ in pending
        }
        executor = self.executor
        if executor is None:
            executor = (
                SerialExecutor()
                if self.workers == 1
                else ProcessPoolShardExecutor(self.workers)
            )
        for unit, computed in executor.execute(state, units, delta_max):
            yield record(
                unit.query_index,
                unit.shard_index,
                cached_by_unit[(unit.query_index, unit.shard_index)],
                computed,
            )

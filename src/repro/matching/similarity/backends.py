"""Pluggable similarity backends: the name-score plane of the objective.

The objective function Δ blends three evidence sources — name, datatype,
structure — but only the *name* plane has real design freedom: the
datatype penalty is a fixed table and the structure cost is a property
of whole mappings.  This module makes that plane pluggable: a
:class:`SimilarityBackend` scores one pair of raw element labels in
[0, 1], and :class:`~repro.matching.objective.ObjectiveFunction` routes
its name-cost term through whichever backend it was constructed with.
Everything downstream — matrices, the scoring kernel, the pipeline, the
bounds math — is backend-agnostic, because it only ever sees the
combined per-element cost.

The contract every backend must honour (``docs/backends.md`` is the
author-facing version):

* **Determinism** — ``similarity(a, b)`` is a pure, symmetric function
  of the *normalised* labels (:func:`~repro.util.text.normalise_label`)
  plus, for corpus-sensitive backends, the prepared corpus statistics.
  No randomness, no wall-clock, no ``hash()`` (whose value changes per
  process under ``PYTHONHASHSEED``); hashing goes through
  :mod:`hashlib`.  This is what licenses the repository scoring kernel
  (:class:`~repro.matching.similarity.kernel.CostKernel`) to compute one
  cost per distinct (normalised label, datatype) pair per repository and
  gather it everywhere.
* **Config fingerprinting** — :meth:`SimilarityBackend.fingerprint`
  renders the backend *configuration* (never corpus state) at full
  ``repr`` precision.  It is folded into the objective fingerprint, so
  two objectives score-compatible for the bounds technique exactly when
  their fingerprints match, and fingerprint-keyed caches (candidate
  cache, snapshot gates) can never serve a foreign backend's scores.
* **Corpus honesty** — a backend whose scores depend on repository-wide
  statistics (:class:`SparseBM25Backend`'s document frequencies) sets
  ``corpus_sensitive = True``, freezes its statistics in
  :meth:`SimilarityBackend.prepare` (idempotent per repository content
  digest), and reports them through
  :meth:`SimilarityBackend.corpus_token` — a content digest the
  substrate and kernel use to invalidate cached scores when the corpus
  moved.  The token must be a pure function of (repository content,
  backend configuration), so state keyed by repository digest stays
  valid.

The default :class:`LexicalBackend` wraps the established
:class:`~repro.matching.similarity.name.NameSimilarity` blend and its
fingerprint *verbatim*, so refactoring the objective onto the backend
seam changed no fingerprint, no score and no snapshot compatibility.
Like every optimisation layer before it (substrate, kernel, flat
search, numpy), the seam has a process-wide A/B switch:
:func:`backends_disabled` routes the default objective through the
pre-backend direct :class:`NameSimilarity` path, and the property suite
asserts byte-identical answer sets either way.  The switch only covers
the refactoring seam — non-lexical backends always score through
themselves, so toggling it can never silently swap one scoring system
for another.
"""

from __future__ import annotations

import hashlib
import math
from abc import ABC, abstractmethod
from collections.abc import Iterator, Sequence
from contextlib import contextmanager

from repro.errors import MatchingError
from repro.matching.similarity.name import NameSimilarity
from repro.schema.repository import SchemaRepository
from repro.util.caching import fifo_put
from repro.util.text import character_ngrams, normalise_label, tokenize_label

__all__ = [
    "EnsembleBackend",
    "HashedVectorBackend",
    "LexicalBackend",
    "SimilarityBackend",
    "SparseBM25Backend",
    "backends_disabled",
    "backends_enabled",
    "set_backends_enabled",
]

_ENABLED = True


def backends_enabled() -> bool:
    """Whether the default objective scores names through its backend."""
    return _ENABLED


def set_backends_enabled(enabled: bool) -> bool:
    """Set the process-wide backend switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def backends_disabled() -> Iterator[None]:
    """Run a block on the pre-backend direct name-similarity path."""
    previous = set_backends_enabled(False)
    try:
        yield
    finally:
        set_backends_enabled(previous)


class SimilarityBackend(ABC):
    """One way of scoring a pair of element labels in [0, 1].

    Subclasses implement :meth:`similarity` and :meth:`fingerprint`
    under the module-docstring contract; corpus-sensitive backends
    additionally override :meth:`prepare` and :meth:`corpus_token`.
    """

    #: short kind tag used in reports and the objective's dispatch
    kind: str = "backend"

    #: True when scores depend on repository-wide statistics frozen by
    #: :meth:`prepare`; the substrate invalidates cached matrices and
    #: kernel rows whenever :meth:`corpus_token` moves, and incremental
    #: re-matching falls back to a full recompute after deltas
    corpus_sensitive: bool = False

    @abstractmethod
    def similarity(self, a: str, b: str) -> float:
        """Similarity of two raw element labels, in [0, 1]."""

    @abstractmethod
    def fingerprint(self) -> str:
        """Configuration identity string (never corpus state)."""

    def prepare(self, repository: SchemaRepository, index=None) -> None:
        """Freeze corpus statistics for ``repository``; idempotent.

        ``index`` is the substrate's prepared
        :class:`~repro.matching.similarity.matrix.TokenIndex` when one
        is available — backends may derive statistics from its postings
        instead of re-scanning the repository.  The default does
        nothing (corpus-insensitive backends need no corpus).
        """

    def corpus_token(self) -> str:
        """Content digest of the frozen corpus statistics; ``""`` if none."""
        return ""


class LexicalBackend(SimilarityBackend):
    """The established lexical blend, behind the backend seam.

    Wraps :class:`~repro.matching.similarity.name.NameSimilarity` —
    Jaro-Winkler + character-3-gram Dice + token-set Jaccard with the
    ramp and the imperfect thesaurus — without changing a byte of it.
    The fingerprint is the wrapped similarity's fingerprint *verbatim*:
    a default-configured objective therefore fingerprints exactly as it
    did before backends existed, which is what keeps every pre-backend
    snapshot loading and every fingerprint-keyed cache entry valid.
    """

    kind = "lexical"

    def __init__(self, name_similarity: NameSimilarity):
        self.name_similarity = name_similarity

    def similarity(self, a: str, b: str) -> float:
        return self.name_similarity.similarity(a, b)

    def fingerprint(self) -> str:
        return self.name_similarity.fingerprint()


class SparseBM25Backend(SimilarityBackend):
    """BM25-weighted sparse token overlap over the repository corpus.

    Schema labels are short documents over word tokens
    (:func:`~repro.util.text.tokenize_label`); each element of the
    repository is one document.  :meth:`prepare` freezes the corpus
    statistics — per-token document frequencies, document count and
    average length — preferring the substrate's
    :class:`~repro.matching.similarity.matrix.TokenIndex` postings
    (``df[token] = |elements_with_token(token)|``) over a repository
    scan; both routes produce identical statistics, because postings
    record exactly the distinct-token membership the scan counts.

    A label's token weights follow the BM25 term shape with ``tf = 1``
    per distinct token (labels are a handful of words; multiplicity is
    noise at that length):

    .. math::

        w(t) = \\mathrm{idf}(t) \\cdot
               \\frac{k_1 + 1}{1 + k_1 (1 - b + b \\cdot L/\\bar L)}

    with the standard ``idf(t) = ln(1 + (N - df + 0.5)/(df + 0.5))``,
    and two labels score by **weighted Jaccard** over their token sets —
    ``Σ min(w_a, w_b) / Σ max(w_a, w_b)`` — which is symmetric, lands in
    [0, 1] and degrades to plain token-set Jaccard when unprepared
    (all weights 1, no length norm).  Rare, discriminative tokens
    dominate the overlap; corpus-wide filler ("id", "name") is damped.

    Deterministic by construction: statistics are a pure function of
    repository content, scores a pure function of the normalised labels
    plus those statistics, and :meth:`corpus_token` digests the
    statistics so every downstream cache can tell one corpus from
    another.
    """

    kind = "bm25"
    corpus_sensitive = True

    #: bound on the per-label weight-profile and pair memo caches;
    #: evicted entries re-derive exactly (pure functions of label +
    #: frozen stats), so eviction only caps memory
    MEMO_LIMIT = 65_536

    def __init__(self, k1: float = 1.5, b: float = 0.75):
        if k1 < 0:
            raise MatchingError(f"k1 must be >= 0, got {k1!r}")
        if not 0.0 <= b <= 1.0:
            raise MatchingError(f"b must be in [0, 1], got {b!r}")
        self.k1 = float(k1)
        self.b = float(b)
        self._repository_digest: str | None = None
        self._idf: dict[str, float] = {}
        self._default_idf = 1.0
        self._avg_len = 0.0
        self._token: str = ""
        self._profiles: dict[str, tuple[tuple[str, ...], tuple[float, ...]]] = {}
        self._memo: dict[tuple[str, str], float] = {}

    def fingerprint(self) -> str:
        return f"bm25(k1={self.k1!r},b={self.b!r})"

    def prepare(self, repository: SchemaRepository, index=None) -> None:
        digest = repository.content_digest()
        if digest == self._repository_digest:
            return
        if index is not None and index.repository_digest == digest:
            df = {
                token: len(index.elements_with_token(token))
                for token in index.tokens()
            }
        else:
            df_sets: dict[str, set[tuple[str, int]]] = {}
            for schema in repository:
                for element_id, element in enumerate(schema.elements()):
                    key = (schema.schema_id, element_id)
                    for token in set(tokenize_label(element.name)):
                        df_sets.setdefault(token, set()).add(key)
            df = {token: len(keys) for token, keys in df_sets.items()}
        total_elements = sum(len(schema) for schema in repository)
        total_length = sum(df.values())  # Σ per-element distinct tokens
        self._idf = {
            token: math.log(
                1.0 + (total_elements - count + 0.5) / (count + 0.5)
            )
            for token, count in df.items()
        }
        self._default_idf = math.log(1.0 + (total_elements + 0.5) / 0.5)
        self._avg_len = (
            total_length / total_elements if total_elements else 0.0
        )
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(str(total_elements).encode())
        for token in sorted(df):
            hasher.update(b"\x1e")
            hasher.update(token.encode())
            hasher.update(b"\x1f")
            hasher.update(str(df[token]).encode())
        self._token = hasher.hexdigest()
        self._repository_digest = digest
        self._profiles.clear()
        self._memo.clear()

    def corpus_token(self) -> str:
        return self._token

    def _profile(self, normalised: str) -> tuple[tuple[str, ...], tuple[float, ...]]:
        """Sorted distinct tokens of one normalised label + BM25 weights."""
        cached = self._profiles.get(normalised)
        if cached is not None:
            return cached
        tokens = tuple(sorted(set(normalised.split())))
        if self._repository_digest is None:
            weights = tuple(1.0 for _ in tokens)
        else:
            length = len(tokens)
            saturation = (self.k1 + 1.0) / (
                1.0
                + self.k1
                * (1.0 - self.b + self.b * length / self._avg_len)
            ) if self._avg_len > 0 else 1.0
            idf = self._idf
            default = self._default_idf
            weights = tuple(
                idf.get(token, default) * saturation for token in tokens
            )
        profile = (tokens, weights)
        fifo_put(self._profiles, normalised, profile, self.MEMO_LIMIT)
        return profile

    def similarity(self, a: str, b: str) -> float:
        na, nb = normalise_label(a), normalise_label(b)
        if na == nb:
            return 1.0
        key = (na, nb) if na <= nb else (nb, na)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        tokens_a, weights_a = self._profile(key[0])
        tokens_b, weights_b = self._profile(key[1])
        wa = dict(zip(tokens_a, weights_a))
        wb = dict(zip(tokens_b, weights_b))
        overlap = 0.0
        union = 0.0
        for token in set(wa) | set(wb):
            in_a, in_b = wa.get(token), wb.get(token)
            if in_a is not None and in_b is not None:
                overlap += min(in_a, in_b)
                union += max(in_a, in_b)
            else:
                union += in_a if in_a is not None else in_b
        value = overlap / union if union > 0 else 0.0
        fifo_put(self._memo, key, value, self.MEMO_LIMIT)
        return value


class HashedVectorBackend(SimilarityBackend):
    """Cosine over hashed character-n-gram count vectors (dense, no deps).

    Each normalised label embeds as a ``dim``-wide count vector: every
    padded character n-gram (:func:`~repro.util.text.character_ngrams`)
    hashes to a bucket via :func:`hashlib.blake2b` — never the built-in
    ``hash``, whose value changes per process under ``PYTHONHASHSEED`` —
    and the pair scores by cosine.  Counts are non-negative, so cosine
    lands in [0, 1]; the embedding is a pure function of the normalised
    label alone, so the backend is corpus-insensitive and pair-local
    (it composes with incremental re-matching like the lexical blend).

    This is the classic hashing-trick feature map: collisions are part
    of the (deterministic) definition, not an error, and ``dim`` trades
    collision rate against vector width.
    """

    kind = "dense"

    #: bound on the per-label vector and pair memo caches; evicted
    #: entries re-derive exactly
    MEMO_LIMIT = 65_536

    def __init__(self, dim: int = 256, n: int = 3):
        if dim < 1:
            raise MatchingError(f"dim must be >= 1, got {dim!r}")
        if n < 1:
            raise MatchingError(f"n must be >= 1, got {n!r}")
        self.dim = int(dim)
        self.n = int(n)
        self._buckets: dict[str, int] = {}
        self._vectors: dict[str, tuple[dict[int, int], float]] = {}
        self._memo: dict[tuple[str, str], float] = {}

    def fingerprint(self) -> str:
        return f"hashvec(dim={self.dim!r},n={self.n!r})"

    def _bucket(self, gram: str) -> int:
        bucket = self._buckets.get(gram)
        if bucket is None:
            digest = hashlib.blake2b(gram.encode("utf-8"), digest_size=8)
            bucket = int.from_bytes(digest.digest(), "big") % self.dim
            fifo_put(self._buckets, gram, bucket, self.MEMO_LIMIT)
        return bucket

    def _vector(self, normalised: str) -> tuple[dict[int, int], float]:
        """Sparse count vector of one normalised label + its L2 norm."""
        cached = self._vectors.get(normalised)
        if cached is not None:
            return cached
        counts: dict[int, int] = {}
        for gram in character_ngrams(normalised, n=self.n, pad=True):
            bucket = self._bucket(gram)
            counts[bucket] = counts.get(bucket, 0) + 1
        norm = math.sqrt(sum(count * count for count in counts.values()))
        vector = (counts, norm)
        fifo_put(self._vectors, normalised, vector, self.MEMO_LIMIT)
        return vector

    def similarity(self, a: str, b: str) -> float:
        na, nb = normalise_label(a), normalise_label(b)
        if na == nb:
            return 1.0
        key = (na, nb) if na <= nb else (nb, na)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        counts_a, norm_a = self._vector(key[0])
        counts_b, norm_b = self._vector(key[1])
        if norm_a == 0.0 or norm_b == 0.0:
            value = 0.0
        else:
            if len(counts_b) < len(counts_a):
                counts_a, counts_b = counts_b, counts_a
            dot = sum(
                count * counts_b.get(bucket, 0)
                for bucket, count in counts_a.items()
            )
            # clamp: float rounding may nudge an exact match past 1.0
            value = min(1.0, dot / (norm_a * norm_b))
        fifo_put(self._memo, key, value, self.MEMO_LIMIT)
        return value


class EnsembleBackend(SimilarityBackend):
    """Weighted blend of component backends (normalised weighted mean).

    The score is ``Σ wᵢ·sᵢ / Σ wᵢ`` over the components, so it stays in
    [0, 1] whenever the components do.  Corpus sensitivity, preparation
    and the corpus token all compose: the ensemble is corpus-sensitive
    iff any component is, :meth:`prepare` fans out to every component,
    and :meth:`corpus_token` joins the component tokens positionally.
    The fingerprint renders each weight against its component
    fingerprint, so reweighting — or swapping a component — changes the
    objective identity exactly as it changes the scores.
    """

    kind = "ensemble"

    def __init__(
        self,
        components: Sequence[SimilarityBackend],
        weights: Sequence[float],
    ):
        components = list(components)
        weights = [float(weight) for weight in weights]
        if not components:
            raise MatchingError("an ensemble needs at least one component")
        if len(components) != len(weights):
            raise MatchingError(
                f"{len(components)} components but {len(weights)} weights"
            )
        if any(weight < 0 for weight in weights):
            raise MatchingError("ensemble weights must be non-negative")
        total = sum(weights)
        if total <= 0:
            raise MatchingError("ensemble weights must sum to a positive value")
        self.components = components
        self.weights = weights
        self._total = total
        self.corpus_sensitive = any(
            component.corpus_sensitive for component in components
        )

    def fingerprint(self) -> str:
        parts = ",".join(
            f"{weight!r}*{component.fingerprint()}"
            for component, weight in zip(self.components, self.weights)
        )
        return f"ensemble({parts})"

    def prepare(self, repository: SchemaRepository, index=None) -> None:
        for component in self.components:
            component.prepare(repository, index)

    def corpus_token(self) -> str:
        if not self.corpus_sensitive:
            return ""
        return "|".join(
            component.corpus_token() for component in self.components
        )

    def similarity(self, a: str, b: str) -> float:
        blended = sum(
            weight * component.similarity(a, b)
            for component, weight in zip(self.components, self.weights)
        )
        return blended / self._total

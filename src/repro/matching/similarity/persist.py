"""Persist matching state: substrate + retained results → snapshot store.

The schema layer's :class:`~repro.schema.store.SnapshotStore` knows how
to keep schemas on disk with integrity checks; this module layers the
matching-side state on top so that a restarted process **warm-starts in
O(load)** instead of re-matching:

* the similarity substrate — the repository :class:`TokenIndex`, the
  repository scoring kernel
  (:class:`~repro.matching.similarity.kernel.CostKernel`: interned label
  universe + per-query-label cost rows, so a warm start skips every
  similarity evaluation, not just the assembled matrices) and every
  cached :class:`ScoreMatrix` (costs only; candidate orders and suffix
  sums are re-derived deterministically on load);
* the retained :class:`~repro.matching.pipeline.PipelineResult` — the
  per-(query, schema) pair results incremental re-matching feeds on,
  plus the identifying digests and the matcher fingerprint.

Validity is fingerprint-gated, mirroring the candidate cache's keying
discipline: the substrate payload records the **objective fingerprint**
and the results payload the **matcher fingerprint** (which folds the
objective's in), so a snapshot saved under any other configuration —
different weights, thesaurus content, beam width — refuses to load with
a :class:`~repro.errors.SnapshotError` rather than silently serving
answers computed by a different system.  Restored answer sets are
rebuilt through :meth:`~repro.matching.base.Matcher.assemble` from the
persisted pair results, so they are byte-identical to what the offline
pipeline produced — the property the serving tests assert.

Floats survive the round trip exactly: scores and costs are serialized
by :mod:`json`, whose float formatting is ``repr``-based and
round-trip-exact for Python floats.

Payloads are **numpy-agnostic**: kernel rows export from the
``array('d')`` spec buffers and matrices from their cost tuples, never
from ndarray views — so a snapshot saved with the vectorised path on
restores (and serves byte-identically) in a process without numpy, and
vice versa.  The numpy property suite pins both diagonals.
"""

from __future__ import annotations

import json
from pathlib import Path
from dataclasses import dataclass

from repro.errors import SnapshotError
from repro.matching.base import Matcher
from repro.matching.pipeline import (
    PipelineResult,
    PipelineStats,
    matcher_fingerprint,
)
from repro.matching.similarity.kernel import CostKernel, kernel_enabled
from repro.matching.similarity.matrix import (
    ScoreMatrix,
    SimilaritySubstrate,
    TokenIndex,
)
from repro.schema.model import Schema
from repro.schema.repository import SchemaRepository
from repro.schema.store import SnapshotStore, payload_digest

__all__ = [
    "Snapshot",
    "load_snapshot",
    "restore_results",
    "restore_substrate",
    "results_payload",
    "save_snapshot",
    "substrate_payload",
]

# Mutable payloads (results change on every delta, the substrate on
# every new matrix) are stored under digest-suffixed section names and
# looked up through these manifest keys.  A checkpoint over an existing
# snapshot therefore never overwrites a file the previous manifest
# references — the store's crash-safety guarantee rests on it.
_SUBSTRATE_KEY = "substrate_section"
_RESULTS_KEY = "results_section"


def _digest_named(stem: str, payload: str) -> str:
    return f"{stem}-{payload_digest(payload.encode('utf-8'))[:16]}.json"


# ---------------------------------------------------------------------------
# Substrate payloads
# ---------------------------------------------------------------------------

def substrate_payload(substrate: SimilaritySubstrate) -> str:
    """Serialize a substrate's index + kernel + matrices to a JSON section.

    The kernel section is optional in both directions: a substrate
    prepared with the kernel switched off writes ``"kernel": null``, and
    payloads written before the kernel existed simply lack the key —
    :func:`restore_substrate` treats both as "rebuild on first
    ``prepare``", so snapshot format compatibility holds across the
    kernel's introduction.
    """
    index = substrate.token_index()
    kernel = substrate.kernel()
    return json.dumps(
        {
            "objective_fingerprint": substrate.objective.fingerprint(),
            "index": None if index is None else {
                "repository_digest": index.repository_digest,
                "entries": index.export_state(),
            },
            "kernel": None if kernel is None else kernel.export_state(),
            "matrices": [
                {
                    "query": matrix.query_digest,
                    "schema": matrix.schema_digest,
                    "costs": [list(row) for row in matrix.costs],
                }
                for matrix in substrate.cached_matrices()
            ],
        },
        sort_keys=True,
    )


def restore_substrate(
    substrate: SimilaritySubstrate,
    payload: str,
    repository: SchemaRepository,
) -> int:
    """Adopt a persisted substrate payload; returns matrices restored.

    The payload must have been saved under an identically configured
    objective (fingerprints compared, not trusted); the token index is
    rebuilt through the digest-guarded per-schema reuse path against the
    *live* repository, so entries saved for other content re-derive
    instead of corrupting candidate generation.
    """
    state = json.loads(payload)
    recorded = state.get("objective_fingerprint")
    live = substrate.objective.fingerprint()
    if recorded != live:
        raise SnapshotError(
            "substrate snapshot was saved under a different objective "
            f"configuration:\n  saved  {recorded}\n  loaded {live}"
        )
    index = None
    if state.get("index") is not None:
        index = TokenIndex.from_state(repository, state["index"]["entries"])
    if getattr(substrate.objective, "corpus_sensitive", False):
        # Freeze the backend's corpus statistics against the restored
        # repository *before* touching the kernel: the kernel's
        # migration gate compares corpus tokens, so an unprepared
        # objective (token "") would refuse every persisted row and
        # silently cold-start the similarity plane.
        substrate.objective.prepare_corpus(repository, index)
    kernel = None
    # Payloads written before the scoring kernel existed have no
    # "kernel" key; either way the kernel is rebuilt on first prepare().
    if state.get("kernel") is not None and kernel_enabled():
        kernel = CostKernel.from_state(
            substrate.objective, repository, state["kernel"]
        )
    matrices = [
        ScoreMatrix.restore(item["query"], item["schema"], item["costs"])
        for item in state.get("matrices", [])
    ]
    substrate.adopt(index, matrices, kernel=kernel)
    return len(matrices)


# ---------------------------------------------------------------------------
# Retained-result payloads
# ---------------------------------------------------------------------------

def results_payload(result: PipelineResult) -> str:
    """Serialize a pipeline result's retained pair data to a JSON section."""
    if not result.pair_results:
        raise SnapshotError(
            "cannot persist a result without retained pair_results "
            "(produced by MatchingPipeline.run / rematch)"
        )
    return json.dumps(
        {
            "matcher_fingerprint": result.matcher_key,
            "repository_digest": result.repository_digest,
            "query_digests": list(result.query_digests),
            "delta_max": result.delta_max,
            "pair_results": [
                {
                    schema_id: [[list(ids), score] for ids, score in pairs]
                    for schema_id, pairs in by_schema.items()
                }
                for by_schema in result.pair_results
            ],
        },
        sort_keys=True,
    )


def restore_results(
    matcher: Matcher,
    queries: list[Schema],
    repository: SchemaRepository,
    payload: str,
) -> PipelineResult:
    """Rebuild a :class:`PipelineResult` from a persisted payload.

    Refuses (loudly) when the payload was computed by a differently
    configured matcher, against a different repository version, or for
    a different query list — the same checks ``rematch`` runs, applied
    at load time so stale state can never masquerade as warm state.
    Answer sets are reassembled via :meth:`Matcher.assemble` from the
    restored pair results: byte-identical to the original run.
    """
    state = json.loads(payload)
    recorded = state.get("matcher_fingerprint")
    live = matcher_fingerprint(matcher)
    if recorded != live:
        raise SnapshotError(
            "results snapshot was computed by a differently configured "
            f"matcher:\n  saved  {recorded}\n  loaded {live}"
        )
    if state.get("repository_digest") != repository.content_digest():
        raise SnapshotError(
            "results snapshot was computed against a different repository "
            "version (content digests differ)"
        )
    query_digests = tuple(state.get("query_digests", []))
    if query_digests != tuple(query.content_digest() for query in queries):
        raise SnapshotError(
            "results snapshot was computed for a different query list "
            "(content digests differ)"
        )
    pair_results = [
        {
            schema_id: [(tuple(ids), score) for ids, score in pairs]
            for schema_id, pairs in by_schema.items()
        }
        for by_schema in state["pair_results"]
    ]
    if len(pair_results) != len(queries):
        raise SnapshotError(
            f"results snapshot retains {len(pair_results)} queries' pair "
            f"results for {len(queries)} recorded queries"
        )
    delta_max = state["delta_max"]
    answer_sets = [
        matcher.assemble(query, repository, by_schema, delta_max)
        for query, by_schema in zip(queries, pair_results)
    ]
    stats = PipelineStats(workers=0, shards=0, queries=len(queries))
    return PipelineResult(
        answer_sets=answer_sets,
        stats=stats,
        pair_results=pair_results,
        repository_digest=state["repository_digest"],
        query_digests=query_digests,
        matcher_key=recorded,
        delta_max=delta_max,
    )


# ---------------------------------------------------------------------------
# Whole snapshots
# ---------------------------------------------------------------------------

@dataclass
class Snapshot:
    """Everything a warm start restores from one snapshot directory."""

    repository: SchemaRepository
    queries: list[Schema]
    result: PipelineResult | None
    matrices_restored: int


def save_snapshot(
    store: SnapshotStore | str | Path,
    repository: SchemaRepository,
    *,
    queries: list[Schema] | None = None,
    result: PipelineResult | None = None,
    substrate: SimilaritySubstrate | None = None,
) -> SnapshotStore:
    """Write one complete snapshot: repository, queries, state sections.

    ``result`` (with its retained pair results) and ``substrate`` are
    optional — a repository-only snapshot is a valid warm start for the
    schemas alone.  When a result is given its identifying digests must
    match ``repository``/``queries``, so a snapshot can never pair a
    repository version with results computed against another.
    """
    if not isinstance(store, SnapshotStore):
        store = SnapshotStore(store)
    queries = list(queries or [])
    meta: dict = {
        "repository": SnapshotStore.repository_meta(repository),
        "queries": SnapshotStore.query_meta(queries),
    }
    sections = SnapshotStore.schema_sections(repository.schemas() + queries)
    if result is not None:
        if result.repository_digest != repository.content_digest():
            raise SnapshotError(
                "result to snapshot was not computed against the given "
                "repository (content digests differ)"
            )
        if result.query_digests != tuple(
            query.content_digest() for query in queries
        ):
            raise SnapshotError(
                "result to snapshot was not computed for the given query "
                "list (content digests differ)"
            )
        meta["matcher_fingerprint"] = result.matcher_key
        meta["delta_max"] = result.delta_max
        payload = results_payload(result)
        meta[_RESULTS_KEY] = _digest_named("results", payload)
        sections[meta[_RESULTS_KEY]] = payload
    if substrate is not None:
        meta["objective_fingerprint"] = substrate.objective.fingerprint()
        payload = substrate_payload(substrate)
        meta[_SUBSTRATE_KEY] = _digest_named("substrate", payload)
        sections[meta[_SUBSTRATE_KEY]] = payload
    store.save(meta, sections)
    return store


def load_snapshot(
    store: SnapshotStore | str | Path,
    matcher: Matcher,
) -> Snapshot:
    """Warm-start state from a snapshot directory, fully verified.

    Loads the repository and retained queries (digest-addressed,
    integrity-checked), adopts the persisted substrate into
    ``matcher.objective.substrate()`` when present, and rebuilds the
    retained :class:`PipelineResult` when present.  Every mismatch —
    corruption, format drift, foreign payloads, stale objective/matcher
    fingerprints — raises :class:`~repro.errors.SnapshotError`; there is
    no silent fallback to a cold start.
    """
    if not isinstance(store, SnapshotStore):
        store = SnapshotStore(store)
    manifest = store.manifest()
    repository = store.load_repository(manifest)
    queries = store.load_queries(manifest)
    matrices_restored = 0
    substrate_section = manifest.get(_SUBSTRATE_KEY)
    if substrate_section is not None:
        matrices_restored = restore_substrate(
            matcher.objective.substrate(),
            store.read_section(substrate_section, manifest),
            repository,
        )
    result = None
    results_section = manifest.get(_RESULTS_KEY)
    if results_section is not None:
        result = restore_results(
            matcher,
            queries,
            repository,
            store.read_section(results_section, manifest),
        )
    return Snapshot(
        repository=repository,
        queries=queries,
        result=result,
        matrices_restored=matrices_restored,
    )

"""The similarity substrate: precomputed score matrices + token index.

The paper's premise is that matching is the expensive part ("exhaustive
search of schema mappings needs exponential time") while the bounds math
is free — yet recomputing the per-element cost of every (query element,
target element) pair on every search construction multiplies that
expense across matchers, thresholds and pipeline shards.  This module
materialises the pairwise similarity work **once** and shares it:

* :class:`ScoreMatrix` — for one (query, schema) pair under one
  :class:`~repro.matching.objective.ObjectiveFunction`, the full exact
  per-element cost matrix, each row's cost-sorted candidate order, and
  the per-element minima / suffix sums the branch-and-bound admissible
  bound reads directly.
* :class:`TokenIndex` — an inverted token index over repository element
  labels, built once per repository and cached by content digest.  It
  groups identically-labelled elements, so a matrix column (and row) is
  computed once per *distinct* (label, datatype) instead of once per
  element, and exposes token-posting lookups for diagnostics.
  Rebuilds after repository evolution are **schema-granular**: per-schema
  entries are reused for every schema whose content digest is unchanged,
  so a delta re-indexes only what it touched.
* :class:`SimilaritySubstrate` — the per-objective cache tying the two
  together, keyed by schema *content* digests (like the pipeline's
  candidate cache), so workload rebuilds and repository shards share
  entries instead of recomputing them.  It also owns the repository
  scoring kernel (:class:`~repro.matching.similarity.kernel.CostKernel`),
  which collapses cost computation further — one cost per distinct
  (normalised label, datatype) pair per *repository* — and turns
  :meth:`ScoreMatrix.build` into a gather over interned rows.

Exactness
---------
The substrate never changes an answer set.  Matrix entries are produced
by the very same :meth:`ObjectiveFunction.element_cost` calls the
direct path makes, so they are bit-identical floats; candidate orders
use the same ``(cost, target_id)`` sort key as the engine.  The
threshold-driven candidate pruning the engine layers on top
(:meth:`~repro.matching.engine.SchemaSearch`) only drops a pair
``(i, j)`` when the certified lower bound of *any* complete mapping
assigning query element ``i`` to target ``j`` —

    (1 − sw)/k · (cost[i][j] + Σ_{i' ≠ i} min_j' cost[i'][j'])

(structure violations can only add to it) — already exceeds the
threshold cutoff, i.e. exactly the pairs the branch-and-bound's own
admissible bound would refuse to expand.  The property suite
(``tests/properties/test_prop_substrate.py``) asserts byte-identical
answer sets with the substrate on vs. off for every matcher across a
threshold sweep.

The substrate can be switched off process-wide (for A/B tests and the
property suite) with :func:`set_substrate_enabled` or the
:func:`substrate_disabled` context manager.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import MatchingError
from repro.matching.similarity import vectors
from repro.matching.similarity.kernel import CostKernel, kernel_enabled
from repro.schema.model import Schema
from repro.schema.repository import ElementHandle, SchemaRepository
from repro.util.text import tokenize_label

__all__ = [
    "ScoreMatrix",
    "SimilaritySubstrate",
    "SubstrateStats",
    "TokenIndex",
    "set_substrate_enabled",
    "substrate_disabled",
    "substrate_enabled",
    "suffix_cost_sums",
]

#: (label, datatype) groups: representative element id -> all ids sharing
#: the representative's exact label and datatype, in pre-order
LabelGroups = tuple[tuple[int, tuple[int, ...]], ...]

_ENABLED = True


def substrate_enabled() -> bool:
    """Whether matchers route similarity work through the substrate."""
    return _ENABLED


def set_substrate_enabled(enabled: bool) -> bool:
    """Set the process-wide substrate switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def substrate_disabled() -> Iterator[None]:
    """Run a block with the substrate off (the pre-substrate code path)."""
    previous = set_substrate_enabled(False)
    try:
        yield
    finally:
        set_substrate_enabled(previous)


def suffix_cost_sums(row_minima) -> tuple[float, ...]:
    """``out[i] = Σ row_minima[i:]``, accumulated last row to first.

    The admissible bound's "optimistic completion" term.  This is the
    *single* definition of the accumulation order: :class:`ScoreMatrix`,
    the engine's search context and the incremental re-match skip bound
    all sum through here, so their floats are bit-identical by
    construction — byte-identity of pruning decisions depends on it.
    Returns length ``len(row_minima) + 1`` (the trailing 0.0 included).

    With the numpy path on, long inputs accumulate through
    :func:`~repro.matching.similarity.vectors.suffix_sums` — a strict
    sequential ``cumsum`` fold over the reversed minima, the identical
    float chain of the loop below (the loop stays as the executable
    spec, and is still what short inputs run).
    """
    if (
        len(row_minima) >= vectors.VECTOR_MIN
        and vectors.numpy_enabled()
    ):
        return vectors.suffix_sums(row_minima)
    out = [0.0] * (len(row_minima) + 1)
    for i in range(len(row_minima) - 1, -1, -1):
        out[i] = out[i + 1] + row_minima[i]
    return tuple(out)


def _candidate_order(row) -> tuple[int, ...]:
    """Target ids of one cost row, sorted by the engine's ``(cost, id)``.

    The candidate-order sort of the direct (kernel-less) build and the
    snapshot restore path.  On the numpy path this is one stable argsort
    — equal costs keep ascending position, which for a row indexed by
    target id *is* the ``(cost, id)`` tie-break — so both forms return
    the identical tuple.
    """
    if len(row) >= vectors.VECTOR_MIN and vectors.numpy_enabled():
        return tuple(vectors.stable_order(row).tolist())
    return tuple(j for _, j in sorted(zip(row, range(len(row)))))


def _label_groups(schema: Schema) -> LabelGroups:
    """Element ids grouped by exact (label, datatype), pre-order within."""
    groups: dict[tuple[str, object], list[int]] = {}
    for element_id, element in enumerate(schema.elements()):
        groups.setdefault((element.name, element.datatype), []).append(element_id)
    return tuple(
        (members[0], tuple(members)) for members in groups.values()
    )


@dataclass(frozen=True)
class _SchemaIndexEntry:
    """Everything the index derives from one schema, digest-guarded.

    Self-contained per schema, so an entry survives repository evolution
    unchanged as long as the schema's content digest does — the reuse
    unit of :meth:`TokenIndex.__init__`'s ``previous`` fast path.
    """

    digest: str
    groups: LabelGroups
    #: token -> (schema_id, element_id) keys contributed by this schema
    postings: tuple[tuple[str, tuple[tuple[str, int], ...]], ...]


def _index_schema(schema: Schema) -> _SchemaIndexEntry:
    """Derive one schema's index entry (groups + token postings)."""
    groups = _label_groups(schema)
    postings: dict[str, list[tuple[str, int]]] = {}
    for representative, members in groups:
        element = schema.element(representative)
        keys = [(schema.schema_id, member) for member in members]
        for token in tokenize_label(element.name):
            postings.setdefault(token, []).extend(keys)
    return _SchemaIndexEntry(
        digest=schema.content_digest(),
        groups=groups,
        postings=tuple(
            (token, tuple(keys)) for token, keys in postings.items()
        ),
    )


class TokenIndex:
    """Inverted token index over one repository's element labels.

    Built once per repository (cache it by
    :meth:`~repro.schema.repository.SchemaRepository.content_digest`;
    :class:`SimilaritySubstrate` does).  Two roles:

    * **label compaction** — :meth:`column_groups` returns each schema's
      elements grouped by exact (label, datatype), which lets
      :meth:`ScoreMatrix.build` compute one cost per distinct label pair
      and broadcast it over duplicates;
    * **token postings** — :meth:`elements_with_token` /
      :meth:`candidate_keys` answer "which repository elements share a
      word token with this label", the inverted-index primitive behind
      candidate diagnostics and future lexical pre-filters.

    Invalidation is **schema-granular**: passing the previous version's
    index as ``previous`` reuses every per-schema entry whose content
    digest is unchanged (grouping and tokenisation are skipped; only the
    cheap global postings merge re-runs), so re-indexing after a
    repository delta costs proportionally to the schemas the delta
    actually changed.  ``reused_schemas`` records how many entries the
    fast path carried over.
    """

    def __init__(
        self,
        repository: SchemaRepository,
        previous: "TokenIndex | dict[str, _SchemaIndexEntry] | None" = None,
    ):
        self.repository_digest = repository.content_digest()
        if previous is None:
            prior: dict[str, _SchemaIndexEntry] = {}
        elif isinstance(previous, TokenIndex):
            prior = previous._entries
        else:  # a bare entry mapping (the persistence restore path)
            prior = dict(previous)
        entries: dict[str, _SchemaIndexEntry] = {}
        reused = 0
        for schema in repository:
            entry = prior.get(schema.schema_id)
            if entry is not None and entry.digest == schema.content_digest():
                reused += 1
            else:
                entry = _index_schema(schema)
            entries[schema.schema_id] = entry
        postings: dict[str, set[tuple[str, int]]] = {}
        for entry in entries.values():
            for token, keys in entry.postings:
                postings.setdefault(token, set()).update(keys)
        self._postings: dict[str, frozenset[tuple[str, int]]] = {
            token: frozenset(keys) for token, keys in postings.items()
        }
        self._entries = entries
        self.distinct_labels = sum(
            len(entry.groups) for entry in entries.values()
        )
        self.reused_schemas = reused

    def __len__(self) -> int:
        return len(self._postings)

    def tokens(self) -> list[str]:
        """All indexed tokens, sorted."""
        return sorted(self._postings)

    def elements_with_token(self, token: str) -> frozenset[tuple[str, int]]:
        """``(schema_id, element_id)`` keys of elements containing ``token``."""
        return self._postings.get(token, frozenset())

    def candidate_keys(self, label: str) -> frozenset[tuple[str, int]]:
        """Elements sharing at least one normalised token with ``label``."""
        keys: set[tuple[str, int]] = set()
        for token in tokenize_label(label):
            keys |= self._postings.get(token, frozenset())
        return frozenset(keys)

    def export_state(self) -> list[dict]:
        """JSON-able per-schema entries, for snapshot persistence.

        The inverse of :meth:`from_state`; see
        :mod:`repro.matching.similarity.persist`.
        """
        return [
            {
                "schema_id": schema_id,
                "digest": entry.digest,
                "groups": [
                    [representative, list(members)]
                    for representative, members in entry.groups
                ],
                "postings": [
                    [token, [list(key) for key in keys]]
                    for token, keys in entry.postings
                ],
            }
            for schema_id, entry in self._entries.items()
        ]

    @classmethod
    def from_state(
        cls, repository: SchemaRepository, state: list[dict]
    ) -> "TokenIndex":
        """Rebuild an index from :meth:`export_state` output.

        Every restored entry is digest-guarded against the live
        repository by the constructor's reuse path, so an entry saved
        for different schema content is re-derived rather than trusted;
        only the cheap global postings merge runs either way.
        """
        entries = {
            item["schema_id"]: _SchemaIndexEntry(
                digest=item["digest"],
                groups=tuple(
                    (representative, tuple(members))
                    for representative, members in item["groups"]
                ),
                postings=tuple(
                    (token, tuple((key[0], key[1]) for key in keys))
                    for token, keys in item["postings"]
                ),
            )
            for item in state
        }
        return cls(repository, previous=entries)

    def column_groups(self, schema: Schema) -> LabelGroups | None:
        """Distinct-label groups for ``schema``, or ``None`` if unknown.

        Guarded by content digest: a schema whose id is indexed but whose
        content differs (synthetic workloads reuse ids across seeds) gets
        ``None`` rather than stale groups.
        """
        entry = self._entries.get(schema.schema_id)
        if entry is None or entry.digest != schema.content_digest():
            return None
        return entry.groups


class ScoreMatrix:
    """Exact per-element cost matrix of one (query, schema) pair.

    ``costs[i][j]`` is precisely
    :meth:`ObjectiveFunction.element_cost(query.element(i),
    ElementHandle(schema, j))` — same calls, bit-identical floats.
    Derived fields feed the engine's admissible bound without per-search
    rework:

    * ``candidate_order[i]`` — target ids sorted by ``(cost, id)``, the
      engine's expansion order;
    * ``row_min[i]`` — cheapest cost of query element ``i``;
    * ``min_rest[i]`` — ``Σ row_min[i:]`` (suffix sums, length k+1), the
      bound's "optimistic completion" term.
    """

    __slots__ = ("query_digest", "schema_digest", "costs", "candidate_order",
                 "row_min", "min_rest", "_np_costs", "_np_orders",
                 "_np_sorted")

    def __init__(
        self,
        query_digest: str,
        schema_digest: str,
        costs: tuple[tuple[float, ...], ...],
        candidate_order: tuple[tuple[int, ...], ...],
    ):
        self.query_digest = query_digest
        self.schema_digest = schema_digest
        self.costs = costs
        self.candidate_order = candidate_order
        self.row_min = tuple(min(row) for row in costs)
        self.min_rest = suffix_cost_sums(self.row_min)
        self._np_costs = None
        self._np_orders = None
        self._np_sorted = None

    def np_costs(self):
        """2-D float64 ndarray of ``costs`` (vector path), else ``None``.

        Built on first request and cached on the matrix, so the
        conversion amortises across every search the substrate's LRU
        serves from this matrix.  ``None`` whenever the numpy path is
        off — callers fall back to the tuple spec unconditionally.
        """
        if not vectors.numpy_enabled():
            return None
        if self._np_costs is None:
            np = vectors._np
            if self.costs and self.costs[0]:
                self._np_costs = np.asarray(self.costs, dtype=np.float64)
            else:
                self._np_costs = np.zeros(
                    (len(self.costs), 0), dtype=np.float64
                )
        return self._np_costs

    def np_orders(self):
        """2-D intp ndarray of ``candidate_order``, else ``None`` (as above)."""
        if not vectors.numpy_enabled():
            return None
        if self._np_orders is None:
            np = vectors._np
            if self.candidate_order and self.candidate_order[0]:
                self._np_orders = np.asarray(
                    self.candidate_order, dtype=np.intp
                )
            else:
                self._np_orders = np.zeros(
                    (len(self.candidate_order), 0), dtype=np.intp
                )
        return self._np_orders

    def np_sorted_costs(self):
        """``costs`` gathered into candidate order (row i follows
        ``candidate_order[i]``), cached like the other ndarray views —
        what the engine's batched static trim broadcasts over.  ``None``
        whenever the numpy path is off.
        """
        if not vectors.numpy_enabled():
            return None
        if self._np_sorted is None:
            np = vectors._np
            self._np_sorted = np.take_along_axis(
                self.np_costs(), self.np_orders(), axis=1
            )
        return self._np_sorted

    def __getstate__(self):
        # pickle only the defining fields: derived minima/suffix sums
        # recompute identically, and the lazy ndarray views would bloat
        # worker payloads for state that rebuilds in microseconds
        return (
            self.query_digest,
            self.schema_digest,
            self.costs,
            self.candidate_order,
        )

    def __setstate__(self, state):
        self.__init__(*state)

    @property
    def query_size(self) -> int:
        return len(self.costs)

    @property
    def schema_size(self) -> int:
        return len(self.costs[0]) if self.costs else 0

    @classmethod
    def build(
        cls,
        objective,
        query: Schema,
        schema: Schema,
        column_groups: LabelGroups | None = None,
        kernel: CostKernel | None = None,
    ) -> "ScoreMatrix":
        """Compute the matrix, one cost per distinct (label, datatype) pair.

        With a ``kernel``
        (:class:`~repro.matching.similarity.kernel.CostKernel`) that
        knows the schema's content, the matrix is a pure **gather**: each
        distinct query row indexes the kernel's precomputed cost row with
        the schema's interned label ids and evaluates no similarity at
        all — the costs are the bit-identical floats of the direct path,
        because kernel entries come from the same
        :meth:`~repro.matching.objective.ObjectiveFunction.label_cost`
        expression.

        Without one, ``column_groups`` (from
        :meth:`TokenIndex.column_groups`) skips re-deriving the schema's
        label groups and one cost is computed per distinct (label,
        datatype) pair of this (query, schema) pair.  Either way,
        candidate orders sort ``(cost, id)`` pairs directly (no per-id
        key calls), duplicate rows/columns alias the same tuples, and
        repetitive repositories cost proportionally to their *distinct*
        label surface.
        """
        row_groups = _label_groups(query)
        size = len(schema)
        rows: list[tuple[float, ...] | None] = [None] * len(query)
        orders: list[tuple[int, ...] | None] = [None] * len(query)
        use_kernel = (
            kernel is not None and kernel.schema_label_ids(schema) is not None
        )
        if not use_kernel and column_groups is None:
            column_groups = _label_groups(schema)
        for representative, members in row_groups:
            element = query.element(representative)
            if use_kernel:
                frozen, order = kernel.gather(
                    element.name, element.datatype, schema
                )
            else:
                row = [0.0] * size
                for column_rep, column_members in column_groups:
                    cost = objective.element_cost(
                        element, ElementHandle(schema, column_rep)
                    )
                    for j in column_members:
                        row[j] = cost
                frozen = tuple(row)
                order = _candidate_order(frozen)
            for i in members:
                rows[i] = frozen
                orders[i] = order
        return cls(
            query.content_digest(),
            schema.content_digest(),
            tuple(rows),  # type: ignore[arg-type]
            tuple(orders),  # type: ignore[arg-type]
        )

    @classmethod
    def restore(
        cls,
        query_digest: str,
        schema_digest: str,
        costs,
    ) -> "ScoreMatrix":
        """Rebuild a matrix from persisted costs alone.

        Candidate orders, row minima and suffix sums are *derived* from
        the costs with the same ``(cost, id)`` sort key and the shared
        :func:`suffix_cost_sums` accumulation :meth:`build` uses, so a
        restored matrix is indistinguishable from a freshly built one as
        long as the persisted floats round-tripped exactly (JSON via
        ``repr`` does).  Duplicate rows alias one tuple/order pair, like
        :meth:`build`'s label grouping: restore cost stays proportional
        to the *distinct* row surface.
        """
        frozen_rows: dict[tuple[float, ...], tuple[float, ...]] = {}
        orders_by_row: dict[tuple[float, ...], tuple[int, ...]] = {}
        rows = []
        orders = []
        for row in costs:
            key = tuple(row)
            shared = frozen_rows.get(key)
            if shared is None:
                shared = key
                frozen_rows[key] = shared
                orders_by_row[key] = _candidate_order(key)
            rows.append(shared)
            orders.append(orders_by_row[key])
        return cls(query_digest, schema_digest, tuple(rows), tuple(orders))


@dataclass
class SubstrateStats:
    """Hit/build counters of one :class:`SimilaritySubstrate`."""

    matrices_built: int = 0
    matrix_hits: int = 0
    matrix_evictions: int = 0
    index_builds: int = 0
    #: per-schema index entries carried over across repository versions
    #: (schema-granular invalidation; see :meth:`TokenIndex.__init__`)
    index_schema_reuses: int = 0
    #: repository cost-kernel (re)builds (see
    #: :class:`~repro.matching.similarity.kernel.CostKernel`)
    kernel_builds: int = 0
    #: kernel rows carried across repository versions by migration
    kernel_rows_migrated: int = 0

    @property
    def matrix_lookups(self) -> int:
        return self.matrices_built + self.matrix_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of matrix lookups served from cache (0 when unused)."""
        return self.matrix_hits / self.matrix_lookups if self.matrix_lookups else 0.0


class SimilaritySubstrate:
    """Per-objective cache of :class:`ScoreMatrix` / :class:`TokenIndex`.

    One substrate hangs off each :class:`ObjectiveFunction`
    (:meth:`~repro.matching.objective.ObjectiveFunction.substrate`), so
    every matcher built against a shared objective — the bounds
    technique's precondition — also shares the precomputed similarity
    work, across matchers, thresholds, repeated sweeps and pipeline
    shards.  Keys are schema *content* digests: rebuilding an identical
    workload from the same seeds hits, changing one element name misses.

    ``max_matrices`` bounds the matrix cache (LRU, entries).  The
    substrate is not thread-safe; like the candidate cache it is only
    touched from one process at a time (workers each carry their own
    pickled copy, pre-warmed with whatever the coordinator had built).
    """

    def __init__(self, objective, max_matrices: int = 16384):
        if max_matrices < 1:
            raise MatchingError(
                f"max_matrices must be >= 1, got {max_matrices!r}"
            )
        self.objective = objective
        self.max_matrices = max_matrices
        self.stats = SubstrateStats()
        self._matrices: OrderedDict[tuple[str, str], ScoreMatrix] = OrderedDict()
        self._index: TokenIndex | None = None
        self._kernel: CostKernel | None = None

    def __len__(self) -> int:
        return len(self._matrices)

    def prepare(self, repository: SchemaRepository) -> TokenIndex:
        """Build (or reuse) the repository's token index; idempotent.

        Matchers call this from their
        :meth:`~repro.matching.base.Matcher.prepare` hook — once per
        repository, before any query runs, and in the pipeline before
        sharding, so shards never rebuild it.

        When the repository digest differs from the indexed one — the
        repository evolved — the rebuild is **incremental**: per-schema
        entries of the previous index are reused for every schema whose
        content digest is unchanged, so a delta's re-indexing cost is
        proportional to the schemas it changed, not the repository size.
        (Score matrices need no such treatment: they are keyed by schema
        content digests already, so matrices of untouched schemas keep
        hitting across versions.)
        """
        digest = repository.content_digest()
        if self._index is None or self._index.repository_digest != digest:
            self._index = TokenIndex(repository, previous=self._index)
            self.stats.index_builds += 1
            self.stats.index_schema_reuses += self._index.reused_schemas
        objective = self.objective
        if getattr(objective, "corpus_sensitive", False):
            # Corpus-sensitive backends (docs/backends.md) score through
            # repository-wide statistics; freeze them against this
            # repository (idempotent per content digest) and drop every
            # cached score computed under the previous statistics — the
            # matrix cache is keyed by schema content digests alone, so
            # it cannot tell two corpora apart by itself.
            before = objective.corpus_token()
            objective.prepare_corpus(repository, self._index)
            if objective.corpus_token() != before:
                self._matrices.clear()
                self._kernel = None
        if kernel_enabled() and (
            self._kernel is None or self._kernel.repository_digest != digest
        ):
            self._kernel = CostKernel(
                self.objective, repository, previous=self._kernel
            )
            self.stats.kernel_builds += 1
            self.stats.kernel_rows_migrated += self._kernel.rows_migrated
        return self._index

    def token_index(self) -> TokenIndex | None:
        """The prepared repository index, or ``None`` before ``prepare``."""
        return self._index

    def kernel(self) -> CostKernel | None:
        """The repository cost kernel, or ``None`` before ``prepare``.

        Also ``None`` while the process-wide kernel switch
        (:func:`~repro.matching.similarity.kernel.kernel_enabled`) is
        off — matrices then build through the pre-kernel path.
        """
        return self._kernel if kernel_enabled() else None

    def cached_matrices(self) -> list[ScoreMatrix]:
        """All cached matrices, least recently used first (for snapshots)."""
        return list(self._matrices.values())

    def adopt(
        self,
        index: TokenIndex | None,
        matrices: Iterator[ScoreMatrix] | list[ScoreMatrix] = (),
        kernel: CostKernel | None = None,
    ) -> None:
        """Install restored state — the warm-start path of a snapshot load.

        ``index`` (if given) replaces the prepared token index;
        ``kernel`` (if given) replaces the repository cost kernel;
        ``matrices`` are inserted under their own digest keys, evicting
        LRU entries past ``max_matrices`` exactly like :meth:`matrix`
        does.  Counters keep running; adopted entries are not counted as
        builds.
        """
        if index is not None:
            self._index = index
        if kernel is not None:
            self._kernel = kernel
        for matrix in matrices:
            key = (matrix.query_digest, matrix.schema_digest)
            self._matrices[key] = matrix
            self._matrices.move_to_end(key)
            while len(self._matrices) > self.max_matrices:
                self._matrices.popitem(last=False)
                self.stats.matrix_evictions += 1

    def matrix(self, query: Schema, schema: Schema) -> ScoreMatrix:
        """The (query, schema) score matrix, built on first use."""
        key = (query.content_digest(), schema.content_digest())
        cached = self._matrices.get(key)
        if cached is not None:
            self._matrices.move_to_end(key)
            self.stats.matrix_hits += 1
            return cached
        kernel = self._kernel if kernel_enabled() else None
        column_groups = None
        if kernel is None or kernel.schema_label_ids(schema) is None:
            column_groups = (
                self._index.column_groups(schema) if self._index is not None else None
            )
        built = ScoreMatrix.build(
            self.objective, query, schema,
            column_groups=column_groups, kernel=kernel,
        )
        self._matrices[key] = built
        self.stats.matrices_built += 1
        while len(self._matrices) > self.max_matrices:
            self._matrices.popitem(last=False)
            self.stats.matrix_evictions += 1
        return built

    def clear(self) -> None:
        """Drop matrices, the index and the kernel (counters keep running)."""
        self._matrices.clear()
        self._index = None
        self._kernel = None

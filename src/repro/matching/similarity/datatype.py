"""Datatype compatibility penalties.

A small symmetric penalty matrix over the coarse
:class:`~repro.schema.model.Datatype` set: identical types cost nothing,
related families little, leaf-vs-container a lot.  The numbers follow the
usual matcher intuition (COMA's datatype similarity tables) rather than
any formal semantics — their only role is to make the objective function
prefer type-plausible mappings.
"""

from __future__ import annotations

from repro.schema.model import Datatype

__all__ = ["datatype_penalty"]

_NUMERIC = frozenset({Datatype.INTEGER, Datatype.DECIMAL})
_TEXTUAL = frozenset({Datatype.STRING, Datatype.IDENTIFIER})

# Each unordered pair is listed once; frozenset keys make the lookup
# direction-independent.
_SPECIAL: dict[frozenset[Datatype], float] = {
    frozenset({Datatype.INTEGER, Datatype.DECIMAL}): 0.10,
    frozenset({Datatype.STRING, Datatype.IDENTIFIER}): 0.20,
    frozenset({Datatype.STRING, Datatype.DATE}): 0.35,
    frozenset({Datatype.IDENTIFIER, Datatype.INTEGER}): 0.30,
    frozenset({Datatype.STRING, Datatype.INTEGER}): 0.40,
    frozenset({Datatype.STRING, Datatype.DECIMAL}): 0.40,
    frozenset({Datatype.STRING, Datatype.BOOLEAN}): 0.45,
}

_CONTAINER_LEAF_PENALTY = 0.80
_DEFAULT_PENALTY = 0.50


def datatype_penalty(a: Datatype, b: Datatype) -> float:
    """Penalty in [0, 1] for mapping an element of type ``a`` onto ``b``.

    0 means fully compatible; 1 would mean impossible (never returned —
    matchers stay soft, the objective threshold does the cutting).
    """
    if a is b:
        return 0.0
    pair = frozenset({a, b})
    special = _SPECIAL.get(pair)
    if special is not None:
        return special
    if Datatype.COMPLEX in pair:
        return _CONTAINER_LEAF_PENALTY
    return _DEFAULT_PENALTY

"""Structural similarity of mappings: ancestry preservation.

The authors' constraint-optimisation formulation treats a personal schema
as a tree pattern to be embedded in a repository schema.  The soft
structural criterion used here: for every parent/child edge of the query
schema, the target of the parent should be a *proper ancestor* of the
target of the child (intermediate elements are allowed, as in tree
embedding).  The objective charges the fraction of violated edges.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import MatchingError
from repro.schema.model import Schema

__all__ = ["query_edges", "ancestry_violations"]


def query_edges(query: Schema) -> list[tuple[int, int]]:
    """(parent_id, child_id) pairs of the query schema, in pre-order."""
    edges = []
    for element_id in range(len(query)):
        parent = query.parent_id(element_id)
        if parent is not None:
            edges.append((parent, element_id))
    return edges


def ancestry_violations(
    query: Schema, target_schema: Schema, target_ids: Sequence[int]
) -> tuple[int, int]:
    """Count violated query edges under a (possibly partial) assignment.

    ``target_ids[i]`` is the target of query element ``i`` or ``None``
    for still-unassigned elements (partial mappings during search).
    Returns ``(violations, decided_edges)`` where only edges with both
    endpoints assigned are decided — the basis of the admissible
    branch-and-bound lower bound (violations can only grow).
    """
    if len(target_ids) != len(query):
        raise MatchingError(
            f"assignment has {len(target_ids)} entries for a query of size "
            f"{len(query)}"
        )
    violations = 0
    decided = 0
    for parent_id, child_id in query_edges(query):
        target_parent = target_ids[parent_id]
        target_child = target_ids[child_id]
        if target_parent is None or target_child is None:
            continue
        decided += 1
        if not target_schema.is_ancestor(target_parent, target_child):
            violations += 1
    return violations, decided

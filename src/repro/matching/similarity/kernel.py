"""The repository-scoped scoring kernel: interned label-universe costs.

Every system the paper compares — exhaustive or not — scores mappings
through one shared objective, so the per-element cost computation is the
innermost loop under every benchmark (substrate sweeps, evolution
replays, serving).  The :class:`~repro.matching.similarity.matrix
.ScoreMatrix` already collapsed that work to one cost per distinct
(label, datatype) pair **per (query, schema) pair**; this module
collapses it further, to one cost per distinct pair **per repository**:

* the **label universe** — repositories repeat a small distinct-label
  surface (the :class:`~repro.matching.similarity.matrix.TokenIndex`'s
  ``distinct_labels`` counter proves it), so the kernel interns every
  distinct ``(normalised label, datatype)`` the repository contains into
  a dense integer id, and records, per schema content digest, the label
  id of each element;
* **kernel rows** — for each distinct ``(normalised query label,
  datatype)``, one flat ``array('d')`` of costs against the whole
  universe, computed exactly once via
  :meth:`~repro.matching.objective.ObjectiveFunction.label_cost`;
* **matrix gather** — :meth:`ScoreMatrix.build` then fills a (query,
  schema) matrix by *indexing* kernel rows with the schema's label ids
  instead of evaluating any similarity at all.

Exactness
---------
Kernel entries are produced by the very same
:meth:`~repro.matching.objective.ObjectiveFunction.label_cost`
expression the direct path evaluates, on the normalised labels the name
similarity is memoised on — every component of the similarity score is a
pure, symmetric function of the normalised labels
(:class:`~repro.matching.similarity.name.NameSimilarity`), so a gathered
cost is the bit-identical float of the per-pair computation.  The
property suite (``tests/properties/test_prop_kernel.py``) asserts
byte-identical answer sets with the kernel on vs. off for every matcher
across threshold sweeps and evolving-repository delta streams.

Evolution and persistence
-------------------------
Rebuilding after a repository delta passes the previous kernel as
``previous``: rows are **migrated** — entries for universe labels that
survived the delta are copied (cost is a pure function of the label
pair, so copying is exact), only entries against genuinely new labels
are computed.  The kernel also exports/imports plain-data state
(:meth:`CostKernel.export_state` / :meth:`CostKernel.from_state`), which
the snapshot substrate payload persists so a warm-started service skips
the recompute entirely (:mod:`repro.matching.similarity.persist`).

The kernel can be switched off process-wide (for A/B tests and the
property suite) with :func:`set_kernel_enabled` or the
:func:`kernel_disabled` context manager; disabled, matrices build
through the per-(query, schema) distinct-label path of PR 2.

Vectorised gathers
------------------
With the numpy execution path on
(:func:`~repro.matching.similarity.vectors.numpy_enabled`), the kernel
additionally keeps the schema label-id maps stacked into one padded 2-D
``ndarray``, and the first gather of a query label fancy-indexes its
cost row through that stack and batch-argsorts **every schema's**
candidate order in two vector ops, prefilling the gather cache for the
whole repository at once.  The cached values are the same python tuples
the spec path builds (``tolist`` round-trips float64 exactly; stable
argsort ties break by ascending id exactly like the ``(cost, id)``
sort), so everything downstream is byte-identical either way — the
property suite (``tests/properties/test_prop_numpy.py``) pins it down.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterator
from contextlib import contextmanager

from repro.errors import SnapshotError
from repro.matching.similarity import vectors
from repro.schema.model import Datatype, Schema
from repro.schema.repository import SchemaRepository
from repro.util.caching import fifo_put
from repro.util.text import normalise_label

__all__ = [
    "CostKernel",
    "kernel_disabled",
    "kernel_enabled",
    "set_kernel_enabled",
]

#: one interned universe entry: (normalised label, datatype)
LabelKey = tuple[str, Datatype]

_ENABLED = True


def kernel_enabled() -> bool:
    """Whether score matrices gather from the repository cost kernel."""
    return _ENABLED


def set_kernel_enabled(enabled: bool) -> bool:
    """Set the process-wide kernel switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def kernel_disabled() -> Iterator[None]:
    """Run a block with the kernel off (the pre-kernel scoring path)."""
    previous = set_kernel_enabled(False)
    try:
        yield
    finally:
        set_kernel_enabled(previous)


class CostKernel:
    """Interned per-repository cost rows for one objective function.

    Built once per repository version (the substrate's
    :meth:`~repro.matching.similarity.matrix.SimilaritySubstrate.prepare`
    does, and shard workers inherit it through the one-shot state
    install).  ``previous`` migrates the prior version's rows across a
    repository delta — copied where the universe label survived,
    computed only against new labels.

    The kernel never hands out costs directly; its consumer is
    :meth:`~repro.matching.similarity.matrix.ScoreMatrix.build`, which
    gathers :meth:`row` buffers through :meth:`schema_label_ids`.
    """

    __slots__ = (
        "objective",
        "repository_digest",
        "corpus_token",
        "_labels",
        "_intern",
        "_schema_lids",
        "_rows",
        "_norms",
        "_gathers",
        "_vgathers",
        "_vindex",
        "rows_built",
        "rows_migrated",
    )

    #: bound on the derived (query label, schema) gather cache; entries
    #: re-derive from the rows in microseconds, so eviction only caps
    #: memory in long-lived services
    MAX_GATHERS = 65_536
    #: bound on materialised cost rows (one per distinct query label);
    #: evicted rows re-derive exactly on next use, and the cap also
    #: bounds what a repository delta migrates and a snapshot persists,
    #: so query-label churn cannot grow a long-lived service unboundedly
    MAX_ROWS = 4_096

    def __init__(
        self,
        objective,
        repository: SchemaRepository,
        previous: "CostKernel | None" = None,
    ):
        self.objective = objective
        self.repository_digest = repository.content_digest()
        # Corpus-sensitive backends (docs/backends.md) make label costs
        # depend on repository-wide statistics; the token identifies the
        # statistics these rows were scored under ("" for corpus-free
        # objectives), and migration refuses rows from another corpus.
        token = getattr(objective, "corpus_token", None)
        self.corpus_token = token() if callable(token) else ""
        labels: list[LabelKey] = []
        intern: dict[LabelKey, int] = {}
        schema_lids: dict[str, array] = {}
        for schema in repository:
            digest = schema.content_digest()
            if digest in schema_lids:  # duplicated content, one gather map
                continue
            lids = array("L")
            for element in schema.elements():
                key = (normalise_label(element.name), element.datatype)
                lid = intern.get(key)
                if lid is None:
                    lid = len(labels)
                    intern[key] = lid
                    labels.append(key)
                lids.append(lid)
            schema_lids[digest] = lids
        self._labels = labels
        self._intern = intern
        self._schema_lids = schema_lids
        self._rows: dict[LabelKey, array] = {}
        self._norms: dict[str, str] = {}  # raw label -> normalised
        #: (normalised label, datatype, schema digest) -> (costs, order),
        #: the per-(query label, schema) gather with its (cost, id)-sorted
        #: candidate order — both pure functions of the key
        self._gathers: dict[tuple, tuple[tuple, tuple]] = {}
        #: the vector path's two-level gather cache: (normalised label,
        #: datatype) -> {schema digest -> (costs, order)}.  Same values
        #: as ``_gathers`` under a different shape — one whole-repository
        #: bucket per query label, filled by one batched gather, looked
        #: up by interned-string digest (no per-call tuple keys, whose
        #: enum hashing is a python-level call on the hot path)
        self._vgathers: dict[tuple, dict[str, tuple[tuple, tuple]]] = {}
        #: lazy stacked schema-lids index of the vectorised gather path
        #: (:meth:`_vector_index`); None until the first vector gather
        self._vindex = None
        self.rows_built = 0
        self.rows_migrated = 0
        if previous is not None:
            self._migrate(previous)

    def _migrate(self, previous: "CostKernel") -> None:
        """Carry the previous version's rows into this universe.

        Cost is a pure function of the (normalised query label, universe
        label) pair, so entries for labels present in both universes are
        copied byte-for-byte; only entries against labels the delta
        introduced are computed.  Rows are keyed by query label, which
        survives repository evolution, so a long-lived session keeps its
        query-side warmth across every delta.  At most :data:`MAX_ROWS`
        rows carry over — the newest insertions, the same bound
        :meth:`row` enforces — so migration work per delta is capped
        regardless of how many labels a service has ever seen.
        """
        if previous.objective.fingerprint() != self.objective.fingerprint():
            return  # foreign kernel; nothing it holds is trustworthy
        if previous.corpus_token != self.corpus_token:
            # same configuration, different corpus statistics: every
            # carried cost would embed the old repository's frequencies
            return
        label_cost = self.objective.label_cost
        prior_intern = previous._intern
        carried = list(previous._rows.items())[-self.MAX_ROWS:]
        for key, old_row in carried:
            query_label, query_datatype = key
            new_row = array("d", bytes(8 * len(self._labels)))
            for lid, (target_label, target_datatype) in enumerate(self._labels):
                old_lid = prior_intern.get((target_label, target_datatype))
                if old_lid is not None:
                    new_row[lid] = old_row[old_lid]
                else:
                    new_row[lid] = label_cost(
                        query_label, query_datatype, target_label, target_datatype
                    )
            self._rows[key] = new_row
            self.rows_migrated += 1

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def distinct_labels(self) -> int:
        """Size of the interned repository label universe."""
        return len(self._labels)

    @property
    def rows_cached(self) -> int:
        """Distinct query labels with a materialised cost row."""
        return len(self._rows)

    def schema_label_ids(self, schema: Schema) -> array | None:
        """Per-element universe label ids of ``schema``, or ``None``.

        Keyed by schema *content* digest, so any schema object whose
        content the kernel's repository version contains gathers —
        including equal-content schemas from other repository handles —
        and content the kernel has never seen falls back to the direct
        build path rather than indexing a wrong row.
        """
        return self._schema_lids.get(schema.content_digest())

    def _normalise(self, name: str) -> str:
        normalised = self._norms.get(name)
        if normalised is None:
            normalised = normalise_label(name)
            fifo_put(self._norms, name, normalised, self.MAX_GATHERS)
        return normalised

    def row(self, name: str, datatype: Datatype) -> array:
        """The cost row of one query label against the whole universe.

        Computed on first use — once per distinct (normalised label,
        datatype) per repository version — through
        :meth:`ObjectiveFunction.label_cost` on normalised labels, which
        the name similarity memoises on; entries are bit-identical to
        the per-pair path's floats (module docstring).
        """
        key = (self._normalise(name), datatype)
        row = self._rows.get(key)
        if row is None:
            query_label, query_datatype = key
            row = array(
                "d",
                self.objective.label_cost_row(
                    query_label, query_datatype, self._labels
                ),
            )
            fifo_put(self._rows, key, row, self.MAX_ROWS)
            self.rows_built += 1
        return row

    def gather(
        self, name: str, datatype: Datatype, schema: Schema
    ) -> tuple[tuple[float, ...], tuple[int, ...]] | None:
        """One matrix row for ``schema`` plus its candidate order.

        ``None`` when the schema's content is not in this repository
        version (the caller falls back to the direct build).  Both
        halves are pure functions of (normalised label, datatype, schema
        content): costs gather the kernel row through the schema's label
        ids, the order sorts ``(cost, id)`` pairs — the engine's exact
        tie-break — so results are cached per that key and *aliased*
        across every query and matrix that shares the label, bounded by
        :data:`MAX_GATHERS` (insertion-order eviction; entries re-derive
        exactly).  The vector path keeps the same values in per-label
        whole-repository buckets (``_vgathers``) filled by one batched
        gather each; both caches are invisible to callers — every entry
        is a pure function of its key.
        """
        digest = schema.content_digest()
        lids = self._schema_lids.get(digest)
        if lids is None:
            return None
        # inline the norm-cache hit: gather is called once per query
        # element per schema, so the extra call would be pure overhead
        normalised = self._norms.get(name)
        if normalised is None:
            normalised = self._normalise(name)
        # the inlined body of vectors.numpy_enabled() — this runs once
        # per (query element, schema) pair, where a function call is
        # measurable against the ~µs of useful work per hit
        if vectors._ENABLED and vectors._np is not None:
            bucket = self._vgathers.get((normalised, datatype))
            if bucket is None:
                return self._gather_vector(name, normalised, datatype, digest)
            return bucket[digest]
        key = (normalised, datatype, digest)
        cached = self._gathers.get(key)
        if cached is None:
            row = self.row(name, datatype)
            costs = tuple(map(row.__getitem__, lids))
            order = tuple(j for _, j in sorted(zip(costs, range(len(costs)))))
            cached = (costs, order)
            fifo_put(self._gathers, key, cached, self.MAX_GATHERS)
        return cached

    def _vector_index(self):
        """The stacked schema label-id index of the vector gather path.

        One padded 2-D integer matrix holding every schema's label ids
        (row per schema content digest, padded to the widest schema)
        plus the real lengths — built lazily on the first vector gather
        and shared by every query label thereafter.  Pure structure, no
        costs: it never goes stale within one kernel (the lid maps are
        fixed at construction).
        """
        if self._vindex is None:
            np = vectors._np
            digests = list(self._schema_lids)
            lid_rows = list(self._schema_lids.values())
            lengths = [len(lids) for lids in lid_rows]
            width = max(lengths, default=0)
            stacked = np.zeros((len(digests), width), dtype=np.intp)
            for position, lids in enumerate(lid_rows):
                stacked[position, : len(lids)] = lids
            padding = np.arange(width) >= np.asarray(
                lengths, dtype=np.intp
            ).reshape(-1, 1)
            self._vindex = (digests, lengths, stacked, padding)
        return self._vindex

    def _gather_vector(self, name, normalised, datatype, wanted_digest):
        """Batched gather: fill the cache for **every** schema at once.

        The first request for a query label fancy-indexes its cost row
        through the stacked lid matrix (one copy) and batch-argsorts all
        candidate orders (one stable sort over the padded matrix, with
        ``inf`` in the padding lanes so they rank strictly last — real
        costs are finite, and even a hypothetical ``inf`` cost would
        still win its tie against padding because stable sort keeps the
        lower column first).  Results are converted back to the exact
        python tuples the spec path builds — ``tolist`` round-trips
        float64 values exactly, and stable argsort's ascending-position
        tie-break *is* the ``(cost, id)`` order — then stored as one
        digest-keyed whole-repository bucket under ``_vgathers``, so
        both paths serve identical values.
        """
        np = vectors._np
        row = self.row(name, datatype)
        digests, lengths, stacked, padding = self._vector_index()
        gathered = np.frombuffer(row, dtype=np.float64)[stacked]
        # padding lanes hold garbage (row[0], from the zero-padded lid
        # matrix); overwrite them with inf in place so one argsort ranks
        # them strictly last — the cost tuples below never read past
        # ``length``, so the inf never escapes
        gathered[padding] = np.inf
        orders = np.argsort(gathered, axis=1, kind="stable")
        # one tolist per matrix (padding lanes convert too, but at C
        # speed), then a plain digest-keyed dict fill — interned-string
        # hashing only, no per-schema key tuples
        cost_lists = gathered.tolist()
        order_lists = orders.tolist()
        bucket: dict[str, tuple[tuple, tuple]] = {}
        for position, digest in enumerate(digests):
            length = lengths[position]
            bucket[digest] = (
                tuple(cost_lists[position][:length]),
                tuple(order_lists[position][:length]),
            )
        self._vgathers[(normalised, datatype)] = bucket
        # whole-bucket eviction, oldest first, same memory cap as the
        # flat cache; the bucket just filled always survives
        while (
            len(self._vgathers) > 1
            and len(self._vgathers) * len(digests) > self.MAX_GATHERS
        ):
            del self._vgathers[next(iter(self._vgathers))]
        return bucket[wanted_digest]

    def __getstate__(self):
        """Pickle every slot except the ndarray gather index.

        Worker payloads (the pipeline pickles substrates, kernels
        included, into shard workers) ship the warm row and gather
        caches but not ``_vindex`` — its stacked matrices rebuild in one
        lazy pass on the first vector gather, identically.
        """
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["_vindex"] = None
        return state

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    # -- persistence ---------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-able kernel state, for snapshot persistence.

        The inverse of :meth:`from_state`; see
        :mod:`repro.matching.similarity.persist`.  Floats survive the
        JSON round trip exactly (``repr``-based formatting).  Only the
        saved universe and the cost rows are recorded: the per-schema
        gather maps (and the gather/order cache) re-derive from the live
        repository on restore in pure string/sort work, so persisting
        them would be dead weight.
        """
        return {
            "repository_digest": self.repository_digest,
            "corpus_token": self.corpus_token,
            "labels": [
                [label, datatype.value] for label, datatype in self._labels
            ],
            "rows": [
                [label, datatype.value, list(row)]
                for (label, datatype), row in self._rows.items()
            ],
        }

    @classmethod
    def from_state(
        cls, objective, repository: SchemaRepository, state: dict
    ) -> "CostKernel":
        """Rebuild a kernel from :meth:`export_state` output.

        The universe and gather maps are re-derived from the **live**
        repository (cheap — pure interning, no similarity work), so they
        can never go stale; persisted rows are adopted through the same
        migration path a repository delta uses, which copies entries
        only where a saved universe label matches a live one and
        recomputes the rest.  Like the token index's per-schema
        digest-guarded reuse, this makes a payload saved against any
        repository version safe: cost is a pure function of the label
        pair, so matching labels carry over exactly and everything else
        re-derives — a kernel saved mid-evolution warm-starts the
        overlap instead of being refused.  Structurally inconsistent
        payloads (row length disagreeing with the saved universe) raise
        :class:`~repro.errors.SnapshotError`.
        """
        saved = cls.__new__(cls)
        saved.objective = objective
        saved.repository_digest = state.get("repository_digest", "")
        # payloads written before backends existed lack the key; they
        # were all scored corpus-free, which "" states exactly
        saved.corpus_token = state.get("corpus_token", "")
        saved._labels = [
            (label, Datatype(value)) for label, value in state.get("labels", [])
        ]
        saved._intern = {key: lid for lid, key in enumerate(saved._labels)}
        saved._schema_lids = {}
        saved._rows = {}
        saved.rows_built = 0
        saved.rows_migrated = 0
        universe = len(saved._labels)
        for label, value, costs in state.get("rows", []):
            if len(costs) != universe:
                raise SnapshotError(
                    f"kernel snapshot row for label {label!r} holds "
                    f"{len(costs)} costs for a universe of {universe} labels"
                )
            saved._rows[(label, Datatype(value))] = array("d", costs)
        return cls(objective, repository, previous=saved)

"""Element-level similarity heuristics feeding the objective function.

Split by evidence source, mirroring the layering of the matchers the
paper builds on (Cupid, COMA, iMAP):

* :mod:`~repro.matching.similarity.name` — lexical + thesaurus name
  similarity;
* :mod:`~repro.matching.similarity.backends` — pluggable similarity
  backends: the protocol behind the objective's name plane, the default
  lexical backend, the BM25 sparse and hashed dense scorers, and the
  weighted ensemble (with the ``backends`` A/B switch over the
  refactoring seam);
* :mod:`~repro.matching.similarity.datatype` — datatype compatibility
  penalties;
* :mod:`~repro.matching.similarity.structure` — ancestry preservation of
  whole mappings;
* :mod:`~repro.matching.similarity.matrix` — the similarity substrate:
  precomputed per-(query, schema) score matrices, the repository token
  index, and the per-objective cache sharing both across matchers,
  thresholds and pipeline shards;
* :mod:`~repro.matching.similarity.kernel` — the repository scoring
  kernel: distinct (normalised label, datatype) pairs interned into a
  per-repository universe with flat cost-row buffers, so each distinct
  cost is computed once per repository and matrices become gathers;
* :mod:`~repro.matching.similarity.vectors` — the optional numpy
  execution layer: batched gathers, vector candidate-order sorts,
  suffix-sum folds and top-k cuts behind the ``numpy`` A/B switch, with
  the pure-python code kept as the executable spec (and as the only
  path when numpy is not installed).
"""

from repro.matching.similarity.backends import (
    EnsembleBackend,
    HashedVectorBackend,
    LexicalBackend,
    SimilarityBackend,
    SparseBM25Backend,
    backends_disabled,
    backends_enabled,
    set_backends_enabled,
)
from repro.matching.similarity.datatype import datatype_penalty
from repro.matching.similarity.kernel import (
    CostKernel,
    kernel_disabled,
    kernel_enabled,
    set_kernel_enabled,
)
from repro.matching.similarity.matrix import (
    ScoreMatrix,
    SimilaritySubstrate,
    TokenIndex,
    set_substrate_enabled,
    substrate_disabled,
    substrate_enabled,
)
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.matching.similarity.structure import ancestry_violations
from repro.matching.similarity.vectors import (
    numpy_available,
    numpy_disabled,
    numpy_enabled,
    set_numpy_enabled,
)

__all__ = [
    "CostKernel",
    "EnsembleBackend",
    "HashedVectorBackend",
    "LexicalBackend",
    "NameSimilarity",
    "ScoreMatrix",
    "SimilarityBackend",
    "SimilaritySubstrate",
    "SparseBM25Backend",
    "Thesaurus",
    "TokenIndex",
    "ancestry_violations",
    "backends_disabled",
    "backends_enabled",
    "datatype_penalty",
    "kernel_disabled",
    "kernel_enabled",
    "numpy_available",
    "numpy_disabled",
    "numpy_enabled",
    "set_backends_enabled",
    "set_kernel_enabled",
    "set_numpy_enabled",
    "set_substrate_enabled",
    "substrate_disabled",
    "substrate_enabled",
]

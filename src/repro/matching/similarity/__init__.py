"""Element-level similarity heuristics feeding the objective function.

Split by evidence source, mirroring the layering of the matchers the
paper builds on (Cupid, COMA, iMAP):

* :mod:`~repro.matching.similarity.name` — lexical + thesaurus name
  similarity;
* :mod:`~repro.matching.similarity.datatype` — datatype compatibility
  penalties;
* :mod:`~repro.matching.similarity.structure` — ancestry preservation of
  whole mappings.
"""

from repro.matching.similarity.datatype import datatype_penalty
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.matching.similarity.structure import ancestry_violations

__all__ = [
    "NameSimilarity",
    "Thesaurus",
    "ancestry_violations",
    "datatype_penalty",
]

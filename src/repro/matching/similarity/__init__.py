"""Element-level similarity heuristics feeding the objective function.

Split by evidence source, mirroring the layering of the matchers the
paper builds on (Cupid, COMA, iMAP):

* :mod:`~repro.matching.similarity.name` — lexical + thesaurus name
  similarity;
* :mod:`~repro.matching.similarity.datatype` — datatype compatibility
  penalties;
* :mod:`~repro.matching.similarity.structure` — ancestry preservation of
  whole mappings;
* :mod:`~repro.matching.similarity.matrix` — the similarity substrate:
  precomputed per-(query, schema) score matrices, the repository token
  index, and the per-objective cache sharing both across matchers,
  thresholds and pipeline shards.
"""

from repro.matching.similarity.datatype import datatype_penalty
from repro.matching.similarity.matrix import (
    ScoreMatrix,
    SimilaritySubstrate,
    TokenIndex,
    set_substrate_enabled,
    substrate_disabled,
    substrate_enabled,
)
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.matching.similarity.structure import ancestry_violations

__all__ = [
    "NameSimilarity",
    "ScoreMatrix",
    "SimilaritySubstrate",
    "Thesaurus",
    "TokenIndex",
    "ancestry_violations",
    "datatype_penalty",
    "set_substrate_enabled",
    "substrate_disabled",
    "substrate_enabled",
]

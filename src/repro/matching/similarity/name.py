"""Name similarity: lexical measures plus an (imperfect) thesaurus.

Real matchers complement string measures with dictionaries — Cupid uses a
thesaurus, COMA a synonym table.  Crucially for the reproduction, the
matcher's thesaurus is *imperfect*: it is sampled from the domain
vocabularies with partial coverage and a few spurious entries.  The
matcher therefore misses some synonym pairs (lost recall) and believes
some false ones (lost precision), which is exactly what gives the
exhaustive system S1 a realistic, non-trivial P/R curve for the bounds
experiments to work on.  (A matcher with the *complete* vocabulary would
be a cheat: it would read the ground truth's mind.)
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

from repro.errors import MatchingError
from repro.schema.vocabulary import Vocabulary
from repro.util import rng as rng_util
from repro.util.caching import fifo_put
from repro.util.checks import check_probability
from repro.util.text import (
    jaro_winkler,
    ngram_similarity,
    normalise_label,
    token_set_similarity,
)

__all__ = ["Thesaurus", "NameSimilarity"]


class Thesaurus:
    """A symmetric synonym table over *normalised* labels."""

    def __init__(self, pairs: Iterable[tuple[str, str]]):
        self._pairs: set[frozenset[str]] = set()
        for a, b in pairs:
            na, nb = normalise_label(a), normalise_label(b)
            if na and nb and na != nb:
                self._pairs.add(frozenset((na, nb)))
        self._digest: str | None = None

    def __len__(self) -> int:
        return len(self._pairs)

    def digest(self) -> str:
        """Content hash over the synonym pairs (order-independent).

        Two thesauri with equal digests behave identically;
        :meth:`NameSimilarity.fingerprint` folds this into the
        configuration identity, so same-size tables with different
        content can never collide in fingerprint-keyed caches.
        """
        if self._digest is None:
            hasher = hashlib.blake2b(digest_size=16)
            for first, second in sorted(tuple(sorted(p)) for p in self._pairs):
                hasher.update(first.encode())
                hasher.update(b"\x1f")
                hasher.update(second.encode())
                hasher.update(b"\x1e")
            self._digest = hasher.hexdigest()
        return self._digest

    def synonymous(self, a: str, b: str) -> bool:
        """Whether the thesaurus lists the two labels as synonyms."""
        na, nb = normalise_label(a), normalise_label(b)
        if not na or not nb or na == nb:
            return False
        return frozenset((na, nb)) in self._pairs

    @classmethod
    def from_vocabularies(
        cls,
        vocabularies: Iterable[Vocabulary],
        coverage: float = 0.65,
        spurious_rate: float = 0.03,
        seed: int = 1234,
    ) -> "Thesaurus":
        """Sample an imperfect thesaurus from domain vocabularies.

        ``coverage`` is the probability that a true synonym pair makes it
        into the table; ``spurious_rate`` controls how many false pairs
        (surface forms of *different* concepts) are added, as a fraction
        of the number of true pairs considered.
        """
        check_probability(coverage, "coverage")
        check_probability(spurious_rate, "spurious_rate")
        generator = rng_util.make_tagged(seed)
        true_gen = rng_util.derive(generator, "true-pairs")
        noise_gen = rng_util.derive(generator, "spurious-pairs")

        pairs: list[tuple[str, str]] = []
        all_forms: list[tuple[str, str]] = []  # (concept, form)
        considered = 0
        for vocabulary in vocabularies:
            for concept in vocabulary.concepts():
                forms = concept.all_forms()
                for form in forms:
                    all_forms.append((concept.name, form))
                for i in range(len(forms)):
                    for j in range(i + 1, len(forms)):
                        considered += 1
                        if true_gen.random() < coverage:
                            pairs.append((forms[i], forms[j]))
        if not all_forms:
            raise MatchingError("cannot build a thesaurus from empty vocabularies")

        spurious_target = round(considered * spurious_rate)
        attempts = 0
        added = 0
        while added < spurious_target and attempts < spurious_target * 20:
            attempts += 1
            (concept_a, form_a) = noise_gen.choice(all_forms)
            (concept_b, form_b) = noise_gen.choice(all_forms)
            if concept_a == concept_b:
                continue
            pairs.append((form_a, form_b))
            added += 1
        return cls(pairs)


class NameSimilarity:
    """Combined name similarity in [0, 1] (1 = same name).

    The score is the maximum of a thesaurus hit (a fixed high score, as a
    dictionary asserts synonymy without grading it) and a weighted blend
    of Jaro-Winkler, character-3-gram Dice and token-set Jaccard on the
    normalised labels.  The blend is passed through a linear *ramp* that
    maps everything below ``ramp_low`` to 0 and rescales the rest — string
    measures give unrelated words a substantial floor (Jaro-Winkler rates
    random word pairs around 0.4-0.5), and without the ramp that floor
    floods higher thresholds with coincidental mid-similarity mappings.

    Results are memoised — matchers evaluate the same label pairs
    constantly.  The memo is keyed on the **normalised** label pair
    (order-canonicalised): every component of the score — Jaro-Winkler,
    n-gram Dice and token-set Jaccard on the normalised forms, plus the
    thesaurus, which normalises internally — is a pure, symmetric
    function of the normalised labels, so ``"Order ID"`` vs
    ``"order_id"`` and ``"OrderId"`` vs ``"ORDER-ID"`` all share one
    entry with identical values.  ``memo_limit`` bounds the memo
    (insertion-order eviction); re-computing an evicted pair returns the
    identical float, so eviction can never change a score — it only
    keeps long-lived services from growing the memo without bound.
    """

    def __init__(
        self,
        thesaurus: Thesaurus | None = None,
        thesaurus_score: float = 0.95,
        jaro_weight: float = 0.45,
        ngram_weight: float = 0.35,
        token_weight: float = 0.20,
        ramp_low: float = 0.35,
        memo_limit: int = 262_144,
    ):
        check_probability(thesaurus_score, "thesaurus_score")
        if not 0.0 <= ramp_low < 1.0:
            raise MatchingError(f"ramp_low must be in [0, 1), got {ramp_low!r}")
        if memo_limit < 1:
            raise MatchingError(f"memo_limit must be >= 1, got {memo_limit!r}")
        total = jaro_weight + ngram_weight + token_weight
        if total <= 0:
            raise MatchingError("similarity weights must sum to a positive value")
        self.thesaurus = thesaurus
        self.thesaurus_score = thesaurus_score
        self.jaro_weight = jaro_weight / total
        self.ngram_weight = ngram_weight / total
        self.token_weight = token_weight / total
        self.ramp_low = ramp_low
        self.memo_limit = memo_limit
        self._memo: dict[tuple[str, str], float] = {}
        # raw label -> normalised form; keeps memo hits regex-free (the
        # similarity memo itself is keyed on normalised labels)
        self._norm_cache: dict[str, str] = {}

    def fingerprint(self) -> str:
        """Configuration identity (objective-function equality checks).

        Includes the thesaurus *content* digest, not just its size — two
        same-size, different-content tables score differently and must
        never share a fingerprint (or any cache entry keyed on one).
        Weights are rendered at full ``repr`` precision for the same
        reason.
        """
        thesaurus_part = (
            "none"
            if self.thesaurus is None
            else f"thesaurus[{len(self.thesaurus)}:{self.thesaurus.digest()}]"
        )
        return (
            f"name(jw={self.jaro_weight!r},ng={self.ngram_weight!r},"
            f"tok={self.token_weight!r},ramp={self.ramp_low!r},"
            f"{thesaurus_part}@{self.thesaurus_score!r})"
        )

    def similarity(self, a: str, b: str) -> float:
        """Similarity of two raw element labels.

        Memoised on the order-canonicalised *normalised* label pair, so
        raw spellings that normalise alike (``"Order ID"`` /
        ``"order_id"``) share one cache entry; the memo is bounded by
        ``memo_limit`` with insertion-order eviction (class docstring).
        Normalisation itself is cached per raw label, so repeat lookups
        touch two small dicts and no regex.
        """
        norms = self._norm_cache
        na = norms.get(a)
        if na is None:
            na = normalise_label(a)
            fifo_put(norms, a, na, self.memo_limit)
        nb = norms.get(b)
        if nb is None:
            nb = normalise_label(b)
            fifo_put(norms, b, nb, self.memo_limit)
        key = (na, nb) if na <= nb else (nb, na)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        value = self._compute(key[0], key[1])
        fifo_put(self._memo, key, value, self.memo_limit)
        return value

    def _compute(self, na: str, nb: str) -> float:
        """Score two already-normalised labels.

        Every component is a pure symmetric function of the normalised
        forms — ``token_set_similarity`` tokenises via
        :func:`~repro.util.text.normalise_label` (idempotent), and the
        thesaurus normalises its arguments internally — which is what
        makes the normalised memo key in :meth:`similarity` exact.
        """
        if not na or not nb:
            return 0.0
        if na == nb:
            return 1.0
        blend = (
            self.jaro_weight * jaro_winkler(na, nb)
            + self.ngram_weight * ngram_similarity(na, nb)
            + self.token_weight * token_set_similarity(na, nb)
        )
        lexical = max(0.0, blend - self.ramp_low) / (1.0 - self.ramp_low)
        if self.thesaurus is not None and self.thesaurus.synonymous(na, nb):
            return max(lexical, self.thesaurus_score)
        return lexical

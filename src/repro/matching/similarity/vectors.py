"""The optional numpy execution layer behind the ``numpy`` A/B switch.

The scoring stack's remaining per-expansion work after the kernel PR is
pure-python arithmetic: gathering kernel rows into matrices, sorting
candidate orders, accumulating suffix-sum admissible bounds, cutting
top-k candidate lists.  This module provides vectorised forms of those
primitives — and the process-wide switch that selects them — while the
pure-python code keeps being the **executable specification**, exactly
like :func:`~repro.matching.engine.flat_search_disabled` keeps the
recursive search and :func:`~repro.matching.similarity.kernel
.kernel_disabled` keeps the per-pair scoring path.

Byte-identity discipline
------------------------
Every helper here is bit-equal to its python spec, by construction, not
by accident:

* **Gathers** are fancy indexing — pure copies of the same doubles.
* **Candidate orders** use stable argsort (ties keep ascending position,
  which for rows indexed by target id *is* the engine's ``(cost, id)``
  tie-break) or :func:`numpy.lexsort` where candidate ids arrive
  unsorted.
* **Suffix sums** run :func:`numpy.cumsum` over the reversed minima with
  a prepended ``0.0`` — ``cumsum`` is a strict sequential left fold, so
  every partial sum is the identical float chain of the spec loop in
  :func:`~repro.matching.similarity.matrix.suffix_cost_sums`.
* **Top-k** narrows with ``argpartition`` and then resolves the pivot
  ties exactly, so the kept target set equals the spec's full
  ``(cost, id)`` sort cut at k.
* Results are converted back to python floats/ints (``tolist`` is
  value-exact for float64), so everything downstream — the search loop,
  answer sets, serialized snapshots — holds the same objects it would
  have held on the spec path.

The helpers assume finite costs; the kernel/matrix layer guarantees it
(objective costs live in [0, 1]) and a regression test pins it down,
because NaN would order differently under numpy's sort than python's.

Optional dependency
-------------------
numpy is **optional**.  When it cannot be imported — or when the
environment variable ``REPRO_NO_NUMPY=1`` forces the import to be
skipped, which is how CI exercises the numpy-absent configuration
without a second container image — :func:`numpy_available` is false,
:func:`numpy_enabled` is false regardless of the switch, and every
caller falls back to its spec path.  ``set_numpy_enabled(True)`` on a
numpy-less process is a recorded no-op: the switch flips, but
:func:`numpy_enabled` keeps answering false, so toggling code needs no
availability checks of its own.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence
from contextlib import contextmanager

__all__ = [
    "numpy_available",
    "numpy_disabled",
    "numpy_enabled",
    "set_numpy_enabled",
    "stable_order",
    "suffix_sums",
    "topk_indices",
    "vector_thresholds",
]

if os.environ.get("REPRO_NO_NUMPY") == "1":  # the forced-absent CI mode
    _np = None
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        _np = None

_ENABLED = True

#: adaptive dispatch floors: per-call vector forms only run at or above
#: these sizes (elements for 1-D ops, total elements for 2-D ops) —
#: below them, numpy's call overhead loses to the tiny python loop it
#: replaces.  Both forms are bit-identical, so the crossover is purely a
#: speed choice; the *batched* kernel gather has no floor because it
#: amortises one dispatch over the whole repository.  Tests force the
#: floors to 0 via :func:`vector_thresholds` so every vector form is
#: exercised on small workloads too.
VECTOR_MIN = 64
VECTOR_MIN_AREA = 1024


@contextmanager
def vector_thresholds(
    min_elements: int = 0, min_area: int = 0
) -> Iterator[None]:
    """Temporarily override the adaptive dispatch floors.

    The property suite runs its toggle combinations under
    ``vector_thresholds(0, 0)`` so the vector forms execute even on
    hypothesis-sized inputs; benchmarks may raise them to isolate a
    regime.  Restores the previous floors on exit.
    """
    global VECTOR_MIN, VECTOR_MIN_AREA
    previous = (VECTOR_MIN, VECTOR_MIN_AREA)
    VECTOR_MIN, VECTOR_MIN_AREA = min_elements, min_area
    try:
        yield
    finally:
        VECTOR_MIN, VECTOR_MIN_AREA = previous


def numpy_available() -> bool:
    """Whether numpy imported at all (``REPRO_NO_NUMPY=1`` forces false)."""
    return _np is not None


def numpy_enabled() -> bool:
    """Whether the vectorised execution path is active.

    True only when numpy is importable **and** the process-wide switch
    is on; with numpy absent this is constantly false and the spec
    paths run everywhere.
    """
    return _ENABLED and _np is not None


def set_numpy_enabled(enabled: bool) -> bool:
    """Set the process-wide numpy switch; returns the previous value.

    The switch state is tracked even without numpy installed (so
    save/restore idioms behave), but :func:`numpy_enabled` only ever
    answers true when numpy is actually importable.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def numpy_disabled() -> Iterator[None]:
    """Run a block on the pure-python spec paths (for A/B runs)."""
    previous = set_numpy_enabled(False)
    try:
        yield
    finally:
        set_numpy_enabled(previous)


# ---------------------------------------------------------------------------
# Vector primitives (call only when ``numpy_enabled()``)
# ---------------------------------------------------------------------------

def stable_order(values) -> "object":
    """Indices sorting ``values`` ascending, ties by ascending index.

    For a cost row indexed by target id this is exactly the engine's
    ``(cost, id)`` candidate order: stable argsort keeps equal costs in
    input (= id) order.  Accepts any sequence or ndarray; returns an
    ndarray of indices.
    """
    return _np.argsort(_np.asarray(values, dtype=_np.float64), kind="stable")


def suffix_sums(row_minima: Sequence[float]) -> tuple[float, ...]:
    """The vector form of the suffix-sum accumulation.

    Bit-identical to the spec loop in
    :func:`~repro.matching.similarity.matrix.suffix_cost_sums`:
    ``cumsum`` is a strict sequential fold, and prepending ``0.0``
    reproduces the spec's ``out[n-1] = 0.0 + row_minima[n-1]`` first
    step, so every partial sum is the same float chain.  Returns length
    ``len(row_minima) + 1`` with the trailing ``0.0``, like the spec.
    """
    reversed_with_zero = _np.empty(len(row_minima) + 1, dtype=_np.float64)
    reversed_with_zero[0] = 0.0
    reversed_with_zero[1:] = _np.asarray(row_minima, dtype=_np.float64)[::-1]
    return tuple(_np.cumsum(reversed_with_zero)[::-1].tolist())


def topk_indices(costs: Sequence[float], k: int) -> list[int]:
    """The ``k`` cheapest target ids of one cost row, ``(cost, id)`` order.

    Equal to ``sorted(range(len(costs)), key=lambda j: (costs[j], j))[:k]``
    — the top-k matcher's spec cut — but via ``argpartition``:
    partitioning finds the k-th smallest cost, every id at or below that
    pivot cost is collected (``nonzero`` yields them id-ascending), and
    one stable sort of that usually-tiny slice resolves pivot ties by id
    exactly as the spec's tuple sort does.
    """
    arr = _np.asarray(costs, dtype=_np.float64)
    size = arr.shape[0]
    if k >= size:
        return stable_order(arr).tolist()
    pivot = arr[_np.argpartition(arr, k - 1)[:k]].max()
    eligible = _np.nonzero(arr <= pivot)[0]
    ranked = eligible[_np.argsort(arr[eligible], kind="stable")]
    return ranked[:k].tolist()

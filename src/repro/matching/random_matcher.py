"""Concrete random-subset systems (section 3.4 made executable).

The paper's ``S_random`` is hypothetical — it exists to *compute* a
curve, not to run.  On the synthetic testbed we can actually run it:
:func:`random_subset_like` draws, per increment, a uniform subset of the
original system's answers of exactly the size the studied improvement
produced.  Judging such runs validates Equations 9-10 empirically (the
measured P/R of random subsets concentrates around the computed random
curve) and supplies adversary-free test material for the containment
property tests.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.answers import AnswerSet
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError
from repro.util import rng as rng_util

__all__ = ["random_subset_like", "worst_case_subset", "best_case_subset"]


def _increment_targets(
    original: AnswerSet, schedule: ThresholdSchedule, target_sizes: Sequence[int]
) -> list[tuple[AnswerSet, int]]:
    ThresholdSchedule.validate_alignment(schedule, target_sizes, "target_sizes")
    out = []
    previous_size = 0
    for (low, high), size in zip(schedule.increments(), target_sizes):
        increment = original.increment(low, high)
        keep = size - previous_size
        if keep < 0:
            raise BoundsError("target sizes must be non-decreasing")
        if keep > len(increment):
            raise BoundsError(
                f"cannot keep {keep} answers from an increment of "
                f"{len(increment)}"
            )
        out.append((increment, keep))
        previous_size = size
    return out


def random_subset_like(
    original: AnswerSet,
    schedule: ThresholdSchedule,
    target_sizes: Sequence[int],
    seed: int,
) -> AnswerSet:
    """A run of ``S_random``: per-increment uniform subsets of S1's answers.

    ``target_sizes[i]`` is the cumulative answer count the subset must
    reach at ``schedule[i]`` — i.e. the size profile of the improvement
    the random system is being matched against.
    """
    generator = rng_util.make_tagged(seed)
    kept = []
    for index, (increment, keep) in enumerate(
        _increment_targets(original, schedule, target_sizes)
    ):
        child = rng_util.derive(generator, "increment", index)
        kept.extend(child.sample(list(increment.answers()), keep))
    return AnswerSet(kept)


def worst_case_subset(
    original: AnswerSet,
    schedule: ThresholdSchedule,
    target_sizes: Sequence[int],
    ground_truth: frozenset,
) -> AnswerSet:
    """The adversarial subset: per increment, drop correct answers first.

    Realises the paper's worst case exactly (an oracle adversary), so the
    measured P/R of this subset must coincide with the worst-case bound —
    the tightness half of the soundness tests.
    """
    kept = []
    for increment, keep in _increment_targets(original, schedule, target_sizes):
        answers = sorted(
            increment.answers(),
            key=lambda a: (a.item in ground_truth, a.score),
        )
        kept.extend(answers[:keep])
    return AnswerSet(kept)


def best_case_subset(
    original: AnswerSet,
    schedule: ThresholdSchedule,
    target_sizes: Sequence[int],
    ground_truth: frozenset,
) -> AnswerSet:
    """The benevolent subset: per increment, keep correct answers first."""
    kept = []
    for increment, keep in _increment_targets(original, schedule, target_sizes):
        answers = sorted(
            increment.answers(),
            key=lambda a: (a.item not in ground_truth, a.score),
        )
        kept.extend(answers[:keep])
    return AnswerSet(kept)

"""Shard executors: pluggable fan-out transports for the matching pipeline.

The sharded pipeline (:mod:`repro.matching.pipeline`) decomposes a
batch-matching run into (query, shard) **work units** — each unit is a
handful of :meth:`~repro.matching.base.Matcher.match_pair` calls, fully
described by a query index, a tuple of schema ids and the threshold.
*Where* those units run is a transport decision, not a matching one, so
it lives behind the :class:`ShardExecutor` interface:

* :class:`SerialExecutor` — units run in the calling process, in order;
  the deterministic fallback with no pickling involved.
* :class:`ProcessPoolShardExecutor` — the default fan-out: a persistent
  :class:`~concurrent.futures.ProcessPoolExecutor` whose workers hold
  the run's state (matcher, queries, the repository's schema table)
  installed **one-shot** through the pool initializer and reuse it
  while the :attr:`ExecutionState.state_key` stays the same.
* :class:`~repro.matching.remote.RemoteShardExecutor` — the same unit
  protocol over length-prefixed, digest-framed sockets, so shards run
  on remote nodes (see :mod:`repro.matching.remote`).

Every executor receives the same :class:`ExecutionState` and must hand
back, for each unit, the exact ``(schema_id, match_pair result)`` list
the serial path would produce — transports move bytes, never answers,
so the pipeline's byte-identity contract holds for any executor.

The pool's module-level lifecycle (:func:`shutdown_workers`,
:func:`current_switches`) lives here; :mod:`repro.matching.pipeline`
re-exports ``shutdown_workers`` for backwards compatibility.
"""

from __future__ import annotations

import abc
import atexit
import pickle
from collections.abc import Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.matching.base import Matcher
from repro.matching.engine import (
    flat_search_enabled,
    set_flat_search_enabled,
)
from repro.matching.similarity.backends import (
    backends_enabled,
    set_backends_enabled,
)
from repro.matching.similarity.kernel import kernel_enabled, set_kernel_enabled
from repro.matching.similarity.matrix import (
    set_substrate_enabled,
    substrate_enabled,
)
from repro.matching.similarity.vectors import numpy_enabled, set_numpy_enabled
from repro.schema.model import Schema
from repro.schema.repository import SchemaRepository

__all__ = [
    "ExecutionState",
    "ProcessPoolShardExecutor",
    "SerialExecutor",
    "ShardExecutor",
    "WorkUnit",
    "apply_switches",
    "clone_worker_state",
    "current_switches",
    "shutdown_workers",
]

#: one pair's search result, as in :mod:`repro.matching.pipeline`
PairResult = list[tuple[tuple[int, ...], float]]


def current_switches() -> tuple[bool, bool, bool, bool, bool]:
    """The process-wide A/B switches, in worker-install order.

    (substrate, kernel, flat search, numpy, backends) — the five toggles
    of the differential-testing harness.  Workers must mirror the
    coordinator's values or a toggle flip would silently test nothing.
    """
    return (
        substrate_enabled(),
        kernel_enabled(),
        flat_search_enabled(),
        numpy_enabled(),
        backends_enabled(),
    )


def apply_switches(switches: Sequence[bool]) -> None:
    """Set the process-wide A/B switches from :func:`current_switches` order.

    The numpy flag carries the coordinator's *switch*; a worker without
    numpy importable still runs the spec path (``numpy_enabled()`` stays
    false there), which is byte-identical by the vector layer's
    contract, so mixed availability cannot skew answers.
    """
    substrate_on, kernel_on, flat_on, numpy_on, backends_on = switches
    set_substrate_enabled(substrate_on)
    set_kernel_enabled(kernel_on)
    set_flat_search_enabled(flat_on)
    set_numpy_enabled(numpy_on)
    set_backends_enabled(backends_on)


@dataclass(frozen=True)
class WorkUnit:
    """One (query, shard) unit of fan-out work.

    ``schema_ids`` are the shard's schemas still to search (the pipeline
    strips cached pairs before building units), referencing the
    installed schema table so a unit submission carries only scalars.
    """

    query_index: int
    shard_index: int
    schema_ids: tuple[str, ...]


@dataclass
class ExecutionState:
    """Everything a worker must hold before units can run.

    ``matcher`` arrives already ``prepare()``d on ``repository`` (so
    repository-global state such as clusters rides along), ``queries``
    and ``schema_table`` are the shared lookup tables units index into,
    ``switches`` mirrors the coordinator's A/B toggles and ``state_key``
    identifies the whole bundle — executors that keep live workers
    (pool, remote) reinstall state only when it changes.
    """

    matcher: Matcher
    queries: list[Schema]
    repository: SchemaRepository
    schema_table: dict[str, Schema]
    switches: tuple[bool, bool, bool, bool, bool]
    state_key: tuple


def run_unit_with(
    state: dict[str, object],
    query_index: int,
    schema_ids: Sequence[str],
    delta_max: float,
) -> list[tuple[str, PairResult]]:
    """Execute one unit against an installed worker-state dict.

    The shared worker-side inner loop of every transport: ``state`` maps
    ``matcher``/``queries``/``schemas`` (+ mutable ``active_query``
    bookkeeping) exactly as the pool initializer installs them.
    ``begin_query`` runs once per query per worker — not per shard.
    """
    matcher: Matcher = state["matcher"]  # type: ignore[assignment]
    queries: list[Schema] = state["queries"]  # type: ignore[assignment]
    schemas: dict[str, Schema] = state["schemas"]  # type: ignore[assignment]
    query = queries[query_index]
    if state.get("active_query") != query_index:
        matcher.begin_query(query)
        state["active_query"] = query_index
    return [
        (schema_id, matcher.match_pair(query, schemas[schema_id], delta_max))
        for schema_id in schema_ids
    ]


def clone_worker_state(state: dict[str, object]) -> dict[str, object]:
    """A private deep copy of one installed worker-state dict.

    Worker-side unit parallelism needs one state per concurrently
    running unit: matchers mutate per-query internals (``begin_query``
    bookkeeping, substrate caches), so two live units must never share
    a matcher.  A pickle round-trip of the install payload gives each
    slot exactly the state a fresh install would have shipped — the
    same bytes a pool worker or socket worker receives — so answers
    stay byte-identical whichever slot a unit lands on.  Mutable
    bookkeeping keys (``active_query``) are deliberately not copied:
    a clone starts as a freshly installed worker does.
    """
    payload = {key: state[key] for key in ("matcher", "queries", "schemas")}
    return pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


class ShardExecutor(abc.ABC):
    """Transport contract: run work units, stream their results back.

    :meth:`execute` yields ``(unit, pair_results)`` in any order —
    deterministic serially, completion order with fan-out; the pipeline
    reassembles order-independently.  It must be *loud*: a unit that
    cannot be completed (worker crash with no healthy peer, tampered
    transport frames) raises — typically
    :class:`~repro.errors.TransportError` — never yields partial or
    unverified results.  An abandoned or failed iteration must leave no
    orphaned busy workers behind.
    """

    #: short transport name for stats/debugging
    name: str = "abstract"

    @abc.abstractmethod
    def execute(
        self,
        state: ExecutionState,
        units: Sequence[WorkUnit],
        delta_max: float,
    ) -> Iterator[tuple[WorkUnit, list[tuple[str, PairResult]]]]:
        """Run every unit; yield each with its per-schema pair results."""

    def shutdown(self) -> None:
        """Release held resources (idempotent); default holds none."""

    def status(self) -> str:
        """One operator status line for this transport.

        In-process transports have no health to report; the remote
        executor overrides this with per-worker breaker states and its
        deadline/breaker counters (see
        :meth:`repro.matching.remote.RemoteShardExecutor.status`).
        """
        return f"executor {self.name}: ok"


class SerialExecutor(ShardExecutor):
    """Run units in the calling process, in submission order.

    Uses the state's live matcher directly — no pickling, shared
    repository-global state, deterministic unit order.  This is the
    ``workers=1`` path the parallel transports are differential-tested
    against.
    """

    name = "serial"

    def execute(self, state, units, delta_max):
        # plain dict mirror of the pool's worker state; ``active_query``
        # tracking gives one begin_query per query (units arrive grouped)
        local = {
            "matcher": state.matcher,
            "queries": state.queries,
            "schemas": state.schema_table,
        }
        for unit in units:
            yield unit, run_unit_with(
                local, unit.query_index, unit.schema_ids, delta_max
            )


# ---------------------------------------------------------------------------
# The default process-pool transport
# ---------------------------------------------------------------------------

# Initialised once per worker process; tasks then reference queries and
# schemas by index/id so each task submission pickles only a few scalars.
_WORKER_STATE: dict[str, object] | None = None


def _init_worker(
    matcher: Matcher,
    queries: list[Schema],
    schemas: dict[str, Schema],
    switches: tuple[bool, bool, bool, bool, bool] = (
        True, True, True, True, True,
    ),
) -> None:
    global _WORKER_STATE
    # Mirror the coordinator's process-wide A/B switches — worker
    # processes otherwise boot with the module defaults regardless of
    # what the coordinator toggled.
    apply_switches(switches)
    _WORKER_STATE = {"matcher": matcher, "queries": queries, "schemas": schemas}


def _run_unit(
    query_index: int, schema_ids: tuple[str, ...], delta_max: float
) -> list[tuple[str, PairResult]]:
    """Execute one (query, shard) unit inside a pool worker process."""
    assert _WORKER_STATE is not None, "worker initializer did not run"
    return run_unit_with(_WORKER_STATE, query_index, schema_ids, delta_max)


@dataclass
class _WorkerPool:
    """A live executor plus the identity of the state its workers hold."""

    executor: ProcessPoolExecutor
    max_workers: int
    state_key: tuple


_POOL: _WorkerPool | None = None


def shutdown_workers() -> None:
    """Tear down the shared worker pool (idempotent; re-created on demand).

    Registered via :mod:`atexit`; tests that must not leak processes can
    call it directly.
    """
    global _POOL
    if _POOL is not None:
        _POOL.executor.shutdown()
        _POOL = None


atexit.register(shutdown_workers)


def _acquire_pool(max_workers: int, state: ExecutionState) -> ProcessPoolExecutor:
    """The shared worker pool, (re)initialised only when the state changed.

    The matcher, the query list and the repository's schema table are
    installed **one-shot per worker process** through the pool
    initializer; while ``state.state_key`` — matcher fingerprint,
    repository and query content digests, the A/B switches — stays the
    same, later pipeline runs (a threshold sweep, repeated experiments)
    reuse the live processes and re-pickle *nothing*: tasks carry only
    indices, schema ids and the threshold.  Before this, every run
    spawned a fresh pool and re-shipped the full repository and matcher
    state, which dominated wall-clock on large repositories.
    """
    global _POOL
    if (
        _POOL is not None
        and _POOL.max_workers == max_workers
        and _POOL.state_key == state.state_key
    ):
        return _POOL.executor
    shutdown_workers()
    executor = ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_init_worker,
        initargs=(
            state.matcher,
            state.queries,
            state.schema_table,
            state.switches,
        ),
    )
    _POOL = _WorkerPool(executor, max_workers, state.state_key)
    return executor


class ProcessPoolShardExecutor(ShardExecutor):
    """Fan units out over the shared persistent worker-process pool.

    The default parallel transport (``workers > 1``).  All instances
    share one module-level pool — reuse across runs is keyed purely by
    ``state_key``, so two pipelines over the same state never respawn
    processes.
    """

    name = "pool"

    def __init__(self, max_workers: int):
        self.max_workers = max_workers

    def execute(self, state, units, delta_max):
        def submit_all(pool: ProcessPoolExecutor) -> dict:
            return {
                pool.submit(
                    _run_unit, unit.query_index, unit.schema_ids, delta_max
                ): unit
                for unit in units
            }

        pool = _acquire_pool(self.max_workers, state)
        try:
            futures = submit_all(pool)
        except (BrokenProcessPool, RuntimeError):
            # A worker died (or the pool was shut down) since the last
            # run; rebuild once and retry.
            shutdown_workers()
            pool = _acquire_pool(self.max_workers, state)
            futures = submit_all(pool)
        try:
            for future in as_completed(futures):
                yield futures[future], future.result()
        except GeneratorExit:
            # The consumer abandoned the stream: cancel what has not
            # started so the pool goes idle (and stays warm) instead of
            # grinding through orphaned units.
            for future in futures:
                future.cancel()
            raise
        except BaseException:
            # A coordinator-side exception mid-sweep (typically a unit
            # raising inside a worker).  Cancel the rest *and* retire
            # the pool: its workers may hold poisoned state, and pooled
            # processes left busy behind an exception leak across tests
            # as pure CI slowdown.
            for future in futures:
                future.cancel()
            shutdown_workers()
            raise

    def shutdown(self) -> None:
        shutdown_workers()

"""Matcher base class: a matching *system* in the paper's sense.

A matcher takes a matching problem (personal schema + repository +
threshold δ) and returns an :class:`~repro.core.answers.AnswerSet` of
scored :class:`~repro.matching.mapping.Mapping` objects.  All concrete
matchers score through the same :class:`ObjectiveFunction` instance they
are constructed with — sharing one objective across an original system
and its improvements is the precondition of the bounds technique, and
:func:`Matcher.check_compatible` enforces it.

Matching decomposes into three hooks so that one (query, repository
schema) pair is an addressable unit of work:

* :meth:`Matcher.prepare` — once per repository (e.g. clustering);
* :meth:`Matcher.begin_query` — once per query, after ``prepare`` (e.g.
  cluster nomination);
* :meth:`Matcher.match_pair` — the search over one repository schema.

:meth:`Matcher.match` drives the three in order; the sharded pipeline
(:mod:`repro.matching.pipeline`) drives the same hooks with ``prepare``
on the *full* repository and ``match_pair`` fanned out over shards, which
is why sharded results are identical to serial ones.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.core.answers import AnswerSet
from repro.errors import MatchingError
from repro.matching.mapping import Mapping
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.matrix import SimilaritySubstrate, substrate_enabled
from repro.schema.model import Schema
from repro.schema.repository import ElementHandle, SchemaRepository

if TYPE_CHECKING:  # pragma: no cover - pipeline imports this module
    from repro.matching.pipeline import PipelineResult
    from repro.schema.delta import DeltaReport

__all__ = ["Matcher"]


class Matcher(abc.ABC):
    """Abstract matching system."""

    #: short system name used in reports and the registry
    name: str = "abstract"

    #: True when :meth:`match_pair` results depend only on the (query,
    #: schema) pair, the configuration and the threshold — never on the
    #: rest of the repository.  Incremental re-matching after a
    #: repository delta (:mod:`repro.matching.evolution`) reuses stored
    #: pair results for content-unchanged schemas exactly when this
    #: holds; matchers with repository-global state (clustering builds
    #: clusters over the whole repository) must set it to False and get
    #: a full — still byte-identical — recompute instead.
    pair_local: bool = True

    def __init__(self, objective: ObjectiveFunction, max_answers: int = 500_000):
        self.objective = objective
        self.max_answers = max_answers

    @abc.abstractmethod
    def _match_schema(
        self, query: Schema, schema: Schema, delta_max: float
    ) -> Iterable[tuple[tuple[int, ...], float]]:
        """Yield ``(target_ids, score)`` for one repository schema."""

    def _substrate(self) -> SimilaritySubstrate | None:
        """The shared similarity substrate, or ``None`` when disabled.

        One substrate hangs off the objective function, so every matcher
        built against the same objective — the bounds precondition —
        shares precomputed score matrices and the repository token
        index.  Honours the process-wide switch
        (:func:`~repro.matching.similarity.matrix.substrate_enabled`):
        disabled, matchers fall back to the direct per-search
        computation path.
        """
        return self.objective.substrate() if substrate_enabled() else None

    def prepare(self, repository: SchemaRepository) -> None:
        """Repository-level precomputation hook (e.g. clustering).

        Called once per repository before matching.  The default builds
        the similarity substrate's token index for the repository
        (idempotent, keyed by content digest); overriding matchers with
        repository-global state of their own should call ``super()``.

        Corpus-sensitive similarity backends (docs/backends.md) freeze
        their repository statistics here even when the substrate switch
        is off — the statistics are part of the *score definition*, not
        an optimisation, so the substrate-on and substrate-off paths
        must see the identical frozen corpus.
        """
        substrate = self._substrate()
        if substrate is not None:
            substrate.prepare(repository)
        elif getattr(self.objective, "corpus_sensitive", False):
            self.objective.prepare_corpus(repository)

    def begin_query(self, query: Schema) -> None:
        """Optional per-query setup hook, run after :meth:`prepare`.

        Called once before a query's :meth:`match_pair` calls (e.g. the
        clustering matcher nominates clusters here); the default does
        nothing.
        """

    def match_pair(
        self, query: Schema, schema: Schema, delta_max: float
    ) -> list[tuple[tuple[int, ...], float]]:
        """Scored assignments ``(target_ids, score)`` for one repository schema.

        The unit of work the sharded pipeline caches and fans out.
        Requires :meth:`prepare` and :meth:`begin_query` to have run;
        :meth:`match` and the pipeline both guarantee that.
        """
        if delta_max < 0:
            raise MatchingError(f"delta_max must be >= 0, got {delta_max!r}")
        return list(self._match_schema(query, schema, delta_max))

    def check_capacity(self, count: int, delta_max: float) -> None:
        """Raise when an answer count exceeds ``max_answers``."""
        if count > self.max_answers:
            raise MatchingError(
                f"matcher {self.name!r} exceeded max_answers="
                f"{self.max_answers} at δ={delta_max}; lower the "
                "threshold or raise the limit"
            )

    def assemble(
        self,
        query: Schema,
        repository: SchemaRepository,
        pair_results: dict[str, list[tuple[tuple[int, ...], float]]],
        delta_max: float,
    ) -> AnswerSet:
        """Answer set from per-schema :meth:`match_pair` results.

        Builds mappings in repository order, so any producer of complete
        ``{schema_id: pair result}`` maps — :meth:`match` and the sharded
        pipeline — yields the identical answer set.
        """
        pairs: list[tuple[Mapping, float]] = []
        query_id = query.schema_id
        for schema in repository:
            results = pair_results[schema.schema_id]
            if not results:
                continue
            # One handle per schema element, shared by every mapping into
            # this schema — handles are frozen value objects, so aliasing
            # them is observationally identical to fresh construction.
            table = [ElementHandle(schema, j) for j in range(len(schema))]
            for target_ids, score in results:
                handles = tuple(map(table.__getitem__, target_ids))
                pairs.append(
                    (Mapping._from_search(query_id, handles, target_ids), score)
                )
            self.check_capacity(len(pairs), delta_max)
        return AnswerSet.from_pairs(pairs)

    def match(
        self, query: Schema, repository: SchemaRepository, delta_max: float
    ) -> AnswerSet:
        """Answer set ``A^δmax`` for the query over the whole repository."""
        if delta_max < 0:
            raise MatchingError(f"delta_max must be >= 0, got {delta_max!r}")
        self.prepare(repository)
        self.begin_query(query)
        pair_results: dict[str, list[tuple[tuple[int, ...], float]]] = {}
        count = 0
        for schema in repository:
            result = self.match_pair(query, schema, delta_max)
            count += len(result)
            self.check_capacity(count, delta_max)
            pair_results[schema.schema_id] = result
        return self.assemble(query, repository, pair_results, delta_max)

    def batch_match(
        self,
        queries: Sequence[Schema],
        repository: SchemaRepository,
        delta_max: float,
        *,
        workers: int | None = None,
        shards: int | None = None,
        cache: object | None = None,
        executor: object | None = None,
    ) -> list[AnswerSet]:
        """Answer sets for many queries via the sharded matching pipeline.

        ``workers`` worker processes fan the per-(query, shard) searches
        out (``None`` uses the module default set by
        :func:`repro.matching.pipeline.configure`; 1 is a deterministic
        serial fallback).  ``shards`` controls repository partitioning
        (default: one shard per worker) and ``cache`` the candidate cache
        (``None`` = shared module default, ``False`` = disabled, or a
        :class:`~repro.matching.pipeline.CandidateCache`).  Results are
        identical to ``[self.match(q, repository, delta_max) ...]``
        regardless of workers/shards/cache.
        """
        from repro.matching.pipeline import MatchingPipeline

        pipeline = MatchingPipeline(
            self, workers=workers, shards=shards, cache=cache,
            executor=executor,
        )
        return pipeline.run(queries, repository, delta_max).answer_sets

    def batch_rematch(
        self,
        queries: Sequence[Schema],
        repository: SchemaRepository,
        delta_max: float,
        *,
        previous: "PipelineResult",
        report: "DeltaReport",
        workers: int | None = None,
        shards: int | None = None,
        cache: object | None = None,
        executor: object | None = None,
    ) -> list[AnswerSet]:
        """Incremental :meth:`batch_match` after a repository delta.

        ``previous`` is the :class:`~repro.matching.pipeline
        .PipelineResult` of the last run against the delta's old
        repository and ``report`` the
        :class:`~repro.schema.delta.DeltaReport` from
        :meth:`~repro.schema.repository.SchemaRepository.apply`; only
        searches the delta can affect re-run, and the answer sets are
        byte-identical to a cold ``batch_match`` against ``repository``.
        For a stateful wrapper that tracks the previous result and
        repository across a whole delta stream, use
        :class:`~repro.matching.evolution.EvolutionSession`.
        """
        from repro.matching.pipeline import MatchingPipeline

        pipeline = MatchingPipeline(
            self, workers=workers, shards=shards, cache=cache
        )
        return pipeline.rematch(
            queries, repository, delta_max, previous=previous, report=report
        ).answer_sets

    def check_compatible(self, other: "Matcher") -> None:
        """Verify this matcher shares the objective function with another."""
        self.objective.check_same_as(other.objective)

    def describe(self) -> dict[str, object]:
        """System description for experiment records."""
        return {"system": self.name, "objective": self.objective.fingerprint()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"

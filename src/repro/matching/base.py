"""Matcher base class: a matching *system* in the paper's sense.

A matcher takes a matching problem (personal schema + repository +
threshold δ) and returns an :class:`~repro.core.answers.AnswerSet` of
scored :class:`~repro.matching.mapping.Mapping` objects.  All concrete
matchers score through the same :class:`ObjectiveFunction` instance they
are constructed with — sharing one objective across an original system
and its improvements is the precondition of the bounds technique, and
:func:`Matcher.check_compatible` enforces it.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable

from repro.core.answers import AnswerSet
from repro.errors import MatchingError
from repro.matching.mapping import Mapping
from repro.matching.objective import ObjectiveFunction
from repro.schema.model import Schema
from repro.schema.repository import ElementHandle, SchemaRepository

__all__ = ["Matcher"]


class Matcher(abc.ABC):
    """Abstract matching system."""

    #: short system name used in reports and the registry
    name: str = "abstract"

    def __init__(self, objective: ObjectiveFunction, max_answers: int = 500_000):
        self.objective = objective
        self.max_answers = max_answers

    @abc.abstractmethod
    def _match_schema(
        self, query: Schema, schema: Schema, delta_max: float
    ) -> Iterable[tuple[tuple[int, ...], float]]:
        """Yield ``(target_ids, score)`` for one repository schema."""

    def prepare(self, repository: SchemaRepository) -> None:
        """Optional repository-level precomputation hook (e.g. clustering).

        Called once per repository before matching; the default does
        nothing.
        """

    def match(
        self, query: Schema, repository: SchemaRepository, delta_max: float
    ) -> AnswerSet:
        """Answer set ``A^δmax`` for the query over the whole repository."""
        if delta_max < 0:
            raise MatchingError(f"delta_max must be >= 0, got {delta_max!r}")
        self.prepare(repository)
        pairs: list[tuple[Mapping, float]] = []
        for schema in repository:
            for target_ids, score in self._match_schema(query, schema, delta_max):
                handles = tuple(
                    ElementHandle(schema, target_id) for target_id in target_ids
                )
                pairs.append((Mapping(query.schema_id, handles), score))
                if len(pairs) > self.max_answers:
                    raise MatchingError(
                        f"matcher {self.name!r} exceeded max_answers="
                        f"{self.max_answers} at δ={delta_max}; lower the "
                        "threshold or raise the limit"
                    )
        return AnswerSet.from_pairs(pairs)

    def check_compatible(self, other: "Matcher") -> None:
        """Verify this matcher shares the objective function with another."""
        self.objective.check_same_as(other.objective)

    def describe(self) -> dict[str, object]:
        """System description for experiment records."""
        return {"system": self.name, "objective": self.objective.fingerprint()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"

"""The objective function Δ (paper section 2.1).

Δ "computes how different two schemas are": lower is better, and the
answer set at threshold δ is everything scoring at most δ.  The cost of a
mapping combines

* per-element cost — name dissimilarity blended with a datatype penalty,
  averaged over the query elements, and
* structure cost — the fraction of query parent/child edges whose
  ancestry the mapping does not preserve,

yielding a score in [0, 1].  Everything the bounds technique assumes
hangs on S1 and S2 sharing this function, so :class:`ObjectiveFunction`
carries a configuration fingerprint and an equality check that matchers
use to refuse mixed-objective analyses
(:class:`~repro.errors.ObjectiveMismatchError`).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import MatchingError, ObjectiveMismatchError
from repro.matching.mapping import Mapping
from repro.matching.similarity.backends import (
    LexicalBackend,
    SimilarityBackend,
    backends_enabled,
)
from repro.matching.similarity.datatype import datatype_penalty
from repro.matching.similarity.name import NameSimilarity
from repro.matching.similarity.structure import ancestry_violations, query_edges
from repro.schema.model import Schema, SchemaElement
from repro.schema.repository import ElementHandle, SchemaRepository

__all__ = ["ObjectiveWeights", "ObjectiveFunction"]

# Scores are rounded so that algebraically identical costs computed along
# different code paths (exhaustive vs beam vs clustering) compare equal.
_SCORE_DECIMALS = 9


@dataclass(frozen=True)
class ObjectiveWeights:
    """Relative weights of the objective's components.

    ``name`` and ``datatype`` weigh the two parts of the per-element
    cost (normalised internally); ``structure`` in [0, 1) is the share of
    the total cost charged to ancestry violations.
    """

    name: float = 0.8
    datatype: float = 0.2
    structure: float = 0.25

    def __post_init__(self) -> None:
        if self.name < 0 or self.datatype < 0:
            raise MatchingError("component weights must be non-negative")
        if self.name + self.datatype <= 0:
            raise MatchingError("name + datatype weight must be positive")
        if not 0 <= self.structure < 1:
            raise MatchingError(
                f"structure weight must be in [0, 1), got {self.structure!r}"
            )


class ObjectiveFunction:
    """Δ: mapping -> [0, 1]; shared by the original system and improvements."""

    def __init__(
        self,
        name_similarity: NameSimilarity,
        weights: ObjectiveWeights | None = None,
        backend: SimilarityBackend | None = None,
    ):
        self.name_similarity = name_similarity
        self.weights = weights or ObjectiveWeights()
        # The name-score plane is pluggable (docs/backends.md); the
        # default wraps ``name_similarity`` itself, fingerprint and all,
        # so an objective built without an explicit backend is the
        # pre-backend objective, byte for byte.
        self.backend = backend if backend is not None else LexicalBackend(
            name_similarity
        )
        total = self.weights.name + self.weights.datatype
        self._name_share = self.weights.name / total
        self._datatype_share = self.weights.datatype / total
        self._substrate = None

    def with_backend(self, backend: SimilarityBackend) -> "ObjectiveFunction":
        """A new objective scoring names through ``backend``.

        Shares the name similarity (clustering and the hybrid matcher
        nominate through it regardless of backend) and the weights, but
        nothing cached: the derived objective gets its own substrate,
        because matrices and kernel rows scored under one backend must
        never be served to another.
        """
        return ObjectiveFunction(
            self.name_similarity, self.weights, backend=backend
        )

    def substrate(self):
        """The similarity substrate shared by every matcher on this Δ.

        Lazily created
        :class:`~repro.matching.similarity.matrix.SimilaritySubstrate`.
        Hanging it off the objective makes sharing automatic: matchers
        must already share one objective instance (the bounds
        precondition), so they get one matrix/index cache for free.
        """
        if self._substrate is None:
            from repro.matching.similarity.matrix import SimilaritySubstrate

            self._substrate = SimilaritySubstrate(self)
        return self._substrate

    def fingerprint(self) -> str:
        """Configuration identity string.

        Two matchers share an objective function exactly when their
        fingerprints are equal; the bounds pipeline enforces this, and
        the candidate cache keys results on it.  Weights are rendered at
        full ``repr`` precision — rounding here would let two objectives
        that *score differently* share cache entries.  The name plane's
        identity is the backend's fingerprint: for the default
        :class:`~repro.matching.similarity.backends.LexicalBackend` that
        is the wrapped name similarity's fingerprint verbatim, so
        default-configured objectives fingerprint exactly as they did
        before backends existed (pre-backend snapshots keep loading).
        """
        return (
            f"delta(name={self._name_share!r},dt={self._datatype_share!r},"
            f"struct={self.weights.structure!r};"
            f"{self.backend.fingerprint()})"
        )

    # -- corpus hooks (corpus-sensitive backends only) -----------------------

    @property
    def corpus_sensitive(self) -> bool:
        """Whether name scores depend on repository-wide statistics."""
        return self.backend.corpus_sensitive

    def corpus_token(self) -> str:
        """The backend's frozen-corpus digest (``""`` when corpus-free)."""
        return self.backend.corpus_token()

    def prepare_corpus(
        self, repository: SchemaRepository, index=None
    ) -> None:
        """Freeze the backend's corpus statistics for ``repository``.

        Idempotent per repository content digest; the substrate calls
        this from :meth:`~repro.matching.similarity.matrix
        .SimilaritySubstrate.prepare` (passing its token index) and
        drops cached matrices and kernel rows when the corpus token
        moved.  A no-op for corpus-insensitive backends.
        """
        self.backend.prepare(repository, index)

    def check_same_as(self, other: "ObjectiveFunction") -> None:
        """Raise :class:`ObjectiveMismatchError` unless configured identically."""
        if self.fingerprint() != other.fingerprint():
            raise ObjectiveMismatchError(
                "systems do not share an objective function:\n"
                f"  {self.fingerprint()}\n  {other.fingerprint()}"
            )

    # -- element level -----------------------------------------------------

    def element_cost(self, query_element: SchemaElement, target: ElementHandle) -> float:
        """Cost in [0, 1] of mapping one query element onto one target."""
        return self.label_cost(
            query_element.name,
            query_element.datatype,
            target.name,
            target.datatype,
        )

    def label_cost(
        self,
        query_name: str,
        query_datatype,
        target_name: str,
        target_datatype,
    ) -> float:
        """Element cost from labels and datatypes alone.

        The *single* definition of the per-element cost expression:
        :meth:`element_cost` and the repository scoring kernel
        (:class:`~repro.matching.similarity.kernel.CostKernel`) both
        evaluate through here, so a kernel row entry is the bit-identical
        float the direct per-pair path would produce.  Name similarity
        depends only on the *normalised* labels (and is memoised on
        them), which is what licenses the kernel to compute one cost per
        distinct (normalised label, datatype) pair per repository.
        """
        backend = self.backend
        if backend.kind == "lexical" and not backends_enabled():
            # the pre-backend direct path, kept live as the A/B
            # reference of the refactoring seam; identical to the
            # LexicalBackend route by construction (it delegates), which
            # the backend property suite asserts byte for byte
            name_score = self.name_similarity.similarity(query_name, target_name)
        else:
            name_score = backend.similarity(query_name, target_name)
        name_cost = 1.0 - name_score
        type_cost = datatype_penalty(query_datatype, target_datatype)
        return self._name_share * name_cost + self._datatype_share * type_cost

    def label_cost_row(
        self,
        query_name: str,
        query_datatype,
        targets,
    ) -> list[float]:
        """One query label's costs against many ``(label, datatype)`` targets.

        The row-materialisation primitive of the repository scoring
        kernel: every entry evaluates through :meth:`label_cost`, so the
        row holds the bit-identical floats of the per-pair path.  This
        stays a python loop even on the numpy execution path — name
        similarity is memoised string work, not arithmetic — which is
        why the kernel's ``array('d')`` rows remain the spec storage the
        vector views are built over, never the other way around.
        """
        label_cost = self.label_cost
        return [
            label_cost(query_name, query_datatype, target_name, target_datatype)
            for target_name, target_datatype in targets
        ]

    def cost_matrix(self, query: Schema, target_schema: Schema) -> list[list[float]]:
        """``matrix[i][j]`` = element cost of query element i on target j."""
        elements = query.elements()
        targets = [
            ElementHandle(target_schema, j) for j in range(len(target_schema))
        ]
        return [
            [self.element_cost(element, target) for target in targets]
            for element in elements
        ]

    # -- mapping level -------------------------------------------------------

    def structure_cost(
        self, query: Schema, target_schema: Schema, target_ids: Sequence[int]
    ) -> float:
        """Fraction of query edges violated by a full assignment."""
        edges = query_edges(query)
        if not edges:
            return 0.0
        violations, decided = ancestry_violations(query, target_schema, target_ids)
        if decided != len(edges):
            raise MatchingError("structure cost of a full mapping needs all targets")
        return violations / len(edges)

    def combine(
        self, element_cost_sum: float, query_size: int, structure_cost: float
    ) -> float:
        """Total Δ from the two aggregated components (shared by all matchers)."""
        sw = self.weights.structure
        average = element_cost_sum / query_size
        return round((1.0 - sw) * average + sw * structure_cost, _SCORE_DECIMALS)

    def mapping_cost(self, query: Schema, mapping: Mapping) -> float:
        """Δ of a complete mapping (the canonical scoring entry point)."""
        if len(mapping.targets) != len(query):
            raise MatchingError(
                f"mapping has {len(mapping.targets)} targets for a query of "
                f"size {len(query)}"
            )
        element_sum = sum(
            self.element_cost(query.element(i), mapping.targets[i])
            for i in range(len(query))
        )
        structure = self.structure_cost(
            query, mapping.target_schema, mapping.target_ids
        )
        return self.combine(element_sum, len(query), structure)

"""Hybrid improvement: cluster restriction + beam search combined.

The paper evaluates improvements one technique at a time; an obvious
follow-up (its "quickly evaluating many ... algorithms" use case) is
composing them: restrict the candidate space to nominated clusters *and*
bound the frontier with a beam.  Both component techniques keep the
shared objective function, so their composition does too — the answer set
is a subset of each component's and hence of the exhaustive system's, and
the bounds technique applies unchanged.

The composition's answer-size-ratio curve is dominated by the stricter of
its components at every threshold, which the test suite asserts.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import MatchingError
from repro.matching.clustering import ClusteringMatcher
from repro.matching.engine import SchemaSearch
from repro.matching.objective import ObjectiveFunction
from repro.schema.model import Schema

__all__ = ["HybridMatcher"]


class HybridMatcher(ClusteringMatcher):
    """Cluster-restricted beam search (composition of two improvements).

    Inherits the cluster nomination machinery; replaces the exact search
    within the nominated clusters by a beam of the given width.
    """

    name = "hybrid"

    def __init__(
        self,
        objective: ObjectiveFunction,
        clusters_per_element: int = 3,
        join_threshold: float = 0.55,
        beam_width: int = 8,
        max_answers: int = 500_000,
    ):
        super().__init__(
            objective,
            clusters_per_element=clusters_per_element,
            join_threshold=join_threshold,
            max_answers=max_answers,
        )
        if beam_width < 1:
            raise MatchingError(f"beam_width must be >= 1, got {beam_width!r}")
        self.beam_width = beam_width

    def _match_schema(
        self, query: Schema, schema: Schema, delta_max: float
    ) -> Iterable[tuple[tuple[int, ...], float]]:
        allowed_keys = self._current_allowed
        if allowed_keys is None:
            raise MatchingError("internal error: cluster nomination missing")
        in_schema = [
            element_id
            for element_id in range(len(schema))
            if (schema.schema_id, element_id) in allowed_keys
        ]
        if len(in_schema) < len(query):
            return
        allowed = [in_schema] * len(query)
        search = SchemaSearch(
            query, schema, self.objective, allowed=allowed,
            substrate=self._substrate(),
        )
        yield from search.beam(delta_max, self.beam_width)

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["beam_width"] = self.beam_width
        return description

"""Persistent matching service: async single-query serving over asyncio.

Everything below this layer is batch-shaped: the pipeline wants many
queries at once, the evolution session wants a fixed query set, and a
process restart forgets all of it.  Production traffic is the opposite —
single-query requests arriving concurrently against a repository that
keeps evolving, from a process that must come back fast after a restart.
:class:`MatchingService` is the adapter:

* **Micro-batching** — concurrent :meth:`MatchingService.match` calls
  park on futures; a dispatcher coalesces everything pending (optionally
  waiting ``max_delay`` seconds for stragglers), dedupes identical
  queries by content digest, and dispatches the distinct ones in chunks
  of ``max_batch`` through the session's
  :class:`~repro.matching.pipeline.MatchingPipeline` — the exact engine
  behind :meth:`~repro.matching.base.Matcher.batch_match`, persistent
  worker pool included.
* **Retained-state serving** — every answered query's pair results stay
  in the session, so a repeated query is answered from memory without
  any search, and repository deltas re-match all retained queries
  incrementally (:meth:`MatchingService.apply_delta` →
  :meth:`EvolutionSession.apply`, the ``batch_rematch`` path).
* **Snapshot lifecycle** — given a snapshot store, :meth:`start`
  warm-starts from disk in O(load) (repository, substrate, retained
  results — all integrity- and fingerprint-checked, failing loudly on
  any mismatch), and :meth:`checkpoint` / ``checkpoint_every`` write the
  current state back, so the next process restart skips the cold start.

The contract the serving tests enforce for all five matchers: **every
answer the service returns — before and after live deltas — is
byte-identical to the offline** ``batch_match`` / ``batch_rematch``
**path.**  The service adds scheduling, never arithmetic: state
transitions (micro-batch matching, delta application, checkpointing)
serialize on one lock, so each answer reflects exactly one repository
version, computed by the same pipeline code the offline path runs.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path

from repro.core.answers import AnswerSet
from repro.errors import MatchingError, SnapshotError
from repro.matching.base import Matcher
from repro.matching.evolution import EvolutionSession
from repro.matching.executor import ShardExecutor
from repro.matching.pipeline import CandidateCache
from repro.matching.similarity.persist import load_snapshot, save_snapshot
from repro.schema.delta import DeltaReport, RepositoryDelta
from repro.schema.model import Schema
from repro.schema.repository import SchemaRepository
from repro.schema.store import SnapshotStore

__all__ = ["MatchingService", "ServiceStats"]


@dataclass
class ServiceStats:
    """Execution counters of one :class:`MatchingService`."""

    #: requests accepted by :meth:`MatchingService.match`
    requests: int = 0
    #: requests answered from retained state (no search ran)
    served_from_state: int = 0
    #: requests merged into an in-flight duplicate of the same content
    coalesced: int = 0
    #: micro-batches dispatched through the pipeline
    batches: int = 0
    #: distinct queries matched across all micro-batches
    batched_queries: int = 0
    #: largest single micro-batch dispatched
    max_batched: int = 0
    #: repository deltas applied live
    deltas_applied: int = 0
    #: snapshots written by checkpointing
    checkpoints_written: int = 0
    #: true when :meth:`start` restored state from a snapshot
    warm_start: bool = False
    #: score matrices adopted from the snapshot at warm start
    matrices_restored: int = 0


class MatchingService:
    """Async front-end over one matcher, one threshold, one repository.

    Parameters
    ----------
    matcher, delta_max:
        The system and threshold every request is answered under.
    store:
        Optional snapshot location (path or
        :class:`~repro.schema.store.SnapshotStore`).  :meth:`start`
        warm-starts from it when it holds a snapshot; :meth:`checkpoint`
        writes back to it.
    max_batch:
        Most distinct queries dispatched in one pipeline run.
    max_delay:
        Seconds the dispatcher waits for more requests before
        dispatching a non-full micro-batch (0 = dispatch whatever one
        event-loop tick accumulated).
    workers, shards, cache, executor:
        Forwarded to the underlying pipeline, as in
        :meth:`~repro.matching.base.Matcher.batch_match`; ``executor``
        selects the shard transport (e.g. a
        :class:`~repro.matching.remote.RemoteShardExecutor`).
    checkpoint_every:
        Write a snapshot automatically after every N applied deltas
        (``None`` = only on explicit :meth:`checkpoint`).
    """

    def __init__(
        self,
        matcher: Matcher,
        delta_max: float,
        *,
        store: SnapshotStore | str | Path | None = None,
        max_batch: int = 32,
        max_delay: float = 0.0,
        workers: int | None = None,
        shards: int | None = None,
        cache: CandidateCache | bool | None = None,
        executor: ShardExecutor | None = None,
        checkpoint_every: int | None = None,
    ):
        if delta_max < 0:
            raise MatchingError(f"delta_max must be >= 0, got {delta_max!r}")
        if max_batch < 1:
            raise MatchingError(f"max_batch must be >= 1, got {max_batch!r}")
        if max_delay < 0:
            raise MatchingError(f"max_delay must be >= 0, got {max_delay!r}")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise MatchingError(
                f"checkpoint_every must be >= 1, got {checkpoint_every!r}"
            )
        self.matcher = matcher
        self.delta_max = delta_max
        self.store = (
            store
            if store is None or isinstance(store, SnapshotStore)
            else SnapshotStore(store)
        )
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.checkpoint_every = checkpoint_every
        self.stats = ServiceStats()
        self._pipeline_options = {
            "workers": workers, "shards": shards, "cache": cache,
            "executor": executor,
        }
        self._session: EvolutionSession | None = None
        self._repository: SchemaRepository | None = None
        self._by_digest: dict[str, int] = {}
        self._pending: list[tuple[Schema, asyncio.Future]] = []
        self._wake: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._lock: asyncio.Lock | None = None
        self._stopping = False

    # -- state accessors -----------------------------------------------------

    @property
    def repository(self) -> SchemaRepository:
        """The repository version requests are currently answered against."""
        if self._repository is None:
            raise MatchingError("service has no repository yet; call start()")
        return self._repository

    @property
    def retained_queries(self) -> list[Schema]:
        """Every distinct query the service has answered (serving state)."""
        return list(self._session.queries) if self._session else []

    @property
    def started(self) -> bool:
        return self._task is not None

    def status(self) -> str:
        """One operator status line: service state + the executor's.

        The single-service face of the graceful-degradation surface
        (``repro-bounds serve --status``); :meth:`ReplicaGroup.status
        <repro.matching.replication.ReplicaGroup.status>` is the
        replicated one.
        """
        if not self.started:
            line = "service: stopped"
        else:
            line = (
                f"service: up, {self.stats.requests} requests, "
                f"{self.stats.deltas_applied} deltas, "
                f"{len(self._pending)} pending"
            )
        executor = self._pipeline_options.get("executor")
        if executor is not None:
            line += " | " + executor.status()
        return line

    # -- lifecycle -----------------------------------------------------------

    async def start(self, repository: SchemaRepository | None = None) -> None:
        """Bring the service up: warm from the store, or cold on ``repository``.

        When the store holds a snapshot, the repository, substrate and
        retained results are restored from it — any corruption, format
        drift or fingerprint mismatch raises
        :class:`~repro.errors.SnapshotError` (never a silent cold
        start), and a ``repository`` argument, if also given, must be
        content-identical to the snapshot's.  Without a snapshot,
        ``repository`` is required and the service cold-starts (one
        ``prepare`` pass, no matching until requests arrive).

        Starting after a :meth:`stop` begins a **fresh run**: retained
        serving state and the stats counters reset, so a restart onto a
        different repository can never serve answers computed against
        the previous one (state that should survive restarts is exactly
        what the snapshot store persists).
        """
        if self._task is not None:
            raise MatchingError("service is already started")
        self._session = None
        self._repository = None
        self._by_digest = {}
        self.stats = ServiceStats()
        loop = asyncio.get_running_loop()
        if self.store is not None and self.store.exists():
            # load off the event loop, like checkpoint/apply_delta — a
            # large snapshot must not stall co-hosted coroutines
            snapshot = await loop.run_in_executor(  # may raise, loudly
                None, load_snapshot, self.store, self.matcher
            )
            if (
                snapshot.result is not None
                and snapshot.result.delta_max != self.delta_max
            ):
                raise SnapshotError(
                    "snapshot retains results at "
                    f"δmax={snapshot.result.delta_max!r}; this service "
                    f"serves δmax={self.delta_max!r}"
                )
            if (
                repository is not None
                and repository.content_digest()
                != snapshot.repository.content_digest()
            ):
                raise SnapshotError(
                    "start() was given a repository that differs from the "
                    "snapshot's (content digests differ); drop one of the "
                    "two sources of truth"
                )
            self._repository = snapshot.repository
            if snapshot.result is not None:
                self._session = EvolutionSession.from_state(
                    self.matcher,
                    snapshot.repository,
                    snapshot.result,
                    snapshot.queries,
                    **self._pipeline_options,
                )
                self._by_digest = {
                    digest: index
                    for index, digest in enumerate(
                        snapshot.result.query_digests
                    )
                }
            self.stats.warm_start = True
            self.stats.matrices_restored = snapshot.matrices_restored
        elif repository is not None:
            self._repository = repository
            await loop.run_in_executor(None, self.matcher.prepare, repository)
        else:
            raise MatchingError(
                "cold start needs a repository (the store holds no snapshot)"
            )
        self._stopping = False
        self._wake = asyncio.Event()
        self._lock = asyncio.Lock()
        self._task = loop.create_task(self._dispatch())

    async def stop(self, *, drain: bool = True) -> None:
        """Stop the dispatcher (idempotent); by default, drain first.

        With ``drain`` (the default), one event-loop tick of grace lets
        requests that were already scheduled (e.g. via
        ``ensure_future``) enqueue before the accept-gate closes;
        everything pending at that point is answered before the
        dispatcher exits — no request future is ever dropped.

        With ``drain=False`` — a replica leaving its group, an
        emergency teardown — nothing more is answered: every queued
        request future fails with
        :class:`~repro.errors.MatchingError` immediately.  Futures
        still fail loudly rather than hang; they are just not served.
        """
        if self._task is None:
            return
        if drain:
            await asyncio.sleep(0)  # grace tick for already-scheduled match()es
        else:
            pending, self._pending = self._pending, []
            for _query, future in pending:
                if not future.done():
                    future.set_exception(
                        MatchingError("service stopped without draining")
                    )
        self._stopping = True
        self._wake.set()
        await self._task
        self._task = None

    # -- serving -------------------------------------------------------------

    async def match(self, query: Schema) -> AnswerSet:
        """The answer set ``A^δmax`` for one query — the serving entry point.

        Requests arriving concurrently are micro-batched; identical
        queries (by content digest) are answered once and shared.  The
        returned answer set is byte-identical to
        ``matcher.batch_match([query], service.repository, δmax)``.
        """
        if self._task is None or self._stopping:
            raise MatchingError("service is not accepting requests")
        future = asyncio.get_running_loop().create_future()
        self._pending.append((query, future))
        self.stats.requests += 1
        self._wake.set()
        return await future

    async def _dispatch(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if (
                self.max_delay > 0
                and not self._stopping
                and len(self._pending) < self.max_batch
            ):
                await asyncio.sleep(self.max_delay)  # coalescing window
            batch, self._pending = self._pending, []
            if batch:
                try:
                    await self._process(batch)
                except Exception as exc:  # noqa: BLE001 - keep dispatching
                    # the dispatcher must survive anything one batch
                    # throws: fail that batch's futures, serve the next
                    for _query, future in batch:
                        if not future.done():
                            future.set_exception(exc)
            if self._stopping and not self._pending:
                return

    async def _process(
        self, batch: list[tuple[Schema, asyncio.Future]]
    ) -> None:
        async with self._lock:
            fresh: dict[str, Schema] = {}
            waiting: dict[str, list[asyncio.Future]] = {}
            for query, future in batch:
                if future.done():
                    continue
                try:
                    digest = query.content_digest()
                except Exception as exc:  # noqa: BLE001 - bad request
                    # a malformed request fails its own future; it must
                    # never take the dispatcher (and every later
                    # request) down with it
                    future.set_exception(exc)
                    continue
                index = self._by_digest.get(digest)
                if index is not None:
                    future.set_result(self._session.answer_sets[index])
                    self.stats.served_from_state += 1
                    continue
                if digest in fresh:
                    self.stats.coalesced += 1
                else:
                    fresh[digest] = query
                waiting.setdefault(digest, []).append(future)
            digests = list(fresh)
            for chunk_start in range(0, len(digests), self.max_batch):
                chunk = digests[chunk_start:chunk_start + self.max_batch]
                queries = [fresh[digest] for digest in chunk]
                try:
                    answers = await asyncio.get_running_loop().run_in_executor(
                        None, self._match_new, queries
                    )
                except Exception as exc:  # noqa: BLE001 - fail the waiters
                    for digest in chunk:
                        for future in waiting[digest]:
                            if not future.done():
                                future.set_exception(exc)
                    continue
                self.stats.batches += 1
                self.stats.batched_queries += len(queries)
                self.stats.max_batched = max(
                    self.stats.max_batched, len(queries)
                )
                for digest, answer in zip(chunk, answers):
                    for future in waiting[digest]:
                        if not future.done():
                            future.set_result(answer)

    def _match_new(self, queries: list[Schema]) -> list[AnswerSet]:
        """Match a chunk of unseen queries; extends the retained session."""
        if self._session is None:
            # adopt the session only once its baseline match succeeded —
            # a failed first batch must leave the service fresh, not
            # wedged on a session that has no result
            session = EvolutionSession(
                self.matcher, queries, self.delta_max,
                **self._pipeline_options,
            )
            answers = session.match(self._repository).answer_sets
            self._session = session
        else:
            answers = self._session.extend(queries)
        base = len(self._by_digest)
        for offset, query in enumerate(queries):
            self._by_digest[query.content_digest()] = base + offset
        return answers

    # -- evolution -----------------------------------------------------------

    async def apply_delta(self, delta: RepositoryDelta) -> DeltaReport:
        """Evolve the repository live; retained queries re-match incrementally.

        Serialized against in-flight micro-batches, so no request is
        ever answered half against the old and half against the new
        version.  Retained answers advance through
        :meth:`EvolutionSession.apply` (the ``batch_rematch`` path —
        byte-identical to a cold re-match); when ``checkpoint_every`` is
        set, every Nth delta also writes a snapshot.
        """
        if self._task is None:
            raise MatchingError("service is not started")
        async with self._lock:
            loop = asyncio.get_running_loop()
            if self._session is None:
                repository, report = self.repository.apply(delta)
                await loop.run_in_executor(
                    None, self.matcher.prepare, repository
                )
                self._repository = repository
            else:
                _result, report = await loop.run_in_executor(
                    None, self._session.apply, delta
                )
                self._repository = self._session.repository
            self.stats.deltas_applied += 1
            if (
                self.checkpoint_every is not None
                and self.store is not None
                and self.stats.deltas_applied % self.checkpoint_every == 0
            ):
                await loop.run_in_executor(None, self._write_snapshot)
            return report

    # -- snapshots -----------------------------------------------------------

    async def checkpoint(self) -> SnapshotStore:
        """Write the current state to the snapshot store."""
        if self.store is None:
            raise MatchingError("service was built without a snapshot store")
        if self._repository is None:
            raise MatchingError("service has no state to snapshot; call start()")
        async with self._lock:
            await asyncio.get_running_loop().run_in_executor(
                None, self._write_snapshot
            )
        return self.store

    def _write_snapshot(self) -> None:
        save_snapshot(
            self.store,
            self._repository,
            queries=self._session.queries if self._session else [],
            result=self._session.result if self._session else None,
            substrate=self.matcher.objective.substrate(),
        )
        self.stats.checkpoints_written += 1

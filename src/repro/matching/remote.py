"""Socket shard workers: the pipeline's fan-out over remote nodes.

This module extends the :class:`~repro.matching.executor.ShardExecutor`
seam across machine boundaries.  A :class:`WorkerServer` (started by the
``repro worker`` CLI subcommand, or in-process for tests) holds exactly
the state a pooled worker process holds — matcher, queries, the
repository's schema table, the A/B switches — installed **one-shot** and
reused while the coordinator's ``state_key`` matches; a
:class:`RemoteShardExecutor` on the coordinator fans the same
``(query_index, schema_ids, delta_max)`` work units out to N workers and
streams their results back in completion order.

Wire format
-----------
Every message is one **frame**::

    b"RPW1" | uint32 BE payload length | 16-byte blake2b digest | payload

The digest covers the payload bytes; :func:`recv_message` re-hashes what
it read and refuses mismatches, so truncation, tampering, bit rot and
desynchronised streams all surface as a loud
:class:`~repro.errors.TransportError` — **never** as a silently wrong
answer.  Payloads are pickled dicts with an ``"op"`` key; pickle is an
explicit trust statement: this protocol connects nodes of *one* cluster
under one operator, it is not an internet-facing surface.

State install happens in one of two modes:

* ``inline`` — the coordinator ships matcher, queries and schema table
  in the install frame, exactly the pool initializer's payload.
* ``store`` — the coordinator ships only the matcher configuration plus
  the path of a shared :class:`~repro.schema.store.SnapshotStore` and
  the expected content digests; the worker **pulls** the repository,
  queries and the persisted substrate/kernel payload by digest from the
  store (every read byte-digest-verified) and refuses digests that do
  not match the coordinator's.  This is how heavy substrate/kernel
  payloads reach many workers without N copies crossing one socket.

Failure semantics on the coordinator: a worker that dies mid-unit gets
its unit re-enqueued and picked up by a healthy worker (answers are
byte-identical by the executor contract, so a retry is invisible in the
output); when *every* worker is gone with units still outstanding,
``execute`` raises :class:`~repro.errors.TransportError`.

Concurrency model: the coordinator fans out on **asyncio** — one
event loop on one background thread, one coroutine per worker, with
:func:`async_send_message`/:func:`async_recv_message` as the stream
twins of the blocking framing helpers — so N workers cost one thread,
not N.  A worker runs up to ``parallel_units`` units concurrently by
keeping that many private state *slots* (eagerly cloned at install
time); a reinstall waits for in-flight units to drain before flipping
the process-wide A/B switches, so no unit ever runs under mixed
switches.

Liveness: every remote op runs under a per-op deadline from the
coordinator's :class:`DeadlineBudget` — a hung socket can delay a sweep
by at most one deadline, never hang it — and the coordinator keeps a
per-address :class:`WorkerHealth` circuit breaker: a failing worker's
breaker **opens** (the fan-out skips the address instead of re-dialing
it every sweep), cools down under exponential backoff with jitter,
**half-opens** to probe once the cooldown elapses, and closes again on
success.  When every configured address sits behind an open breaker,
:meth:`RemoteShardExecutor.execute` refuses loudly rather than dialing
into a known-dead cluster.  None of this touches the byte-identity
contract: an expired deadline is handled exactly like a crashed worker
(the unit is re-enqueued for a healthy peer, or the sweep raises
:class:`~repro.errors.TransportError`).
"""

from __future__ import annotations

import asyncio
import hashlib
import pickle
import random
import socket
import struct
import threading
import time
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path
from queue import Queue

from repro.errors import SnapshotError, TransportError
from repro.matching.executor import (
    ExecutionState,
    ShardExecutor,
    apply_switches,
    clone_worker_state,
    run_unit_with,
)
from repro.matching.similarity.persist import (
    restore_substrate,
    save_snapshot,
)
from repro.schema.store import SnapshotStore

__all__ = [
    "MAGIC",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "DeadlineBudget",
    "ExecutorStats",
    "RemoteShardExecutor",
    "WorkerHealth",
    "WorkerServer",
    "WorkerStats",
    "async_recv_message",
    "async_send_message",
    "parse_address",
    "recv_message",
    "send_message",
]

MAGIC = b"RPW1"
PROTOCOL_VERSION = 1
#: frame size cap — far above any real install payload, far below
#: anything that could be a desynchronised stream read as a length
MAX_FRAME = 1 << 30

_HEADER = struct.Struct("!4sI16s")


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def _digest(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=16).digest()


def send_message(sock: socket.socket, message: object) -> None:
    """Pickle ``message`` and send it as one digest-framed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise TransportError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(MAX_FRAME is {MAX_FRAME})"
        )
    try:
        sock.sendall(_HEADER.pack(MAGIC, len(payload), _digest(payload)))
        sock.sendall(payload)
    except OSError as exc:
        raise TransportError(f"send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks: list[bytes] = []
    remaining = size
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise TransportError(f"receive failed: {exc}") from exc
        if not chunk:
            got = size - remaining
            raise TransportError(
                f"connection closed mid-frame ({got}/{size} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


#: sentinel returned by :func:`recv_message` on a clean end-of-stream
CLOSED = object()


def recv_message(
    sock: socket.socket,
    *,
    eof_ok: bool = False,
    mid_frame_timeout: float | None = None,
) -> object:
    """Receive one frame; verify its digest; unpickle the payload.

    A connection that closes cleanly *between* frames returns
    :data:`CLOSED` when ``eof_ok`` is set (the server's idle-peer case)
    and raises :class:`TransportError` otherwise (a coordinator mid-
    conversation).  *Any* other irregularity — EOF mid-frame, foreign
    magic, oversized length, payload bytes that do not hash to the
    header digest, a digest-valid payload that does not unpickle —
    raises :class:`TransportError`.

    ``mid_frame_timeout`` bounds how long a peer may stall **inside** a
    frame: the wait for a frame's *first* byte stays unbounded (an idle
    coordinator between sweeps is healthy), but once a frame has
    started, every further byte must arrive within the timeout or the
    peer is treated as hung and the read fails loudly.
    """
    try:
        if mid_frame_timeout is not None:
            sock.settimeout(None)  # idle between frames may wait forever
        first = sock.recv(1)
    except OSError as exc:
        raise TransportError(f"receive failed: {exc}") from exc
    if not first:
        if eof_ok:
            return CLOSED
        raise TransportError("connection closed before a frame arrived")
    if mid_frame_timeout is not None:
        # a started frame must keep flowing: a peer that goes silent
        # mid-frame must not pin this reader (or block a server's
        # stop()) forever
        try:
            sock.settimeout(mid_frame_timeout)
        except OSError as exc:
            raise TransportError(f"receive failed: {exc}") from exc
    header = first + _recv_exact(sock, _HEADER.size - 1)
    magic, length, digest = _HEADER.unpack(header)
    if magic != MAGIC:
        raise TransportError(
            f"foreign frame magic {magic!r} (desynchronised or non-RPW peer)"
        )
    if length > MAX_FRAME:
        raise TransportError(
            f"frame announces {length} bytes (MAX_FRAME is {MAX_FRAME})"
        )
    payload = _recv_exact(sock, length)
    if _digest(payload) != digest:
        raise TransportError(
            "frame payload does not hash to its header digest "
            "(tampered, corrupted, or desynchronised stream)"
        )
    return _loads(payload)


def _loads(payload: bytes) -> object:
    """Unpickle a digest-verified payload; refuse garbage loudly.

    A digest only proves the bytes arrived as sent — a peer can still
    *send* bytes that are not a pickle at all, and that must surface as
    a :class:`TransportError`, not as an :class:`pickle.UnpicklingError`
    escaping the protocol layer.
    """
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise TransportError(
            "frame payload passed its digest check but is not a valid "
            f"message ({type(exc).__name__}: {exc})"
        ) from exc


def parse_address(address: "str | tuple[str, int]") -> tuple[str, int]:
    """``"host:port"`` or ``(host, port)`` → ``(host, port)``."""
    if isinstance(address, tuple):
        if len(address) != 2:
            raise TransportError(
                f"worker address {address!r} is not a (host, port) pair"
            )
        host, port = address
        try:
            return host, int(port)
        except (TypeError, ValueError) as exc:
            raise TransportError(
                f"worker address {address!r} has a non-numeric port"
            ) from exc
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise TransportError(
            f"worker address {address!r} is not of the form host:port"
        )
    try:
        return host, int(port)
    except ValueError as exc:
        raise TransportError(
            f"worker address {address!r} has a non-numeric port"
        ) from exc


async def async_send_message(
    writer: asyncio.StreamWriter, message: object
) -> None:
    """:func:`send_message` over an asyncio stream — same frame, same checks."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise TransportError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(MAX_FRAME is {MAX_FRAME})"
        )
    writer.write(_HEADER.pack(MAGIC, len(payload), _digest(payload)))
    writer.write(payload)
    try:
        await writer.drain()
    except OSError as exc:
        raise TransportError(f"send failed: {exc}") from exc


async def async_recv_message(reader: asyncio.StreamReader) -> object:
    """:func:`recv_message` over an asyncio stream — same frame, same checks.

    The coordinator is always mid-conversation when it reads, so there
    is no ``eof_ok`` mode here: *any* EOF raises
    :class:`~repro.errors.TransportError`.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise TransportError(
                "connection closed before a frame arrived"
            ) from exc
        raise TransportError(
            f"connection closed mid-frame "
            f"({len(exc.partial)}/{_HEADER.size} bytes read)"
        ) from exc
    except OSError as exc:
        raise TransportError(f"receive failed: {exc}") from exc
    magic, length, digest = _HEADER.unpack(header)
    if magic != MAGIC:
        raise TransportError(
            f"foreign frame magic {magic!r} (desynchronised or non-RPW peer)"
        )
    if length > MAX_FRAME:
        raise TransportError(
            f"frame announces {length} bytes (MAX_FRAME is {MAX_FRAME})"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TransportError(
            f"connection closed mid-frame "
            f"({len(exc.partial)}/{length} bytes read)"
        ) from exc
    except OSError as exc:
        raise TransportError(f"receive failed: {exc}") from exc
    if _digest(payload) != digest:
        raise TransportError(
            "frame payload does not hash to its header digest "
            "(tampered, corrupted, or desynchronised stream)"
        )
    return _loads(payload)


# ---------------------------------------------------------------------------
# Worker server
# ---------------------------------------------------------------------------

@dataclass
class WorkerStats:
    """Counters of one :class:`WorkerServer`'s lifetime."""

    connections: int = 0
    installs: int = 0
    installs_reused: int = 0
    units: int = 0
    errors: int = 0


class WorkerServer:
    """One shard worker: holds installed state, executes units over sockets.

    The socket twin of a pooled worker process.  Connections are served
    concurrently (one thread each — a coordinator opens one per
    fan-out coroutine).  Install is one-shot server-wide, keyed by the
    coordinator's ``state_key`` — a second connection installing the
    same key reuses the live state and re-ships nothing.

    ``parallel_units`` is the worker's own shard parallelism: the
    install builds that many private state **slots** (the installed
    state plus eager pickle-round-trip clones, each byte-equivalent to
    a fresh install), and each running unit checks one out, so N
    coordinator connections execute up to ``parallel_units`` units
    concurrently instead of serializing on one state lock.  Answers
    are byte-identical whichever slot a unit lands on — clones carry
    exactly the install payload.  A reinstall (different ``state_key``)
    waits for in-flight units to drain before flipping the
    process-wide A/B switches; in-flight units of the old state finish
    under the old switches, later ``run`` ops of the old key are
    refused loudly.

    ``op_timeout`` bounds how long one peer may stall the connection
    **mid-conversation**: a frame that started must finish arriving —
    and a reply must be accepted — within that many seconds, or the
    connection is dropped as hung.  Idle coordinators waiting *between*
    frames are never timed out, so the default ``None`` and any finite
    value are both safe for long-lived coordinator connections; a
    finite value additionally guarantees a peer that sends half a frame
    and goes silent cannot pin a handler thread.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  :meth:`start` serves on a background thread (tests),
    :meth:`serve_forever` blocks (the ``repro worker`` CLI);
    :meth:`stop` shuts down cleanly, :meth:`kill` abandons every open
    connection mid-frame — the fault harness's worker crash.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        parallel_units: int = 1,
        op_timeout: float | None = None,
    ):
        if parallel_units < 1:
            raise TransportError(
                f"parallel_units must be >= 1, got {parallel_units!r}"
            )
        if op_timeout is not None and op_timeout <= 0:
            raise TransportError(
                f"op_timeout must be positive (or None), got {op_timeout!r}"
            )
        self.op_timeout = op_timeout
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self.parallel_units = parallel_units
        self.stats = WorkerStats()
        self._lock = threading.RLock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._slots: Queue | None = None
        self._state_key: tuple | None = None
        self._stopping = threading.Event()
        self._threads: list[threading.Thread] = []
        self._connections: list[socket.socket] = []
        self._accept_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerServer":
        """Serve on a daemon background thread; returns self."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, name="repro-worker-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop` (or :meth:`kill`)."""
        while not self._stopping.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                break  # listener closed by stop()/kill()
            # Request/reply framing with small frames: Nagle + delayed
            # ACK would add ~40ms per unit on loopback.
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.stats.connections += 1
            with self._lock:
                self._connections.append(conn)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-worker-conn",
                daemon=True,
            )
            # prune finished handlers — a long-lived worker must not
            # grow a thread list one entry per connection it ever served
            self._threads = [t for t in self._threads if t.is_alive()]
            self._threads.append(thread)
            thread.start()

    def _close_listener(self) -> None:
        # shutdown() before close(): closing a listening socket does
        # not wake a thread blocked in accept() on Linux — shutdown
        # does, immediately, with an OSError the accept loop treats as
        # its stop signal.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._listener.close()

    def stop(self) -> None:
        """Stop accepting, close every connection, join handlers."""
        self._stopping.set()
        self._close_listener()
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        for thread in self._threads:
            thread.join(timeout=5)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def kill(self) -> None:
        """Die abruptly: every peer sees its connection drop mid-protocol.

        The fault-injection twin of ``kill -9`` on a remote worker
        process — coordinators must recover by retrying outstanding
        units elsewhere.
        """
        self.stop()

    # -- protocol ------------------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                # the mid-frame timeout is left armed on the socket for
                # the reply send below: a peer that stops *reading* is
                # as hung as one that stops writing
                message = recv_message(
                    conn, eof_ok=True, mid_frame_timeout=self.op_timeout
                )
                if message is CLOSED:
                    return
                try:
                    reply = self._dispatch(message)
                except TransportError:
                    raise
                except Exception as exc:  # loud per-op error reply
                    self.stats.errors += 1
                    reply = {"op": "error", "error": f"{type(exc).__name__}: {exc}"}
                send_message(conn, reply)
        except TransportError:
            # Damaged frame or dropped peer: nothing to answer on a
            # stream that can no longer be trusted — close it.
            return
        finally:
            conn.close()
            with self._lock:
                if conn in self._connections:
                    self._connections.remove(conn)

    def _dispatch(self, message: object) -> dict:
        if not isinstance(message, dict) or "op" not in message:
            raise TransportError(f"malformed message: {message!r}")
        op = message["op"]
        if op == "hello":
            version = message.get("version")
            if version != PROTOCOL_VERSION:
                return {
                    "op": "error",
                    "error": (
                        f"protocol version mismatch: coordinator speaks "
                        f"{version!r}, worker speaks {PROTOCOL_VERSION}"
                    ),
                }
            return {"op": "ready", "version": PROTOCOL_VERSION}
        if op == "install":
            return self._install(message)
        if op == "run":
            return self._run(message)
        if op == "shutdown":
            self._stopping.set()
            self._close_listener()
            return {"op": "bye"}
        return {"op": "error", "error": f"unknown op {op!r}"}

    def _install(self, message: dict) -> dict:
        state_key = message["state_key"]
        with self._lock:
            if self._state_key == state_key:
                self.stats.installs_reused += 1
                return {"op": "installed", "reused": True}
            # A reinstall flips the process-wide A/B switches; units of
            # the previous state still running must finish under the
            # switches they started under, so drain them first.  (Their
            # coordinators' later ``run`` ops of the old key are then
            # refused loudly by the state_key check.)
            while self._inflight:
                self._idle.wait(timeout=1.0)
            apply_switches(message["switches"])
            mode = message.get("mode", "inline")
            if mode == "inline":
                state = {
                    "matcher": message["matcher"],
                    "queries": message["queries"],
                    "schemas": message["schema_table"],
                }
            elif mode == "store":
                state = self._install_from_store(message)
            else:
                raise TransportError(f"unknown install mode {mode!r}")
            # Eager slot cloning, under the install lock: every slot is
            # fixed before any unit can run on the new state, so no
            # clone is ever taken of a matcher mid-unit.
            slots: Queue = Queue()
            slots.put(state)
            for _ in range(self.parallel_units - 1):
                slots.put(clone_worker_state(state))
            self._slots = slots
            self._state_key = state_key
            self.stats.installs += 1
            return {"op": "installed", "reused": False}

    def _install_from_store(self, message: dict) -> dict[str, object]:
        """Pull repository/queries/substrate by digest from a shared store.

        The coordinator sent only digests and the matcher configuration;
        every payload read here is byte-digest-verified by the store,
        and the loaded content digests are compared to the
        coordinator's — a store holding any other repository version is
        refused, so a worker can never serve against drifted state.
        """
        store = SnapshotStore(message["store_path"])
        manifest = store.manifest()
        repository = store.load_repository(manifest)
        if repository.content_digest() != message["repository_digest"]:
            raise SnapshotError(
                "snapshot store holds repository digest "
                f"{repository.content_digest()}, coordinator expects "
                f"{message['repository_digest']}"
            )
        queries = store.load_queries(manifest)
        digests = tuple(query.content_digest() for query in queries)
        if digests != tuple(message["query_digests"]):
            raise SnapshotError(
                "snapshot store holds a different query list than the "
                "coordinator expects (content digests differ)"
            )
        matcher = pickle.loads(message["matcher_config"])
        substrate_section = manifest.get("substrate_section")
        if substrate_section is not None:
            substrate = matcher.objective.substrate()
            if substrate is not None:
                restore_substrate(
                    substrate,
                    store.read_section(substrate_section, manifest),
                    repository,
                )
        # Deterministic rebuild of repository-global matcher state
        # (token index, clusters) — cold runs derive it the same way.
        matcher.prepare(repository)
        return {
            "matcher": matcher,
            "queries": queries,
            "schemas": {s.schema_id: s for s in repository},
        }

    def _run(self, message: dict) -> dict:
        with self._lock:
            if self._slots is None or self._state_key != message["state_key"]:
                return {
                    "op": "error",
                    "error": "no state installed for this state_key",
                }
            # Capture the slot queue under the same lock acquisition as
            # the key check: a reinstall swaps ``_slots`` wholesale, and
            # a slot must go back to the queue (= state generation) it
            # came from, never into a newer one.
            slots = self._slots
            self._inflight += 1
        try:
            slot = slots.get()
            try:
                pairs = run_unit_with(
                    slot,
                    message["query_index"],
                    message["schema_ids"],
                    message["delta_max"],
                )
            finally:
                slots.put(slot)
        finally:
            with self._lock:
                self._inflight -= 1
                if not self._inflight:
                    self._idle.notify_all()
        with self._lock:
            self.stats.units += 1
        return {"op": "result", "pairs": pairs}


# ---------------------------------------------------------------------------
# Coordinator-side executor
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DeadlineBudget:
    """Per-op timeouts (seconds) for every remote operation of a sweep.

    Each field bounds one protocol op end to end (request sent, reply
    received).  ``None`` disables that bound; a positive float makes a
    hung socket indistinguishable from a crashed worker after that many
    seconds — the op raises :class:`~repro.errors.TransportError`, the
    unit is re-enqueued for a healthy peer, and the byte-identity
    contract is untouched.  The defaults are far above any healthy op's
    latency, so they never fire in normal operation but still bound
    every sweep.
    """

    #: establishing the TCP connection
    connect: float | None = 10.0
    #: the hello/ready version handshake
    hello: float | None = 10.0
    #: state install (may ship or pull a large payload)
    install: float | None = 120.0
    #: one work unit (request sent → result received)
    run: float | None = 120.0

    def __post_init__(self) -> None:
        for op in ("connect", "hello", "install", "run"):
            value = getattr(self, op)
            if value is not None and value <= 0:
                raise TransportError(
                    f"deadline for {op!r} must be positive (or None), "
                    f"got {value!r}"
                )


@dataclass
class WorkerHealth:
    """One worker address's circuit-breaker record on the coordinator.

    ``state`` is the classic three-state breaker: ``"closed"`` (dialed
    normally), ``"open"`` (skipped by the fan-out until ``open_until``),
    ``"half-open"`` (cooldown elapsed; the next sweep admits the address
    once as a probe — success closes the breaker, failure re-opens it
    with a doubled cooldown).  ``dials`` counts actual connection
    attempts, so a test can assert a dead address is *not* re-dialed
    while its breaker is open.
    """

    address: tuple[str, int]
    state: str = "closed"
    consecutive_failures: int = 0
    dials: int = 0
    successes: int = 0
    failures: int = 0
    #: ``time.monotonic()`` of the most recent recorded failure
    last_failure: float | None = None
    #: ``time.monotonic()`` until which an open breaker skips dials
    open_until: float = 0.0


@dataclass
class ExecutorStats:
    """Counters of one :class:`RemoteShardExecutor`'s lifetime."""

    #: sweeps started by :meth:`RemoteShardExecutor.execute`
    sweeps: int = 0
    #: work units completed across all sweeps
    units: int = 0
    #: remote ops that exceeded their :class:`DeadlineBudget` deadline
    deadline_expiries: int = 0
    #: breaker transitions closed/half-open → open
    breaker_opens: int = 0
    #: breaker transitions open/half-open → closed
    breaker_closes: int = 0
    #: addresses skipped by a sweep because their breaker was open
    breaker_skips: int = 0
    #: open breakers re-admitted half-open after their cooldown
    half_open_probes: int = 0
    #: sweeps refused outright because every breaker was open
    all_open_refusals: int = 0
    #: explicit :meth:`RemoteShardExecutor.probe` health checks
    probes: int = 0


class RemoteShardExecutor(ShardExecutor):
    """Fan work units out to socket workers; retry on healthy peers.

    ``addresses`` name the workers (``"host:port"`` strings or
    ``(host, port)`` tuples).  With ``store`` set, state reaches the
    workers in ``store`` mode: the snapshot is written once (if the
    store does not already hold this repository version) and each worker
    pulls repository/queries/substrate **by digest**; otherwise the full
    state ships inline per worker, exactly like the pool initializer.

    The fan-out is one asyncio event loop on one background thread —
    one coroutine per worker, N workers cost one thread — pulling units
    from a shared queue, so a worker that dies mid-unit simply stops
    consuming: its re-enqueued unit is picked up by a surviving
    coroutine and the answers are byte-identical by the executor
    contract.  Only when every worker is gone with units outstanding
    does :meth:`execute` raise
    :class:`~repro.errors.TransportError`.  ``addresses`` is re-read
    at every :meth:`execute`, so membership can change between sweeps
    (workers killed, restarted, or added) without rebuilding the
    executor.

    Every remote op runs under a per-op deadline from ``deadlines`` (a
    :class:`DeadlineBudget`; the default budget adopts
    ``connect_timeout`` for its connect bound), so a hung peer is
    reclassified as a crashed one after at most one deadline.  The
    executor also keeps a per-address :class:`WorkerHealth` circuit
    breaker: a failure opens the address's breaker for
    ``breaker_backoff * 2**(consecutive failures - 1)`` seconds (capped
    at ``breaker_backoff_cap``, stretched by up to ``breaker_jitter``
    of random jitter so a fleet of coordinators does not re-dial in
    lockstep), sweeps skip open breakers instead of re-dialing the dead
    address, an elapsed cooldown admits the address half-open as a
    probe, and a success closes the breaker.  A sweep finding *every*
    address behind an open breaker raises
    :class:`~repro.errors.TransportError` immediately; :meth:`probe` is
    the operator's (and the soak barrier's) explicit blocking health
    check that can close a breaker without waiting out its cooldown.
    Health state and counters are exposed as :meth:`worker_health`,
    :attr:`stats` (an :class:`ExecutorStats`) and the one-line
    :meth:`status`.
    """

    name = "remote"

    def __init__(
        self,
        addresses: Sequence["str | tuple[str, int]"],
        *,
        store: SnapshotStore | str | Path | None = None,
        connect_timeout: float = 10.0,
        deadlines: DeadlineBudget | None = None,
        breaker_backoff: float = 0.5,
        breaker_backoff_cap: float = 30.0,
        breaker_jitter: float = 0.25,
        rng: random.Random | None = None,
    ):
        if not addresses:
            raise TransportError("RemoteShardExecutor needs >= 1 worker address")
        if breaker_backoff <= 0:
            raise TransportError(
                f"breaker_backoff must be positive, got {breaker_backoff!r}"
            )
        if breaker_backoff_cap < breaker_backoff:
            raise TransportError(
                f"breaker_backoff_cap ({breaker_backoff_cap!r}) must be >= "
                f"breaker_backoff ({breaker_backoff!r})"
            )
        if breaker_jitter < 0:
            raise TransportError(
                f"breaker_jitter must be >= 0, got {breaker_jitter!r}"
            )
        self.addresses = [parse_address(address) for address in addresses]
        self.store = (
            store
            if store is None or isinstance(store, SnapshotStore)
            else SnapshotStore(store)
        )
        self.connect_timeout = connect_timeout
        self.deadlines = (
            deadlines
            if deadlines is not None
            else DeadlineBudget(connect=connect_timeout)
        )
        self.breaker_backoff = breaker_backoff
        self.breaker_backoff_cap = breaker_backoff_cap
        self.breaker_jitter = breaker_jitter
        self.stats = ExecutorStats()
        self._rng = rng if rng is not None else random.Random()
        # one executor may be shared across replica services sweeping
        # concurrently on different fan-out threads — health and stats
        # mutations stay behind one lock
        self._health_lock = threading.Lock()
        self._health: dict[tuple[str, int], WorkerHealth] = {}

    # -- worker health / circuit breakers ------------------------------------

    def worker_health(self, address: "str | tuple[str, int]") -> WorkerHealth:
        """The (live, mutable) health record for one worker address."""
        parsed = parse_address(address)
        with self._health_lock:
            return self._health_for(parsed)

    def _health_for(self, address: tuple[str, int]) -> WorkerHealth:
        # callers hold self._health_lock
        health = self._health.get(address)
        if health is None:
            health = self._health[address] = WorkerHealth(address)
        return health

    def _admit(
        self, addresses: list[tuple[str, int]]
    ) -> tuple[list[tuple[str, int]], list[tuple[str, int]]]:
        """Partition a sweep's addresses into (dialable, breaker-skipped).

        Open breakers whose cooldown has elapsed transition to
        half-open and are admitted as probes; open breakers still
        cooling down are skipped — the sweep never re-dials them.
        """
        usable: list[tuple[str, int]] = []
        skipped: list[tuple[str, int]] = []
        now = time.monotonic()
        with self._health_lock:
            for address in addresses:
                health = self._health_for(address)
                if health.state == "open":
                    if now < health.open_until:
                        skipped.append(address)
                        self.stats.breaker_skips += 1
                        continue
                    health.state = "half-open"
                    self.stats.half_open_probes += 1
                usable.append(address)
        return usable, skipped

    def _record_failure(self, address: tuple[str, int]) -> None:
        with self._health_lock:
            health = self._health_for(address)
            health.consecutive_failures += 1
            health.failures += 1
            health.last_failure = time.monotonic()
            if health.state != "open":
                self.stats.breaker_opens += 1
            cooldown = min(
                self.breaker_backoff_cap,
                self.breaker_backoff
                * (2 ** (health.consecutive_failures - 1)),
            )
            cooldown *= 1.0 + self.breaker_jitter * self._rng.random()
            health.state = "open"
            health.open_until = health.last_failure + cooldown

    def _record_success(self, address: tuple[str, int]) -> None:
        with self._health_lock:
            health = self._health_for(address)
            if health.state != "closed":
                self.stats.breaker_closes += 1
            health.state = "closed"
            health.consecutive_failures = 0
            health.successes += 1
            health.open_until = 0.0

    def probe(self, address: "str | tuple[str, int]") -> bool:
        """One blocking hello round trip, recorded in the breaker.

        The explicit health check: a success closes the address's
        breaker immediately (no cooldown wait), a failure (re-)opens
        it.  Returns whether the worker answered the handshake.
        """
        parsed = parse_address(address)
        with self._health_lock:
            self.stats.probes += 1
            self._health_for(parsed).dials += 1
        try:
            sock = socket.create_connection(
                parsed, timeout=self.deadlines.connect
            )
        except OSError:
            self._record_failure(parsed)
            return False
        try:
            sock.settimeout(self.deadlines.hello)
            send_message(sock, {"op": "hello", "version": PROTOCOL_VERSION})
            self._check_reply(parsed, recv_message(sock), "ready")
        except (TransportError, OSError):
            self._record_failure(parsed)
            return False
        finally:
            sock.close()
        self._record_success(parsed)
        return True

    def status(self) -> str:
        """One operator line: per-address breaker states + counters."""
        with self._health_lock:
            states = ", ".join(
                f"{address[0]}:{address[1]}="
                f"{self._health_for(address).state}"
                for address in self.addresses
            )
            s = self.stats
            return (
                f"executor remote: workers [{states}] | "
                f"{s.sweeps} sweeps, {s.units} units, "
                f"{s.deadline_expiries} deadline expiries, "
                f"{s.breaker_opens} breaker opens, "
                f"{s.breaker_skips} skips, "
                f"{s.all_open_refusals} all-open refusals"
            )

    # -- install payloads ----------------------------------------------------

    def _install_message(self, state: ExecutionState) -> dict:
        if self.store is None:
            return {
                "op": "install",
                "mode": "inline",
                "state_key": state.state_key,
                "switches": state.switches,
                "matcher": state.matcher,
                "queries": state.queries,
                "schema_table": state.schema_table,
            }
        repository_digest = state.repository.content_digest()
        query_digests = tuple(q.content_digest() for q in state.queries)
        self._ensure_snapshot(state, repository_digest, query_digests)
        # The matcher configuration ships *without* its substrate — the
        # whole point of store mode is that workers pull the heavy
        # similarity payloads by digest instead of N copies crossing
        # this socket.  Detach, pickle, reattach.
        objective = state.matcher.objective
        substrate = objective._substrate
        objective._substrate = None
        try:
            matcher_config = pickle.dumps(
                state.matcher, protocol=pickle.HIGHEST_PROTOCOL
            )
        finally:
            objective._substrate = substrate
        return {
            "op": "install",
            "mode": "store",
            "state_key": state.state_key,
            "switches": state.switches,
            "store_path": str(self.store.root),
            "repository_digest": repository_digest,
            "query_digests": query_digests,
            "matcher_config": matcher_config,
        }

    def _ensure_snapshot(
        self,
        state: ExecutionState,
        repository_digest: str,
        query_digests: tuple[str, ...],
    ) -> None:
        """Write the shared snapshot unless the store already holds it."""
        try:
            manifest = self.store.manifest()
            current = (manifest.get("repository") or {}).get("repository_digest")
            recorded = tuple(
                digest for _schema_id, digest in manifest.get("queries") or []
            )
            if current == repository_digest and recorded == query_digests:
                return
        except SnapshotError:
            pass  # empty or unreadable-yet store: write fresh below
        save_snapshot(
            self.store,
            state.repository,
            queries=state.queries,
            substrate=state.matcher._substrate(),
        )

    # -- execution -----------------------------------------------------------

    def execute(self, state, units, delta_max):
        units = list(units)
        if not units:
            return
        addresses, skipped = self._admit(list(self.addresses))
        if not addresses:
            with self._health_lock:
                self.stats.all_open_refusals += 1
            raise TransportError(
                f"all {len(skipped)} worker breaker(s) are open "
                f"({', '.join(f'{h}:{p}' for h, p in skipped)}); every "
                "configured worker failed recently — wait out the "
                "cooldown, probe() a recovered worker, or fix the "
                "addresses"
            )
        install = self._install_message(state)
        with self._health_lock:
            self.stats.sweeps += 1
        events: Queue = Queue()
        abandoned = threading.Event()
        thread = threading.Thread(
            target=self._fanout_thread,
            args=(addresses, install, state.state_key, units, delta_max,
                  events, abandoned),
            name="repro-remote-fanout",
            daemon=True,
        )
        thread.start()
        completed = 0
        try:
            while completed < len(units):
                kind, *payload = events.get()
                if kind == "ok":
                    unit, pairs = payload
                    completed += 1
                    with self._health_lock:
                        self.stats.units += 1
                    yield unit, pairs
                else:
                    raise payload[0]
        finally:
            # Whether the sweep finished, failed, or was abandoned by
            # the consumer: tell the loop to bail, then wait for it —
            # no orphaned coroutines, sockets, or threads stay behind.
            abandoned.set()
            thread.join(timeout=10)

    def _fanout_thread(
        self, addresses, install, state_key, units, delta_max, events,
        abandoned,
    ) -> None:
        try:
            asyncio.run(self._fanout(
                addresses, install, state_key, units, delta_max, events,
                abandoned,
            ))
        except BaseException as exc:  # pragma: no cover - loop-level safety net
            events.put(("fatal", TransportError(f"fan-out loop failed: {exc}")))

    async def _op(self, coroutine, timeout, address, op):
        """Await one remote op under its deadline; expiry = crashed peer."""
        if timeout is None:
            return await coroutine
        try:
            return await asyncio.wait_for(coroutine, timeout)
        except asyncio.TimeoutError:
            with self._health_lock:
                self.stats.deadline_expiries += 1
            raise TransportError(
                f"{op} to worker {address[0]}:{address[1]} exceeded its "
                f"{timeout}s deadline (hung peer treated as crashed)"
            ) from None

    async def _fanout(
        self, addresses, install, state_key, units, delta_max, events,
        abandoned,
    ) -> None:
        """One coroutine per worker, all on this (background) event loop.

        A dying worker re-enqueues its in-flight unit and drops out; the
        loop ends when every unit completed, every worker is gone, or
        the consumer abandoned the sweep.  Exactly one terminal event
        reaches the consumer: per-unit ``("ok", ...)`` results and, if
        units remain with no workers left, one ``("fatal", ...)``.
        Every remote op runs under its :class:`DeadlineBudget` bound,
        and abandonment cancels the worker coroutines outright, so the
        loop's lifetime is bounded even against hung peers.
        """
        unit_queue: asyncio.Queue = asyncio.Queue()
        for unit in units:
            unit_queue.put_nowait(unit)
        progress = {"remaining": len(units)}
        errors: list[Exception] = []
        budget = self.deadlines

        async def handshake(reader, writer, address):
            await async_send_message(
                writer, {"op": "hello", "version": PROTOCOL_VERSION}
            )
            self._check_reply(
                address, await async_recv_message(reader), "ready"
            )

        async def install_state(reader, writer, address):
            await async_send_message(writer, install)
            self._check_reply(
                address, await async_recv_message(reader), "installed"
            )

        async def run_unit(reader, writer, address, unit):
            await async_send_message(writer, {
                "op": "run",
                "state_key": state_key,
                "query_index": unit.query_index,
                "schema_ids": unit.schema_ids,
                "delta_max": delta_max,
            })
            return self._check_reply(
                address, await async_recv_message(reader), "result"
            )

        async def run_worker(address: tuple[str, int]) -> None:
            with self._health_lock:
                self._health_for(address).dials += 1
            try:
                reader, writer = await self._op(
                    asyncio.open_connection(address[0], address[1]),
                    budget.connect, address, "connect",
                )
            except (TransportError, OSError) as exc:
                self._record_failure(address)
                errors.append(TransportError(
                    f"cannot connect to worker {address[0]}:{address[1]}: "
                    f"{exc}"
                ))
                return
            sock = writer.get_extra_info("socket")
            if sock is not None:
                # Request/reply framing with small frames: Nagle +
                # delayed ACK would add ~40ms per unit on loopback.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            unit = None
            try:
                await self._op(
                    handshake(reader, writer, address),
                    budget.hello, address, "hello",
                )
                await self._op(
                    install_state(reader, writer, address),
                    budget.install, address, "install",
                )
                # connect + handshake + install round-tripped: the
                # worker is provably healthy — close a half-open breaker
                self._record_success(address)
                while progress["remaining"] and not abandoned.is_set():
                    try:
                        unit = unit_queue.get_nowait()
                    except asyncio.QueueEmpty:
                        # stay subscribed: a dying peer may re-enqueue
                        await asyncio.sleep(0.01)
                        continue
                    reply = await self._op(
                        run_unit(reader, writer, address, unit),
                        budget.run, address, "run",
                    )
                    progress["remaining"] -= 1
                    events.put(("ok", unit, reply["pairs"]))
                    unit = None
            except (TransportError, OSError) as exc:
                # This worker is gone mid-unit: give the unit back for
                # a healthy peer, record the death, bow out.
                if unit is not None:
                    unit_queue.put_nowait(unit)
                self._record_failure(address)
                errors.append(exc)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except OSError:
                    pass

        tasks = [
            asyncio.ensure_future(run_worker(address))
            for address in addresses
        ]

        async def watchdog() -> None:
            # an abandoned sweep must not keep coroutines talking to
            # workers behind the consumer's back — even coroutines
            # currently awaiting a (deadline-bounded) op
            while not all(task.done() for task in tasks):
                if abandoned.is_set():
                    for task in tasks:
                        task.cancel()
                    return
                await asyncio.sleep(0.05)

        watch = asyncio.ensure_future(watchdog())
        await asyncio.gather(*tasks, return_exceptions=True)
        watch.cancel()
        try:
            await watch
        except asyncio.CancelledError:
            pass
        if progress["remaining"] and not abandoned.is_set():
            events.put(("fatal", TransportError(
                f"all {len(addresses)} remote workers are gone with "
                f"{progress['remaining']} unit(s) outstanding "
                f"(last error: {errors[-1] if errors else None})"
            )))

    @staticmethod
    def _check_reply(address: tuple[str, int], reply: object, op: str) -> dict:
        if not isinstance(reply, dict) or "op" not in reply:
            raise TransportError(
                f"malformed reply from {address}: {reply!r}"
            )
        if reply["op"] == "error":
            raise TransportError(
                f"worker {address[0]}:{address[1]} refused: "
                f"{reply.get('error')}"
            )
        if reply["op"] != op:
            raise TransportError(
                f"expected {op!r} from {address}, got {reply['op']!r}"
            )
        return reply

"""Schema matching systems: the exhaustive original and its
non-exhaustive improvements.

* :class:`~repro.matching.exhaustive.ExhaustiveMatcher` — S1, complete up
  to the threshold (exact branch-and-bound).
* :class:`~repro.matching.beam.BeamMatcher` — iMAP-style beam search.
* :class:`~repro.matching.clustering.ClusteringMatcher` — the authors'
  element-clustering search-space restriction.
* :class:`~repro.matching.topk.TopKCandidateMatcher` — candidate-list
  truncation in the spirit of probabilistic top-k evaluation.
* :class:`~repro.matching.hybrid.HybridMatcher` — cluster restriction
  and beam search composed.

All systems score with a shared :class:`~repro.matching.objective
.ObjectiveFunction`, so each improvement's answer set is a subset of the
exhaustive system's at every threshold — the paper's single assumption,
enforced and tested throughout.

The objective's *name plane* is pluggable
(:mod:`repro.matching.similarity.backends`): the registry additionally
carries the backend variants ``bm25``, ``dense`` and ``ensemble``,
which run the exhaustive search over a derived objective scoring names
through a BM25 sparse scorer, a hashed dense-vector scorer, or a
weighted ensemble of backends.  Each variant fingerprints as its own
matcher family, compared by the bounds technique within the family —
never across backends, whose scores are not comparable.

Batch workloads go through :mod:`repro.matching.pipeline`: repository
sharding, optional worker processes and an LRU candidate cache behind
:meth:`~repro.matching.base.Matcher.batch_match`, with output identical
to serial matching.

All searches draw on the **similarity substrate**
(:mod:`repro.matching.similarity.matrix`): per-(query, schema) score
matrices and a repository token index, precomputed once per objective
function and shared across matchers, thresholds, sweeps and shards —
with exact threshold-driven candidate pruning that provably never
changes an answer set.  Underneath sits the **repository scoring
kernel** (:mod:`repro.matching.similarity.kernel`): every distinct
(normalised label, datatype) cost is computed once per repository into
interned flat rows, matrices gather from them, clustering runs over the
same interned surface, and the branch-and-bound itself is a flattened
explicit-stack loop over bitmasks — all byte-identical to the reference
paths kept behind :func:`kernel_disabled` / :func:`flat_search_disabled`.
When numpy is installed, the hot gather/sort/bound arithmetic
additionally runs **vectorised** (:mod:`repro.matching.similarity
.vectors`) behind the fourth A/B switch, :func:`numpy_disabled` /
:func:`set_numpy_enabled` — same floats, same orders, same bytes, with
the pure-python spec exercised whenever numpy is absent or the switch
is off.  The fifth switch, :func:`backends_disabled` /
:func:`set_backends_enabled`, covers the backend refactoring seam: off,
a default objective scores names through the direct pre-backend
:class:`~repro.matching.similarity.name.NameSimilarity` path,
byte-identical to the lexical backend route.

Evolving repositories go through :mod:`repro.matching.evolution`: an
:class:`~repro.matching.evolution.EvolutionSession` replays
:class:`~repro.schema.delta.RepositoryDelta` streams and re-matches
incrementally — reusing per-pair results for content-unchanged schemas
and skipping provably empty searches — with answer sets byte-identical
to a cold full re-match.

Long-lived processes go through :mod:`repro.matching.service`: a
:class:`~repro.matching.service.MatchingService` serves single-query
requests over asyncio (micro-batched through the pipeline, coalesced by
content digest, deltas applied live), and the snapshot store
(:mod:`repro.schema.store` + :mod:`repro.matching.similarity.persist`)
persists repository, substrate and retained results so a restarted
process warm-starts in O(load) — every answer byte-identical to the
offline ``batch_match``/``batch_rematch`` path.

Distribution rides on the executor seam (:mod:`repro.matching
.executor`): *where* the pipeline's (query, shard) units run is a
pluggable :class:`~repro.matching.executor.ShardExecutor` — serial,
the shared persistent process pool, or socket workers on remote nodes
(:mod:`repro.matching.remote`, length-prefixed digest-verified frames,
state pulled by digest from the snapshot store, every remote op
deadline-budgeted and every worker address behind a circuit breaker).
Replicated serving (:mod:`repro.matching.replication`) runs N services
behind a sequence-numbered replicated delta log with gap/duplicate
detection, bounded backpressured delivery queues and a round-robin
front-end — served answers byte-identical across replicas and with the
single-node path, under fault injection (see ``docs/distributed.md``).
"""

from repro.matching.base import Matcher
from repro.matching.beam import BeamMatcher
from repro.matching.clustering import ClusteringMatcher, ElementClusterer
from repro.matching.engine import (
    SchemaSearch,
    count_assignments,
    flat_search_disabled,
    flat_search_enabled,
    set_flat_search_enabled,
    threshold_unreachable,
)
from repro.matching.evolution import EvolutionSession
from repro.matching.executor import (
    ExecutionState,
    ProcessPoolShardExecutor,
    SerialExecutor,
    ShardExecutor,
    WorkUnit,
)
from repro.matching.exhaustive import ExhaustiveMatcher
from repro.matching.hybrid import HybridMatcher
from repro.matching.mapping import Mapping, canonical_answers
from repro.matching.objective import ObjectiveFunction, ObjectiveWeights
from repro.matching.pipeline import (
    CandidateCache,
    MatchIncrement,
    MatchingPipeline,
    PipelineResult,
    RematchStats,
    shard_repository,
    shutdown_workers,
)
from repro.matching.random_matcher import (
    best_case_subset,
    random_subset_like,
    worst_case_subset,
)
from repro.matching.registry import (
    available_matchers,
    batch_match,
    evolution_session,
    make_matcher,
    matching_service,
    replica_group,
)
from repro.matching.remote import (
    DeadlineBudget,
    ExecutorStats,
    RemoteShardExecutor,
    WorkerHealth,
    WorkerServer,
)
from repro.matching.replication import (
    DeltaRecord,
    GroupStats,
    ReplicaGroup,
    ReplicaGroupStats,
)
from repro.matching.service import MatchingService, ServiceStats
from repro.matching.similarity import (
    CostKernel,
    EnsembleBackend,
    HashedVectorBackend,
    LexicalBackend,
    NameSimilarity,
    ScoreMatrix,
    SimilarityBackend,
    SimilaritySubstrate,
    SparseBM25Backend,
    Thesaurus,
    TokenIndex,
    ancestry_violations,
    backends_disabled,
    backends_enabled,
    datatype_penalty,
    kernel_disabled,
    kernel_enabled,
    numpy_available,
    numpy_disabled,
    numpy_enabled,
    set_backends_enabled,
    set_kernel_enabled,
    set_numpy_enabled,
    set_substrate_enabled,
    substrate_disabled,
    substrate_enabled,
)
from repro.matching.similarity.persist import (
    Snapshot,
    load_snapshot,
    save_snapshot,
)
from repro.matching.topk import TopKCandidateMatcher

__all__ = [
    "BeamMatcher",
    "CandidateCache",
    "ClusteringMatcher",
    "CostKernel",
    "DeadlineBudget",
    "DeltaRecord",
    "ElementClusterer",
    "EnsembleBackend",
    "EvolutionSession",
    "ExecutionState",
    "ExecutorStats",
    "ExhaustiveMatcher",
    "GroupStats",
    "HashedVectorBackend",
    "HybridMatcher",
    "LexicalBackend",
    "Mapping",
    "MatchIncrement",
    "Matcher",
    "MatchingPipeline",
    "MatchingService",
    "NameSimilarity",
    "ObjectiveFunction",
    "ObjectiveWeights",
    "PipelineResult",
    "ProcessPoolShardExecutor",
    "RematchStats",
    "RemoteShardExecutor",
    "ReplicaGroup",
    "ReplicaGroupStats",
    "SchemaSearch",
    "ScoreMatrix",
    "SerialExecutor",
    "ServiceStats",
    "ShardExecutor",
    "SimilarityBackend",
    "SimilaritySubstrate",
    "Snapshot",
    "SparseBM25Backend",
    "Thesaurus",
    "TokenIndex",
    "TopKCandidateMatcher",
    "WorkUnit",
    "WorkerHealth",
    "WorkerServer",
    "ancestry_violations",
    "available_matchers",
    "backends_disabled",
    "backends_enabled",
    "batch_match",
    "best_case_subset",
    "canonical_answers",
    "count_assignments",
    "datatype_penalty",
    "evolution_session",
    "flat_search_disabled",
    "flat_search_enabled",
    "kernel_disabled",
    "kernel_enabled",
    "load_snapshot",
    "make_matcher",
    "matching_service",
    "numpy_available",
    "numpy_disabled",
    "numpy_enabled",
    "random_subset_like",
    "replica_group",
    "save_snapshot",
    "set_backends_enabled",
    "set_flat_search_enabled",
    "set_kernel_enabled",
    "set_numpy_enabled",
    "set_substrate_enabled",
    "shard_repository",
    "shutdown_workers",
    "substrate_disabled",
    "substrate_enabled",
    "threshold_unreachable",
    "worst_case_subset",
]

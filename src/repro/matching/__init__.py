"""Schema matching systems: the exhaustive original and its
non-exhaustive improvements.

* :class:`~repro.matching.exhaustive.ExhaustiveMatcher` — S1, complete up
  to the threshold (exact branch-and-bound).
* :class:`~repro.matching.beam.BeamMatcher` — iMAP-style beam search.
* :class:`~repro.matching.clustering.ClusteringMatcher` — the authors'
  element-clustering search-space restriction.
* :class:`~repro.matching.topk.TopKCandidateMatcher` — candidate-list
  truncation in the spirit of probabilistic top-k evaluation.

All systems score with a shared :class:`~repro.matching.objective
.ObjectiveFunction`, so each improvement's answer set is a subset of the
exhaustive system's at every threshold — the paper's single assumption,
enforced and tested throughout.
"""

from repro.matching.base import Matcher
from repro.matching.beam import BeamMatcher
from repro.matching.clustering import ClusteringMatcher, ElementClusterer
from repro.matching.engine import SchemaSearch, count_assignments
from repro.matching.exhaustive import ExhaustiveMatcher
from repro.matching.hybrid import HybridMatcher
from repro.matching.mapping import Mapping
from repro.matching.objective import ObjectiveFunction, ObjectiveWeights
from repro.matching.random_matcher import (
    best_case_subset,
    random_subset_like,
    worst_case_subset,
)
from repro.matching.registry import available_matchers, make_matcher
from repro.matching.similarity import (
    NameSimilarity,
    Thesaurus,
    ancestry_violations,
    datatype_penalty,
)
from repro.matching.topk import TopKCandidateMatcher

__all__ = [
    "BeamMatcher",
    "ClusteringMatcher",
    "ElementClusterer",
    "ExhaustiveMatcher",
    "HybridMatcher",
    "Mapping",
    "Matcher",
    "NameSimilarity",
    "ObjectiveFunction",
    "ObjectiveWeights",
    "SchemaSearch",
    "Thesaurus",
    "TopKCandidateMatcher",
    "ancestry_violations",
    "available_matchers",
    "best_case_subset",
    "count_assignments",
    "datatype_penalty",
    "make_matcher",
    "random_subset_like",
    "worst_case_subset",
]

"""Top-k candidate pruning (Theobald et al.'s probabilistic top-k spirit).

The paper's second section-2.3 example of a non-exhaustive improvement
that keeps the objective function is top-k query evaluation with
probabilistic guarantees (VLDB'04): candidate lists are cut off early on
the grounds that deep candidates are unlikely to matter.  Reproduction:
for each query element, only its ``k`` cheapest targets per repository
schema stay in the candidate lists; the exact search then runs on the
truncated lists.  Mappings needing a deeper candidate are lost, so the
system is non-exhaustive but still a subset of S1 at every threshold.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import MatchingError
from repro.matching.base import Matcher
from repro.matching.engine import SchemaSearch
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity import vectors
from repro.schema.model import Schema

__all__ = ["TopKCandidateMatcher"]


class TopKCandidateMatcher(Matcher):
    """Non-exhaustive improvement: per-element candidate lists cut to k."""

    name = "topk"

    def __init__(
        self,
        objective: ObjectiveFunction,
        candidates_per_element: int = 5,
        max_answers: int = 500_000,
    ):
        super().__init__(objective, max_answers)
        if candidates_per_element < 1:
            raise MatchingError(
                "candidates_per_element must be >= 1, got "
                f"{candidates_per_element!r}"
            )
        self.candidates_per_element = candidates_per_element

    def _match_schema(
        self, query: Schema, schema: Schema, delta_max: float
    ) -> Iterable[tuple[tuple[int, ...], float]]:
        if len(schema) < len(query):
            return
        substrate = self._substrate()
        if substrate is not None:
            # the substrate's candidate orders use the same (cost, id)
            # sort key, so the cut keeps exactly the same targets
            matrix = substrate.matrix(query, schema)
            allowed = [
                list(matrix.candidate_order[i][: self.candidates_per_element])
                for i in range(len(query))
            ]
        else:
            costs = self.objective.cost_matrix(query, schema)
            allowed = []
            for i in range(len(query)):
                if (
                    len(schema) >= vectors.VECTOR_MIN
                    and vectors.numpy_enabled()
                ):
                    # argpartition narrows to the k cheapest, then exact
                    # (cost, id) tie resolution at the pivot — the same
                    # targets in the same order as the spec sort's cut
                    allowed.append(
                        vectors.topk_indices(
                            costs[i], self.candidates_per_element
                        )
                    )
                else:
                    ranked = sorted(
                        range(len(schema)), key=lambda j: (costs[i][j], j)
                    )
                    allowed.append(ranked[: self.candidates_per_element])
        search = SchemaSearch(
            query, schema, self.objective, allowed=allowed, substrate=substrate
        )
        yield from search.exhaustive(delta_max)

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["candidates_per_element"] = self.candidates_per_element
        return description

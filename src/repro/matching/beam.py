"""Beam-search improvement (iMAP-style; the paper's section 2.3 example).

iMAP controls its search space "using beam search, maintaining only the k
highest-scoring candidate matches at every step".  Our beam matcher keeps
the ``beam_width`` most promising partial mappings per query element and
scores final mappings with the shared objective function, so its answer
set is a subset of the exhaustive system's at every threshold — the
non-exhaustive-improvement contract.

A wide beam behaves almost exhaustively (size ratio near 1); narrowing it
trades answers for work, which is what produces the smoothly declining
ratio curves of the paper's S2-one.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import MatchingError
from repro.matching.base import Matcher
from repro.matching.engine import SchemaSearch
from repro.matching.objective import ObjectiveFunction
from repro.schema.model import Schema

__all__ = ["BeamMatcher"]


class BeamMatcher(Matcher):
    """Non-exhaustive improvement: per-level beam over partial mappings."""

    name = "beam"

    def __init__(
        self,
        objective: ObjectiveFunction,
        beam_width: int = 8,
        max_answers: int = 500_000,
    ):
        super().__init__(objective, max_answers)
        if beam_width < 1:
            raise MatchingError(f"beam_width must be >= 1, got {beam_width!r}")
        self.beam_width = beam_width

    def _match_schema(
        self, query: Schema, schema: Schema, delta_max: float
    ) -> Iterable[tuple[tuple[int, ...], float]]:
        search = SchemaSearch(
            query, schema, self.objective, substrate=self._substrate()
        )
        yield from search.beam(delta_max, self.beam_width)

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["beam_width"] = self.beam_width
        return description

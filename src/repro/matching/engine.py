"""Per-schema mapping search: exact branch-and-bound and beam search.

All matchers funnel through this engine so that every system scores a
given mapping identically — the paper's single assumption.  The engine
enumerates injective assignments of query elements (in pre-order, so a
parent is always assigned before its children) to elements of one
repository schema.

Branch-and-bound is **exact with respect to the threshold**: the lower
bound is admissible (see below), so every mapping with Δ ≤ δmax is
emitted.  The exhaustive system S1 is this engine with no candidate
restriction; the non-exhaustive improvements restrict candidates
(clustering, top-k) or the frontier (beam) and thereby become subsets.

Admissible bound: with structure weight ``sw``, query size ``k`` and
``p`` query edges,

    Δ = (1−sw)·(Σ element costs)/k + sw·(violations)/p

For a partial assignment, replacing unassigned elements' costs by their
per-element minimum over the still-allowed candidates and counting only
already-decided edge violations can never overestimate the final score.

Similarity substrate + exact candidate pruning
----------------------------------------------
When constructed with a ``substrate``
(:class:`~repro.matching.similarity.matrix.SimilaritySubstrate`), the
search reads the precomputed
:class:`~repro.matching.similarity.matrix.ScoreMatrix` — cost matrix,
cost-sorted candidate orders, per-element minima — instead of rederiving
them, and additionally *trims* each element's candidate list to the
targets whose static admissible bound

    (1−sw)/k · (cost[i][j] + Σ_{i'≠i} min-cost[i'])

fits under the threshold cutoff.  That static bound never exceeds the
dynamic bound the search computes at expansion time (the actual prefix
cost is at least the prefix of minima, and structure violations only
add), so every trimmed candidate is one branch-and-bound provably never
expands: the emitted mapping set is identical, candidate for candidate,
to the untrimmed search — property-tested with the substrate on vs. off.

Flattened search
----------------
:meth:`SchemaSearch.exhaustive` runs as an explicit-stack loop over
preallocated per-depth arrays: the ``used`` set is an integer bitmask,
ancestry checks are one shift against the schema's precomputed
per-target ancestor bitsets
(:meth:`~repro.schema.model.Schema.ancestor_masks`), and candidate rows
are flat tuples.  The bound arithmetic is expression-for-expression that
of :meth:`SchemaSearch.exhaustive_reference` — the recursive generator
kept as the executable specification — so the emitted sequence is
byte-identical; :func:`flat_search_disabled` switches the process back
to the reference for A/B runs.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import MatchingError
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity import vectors
from repro.matching.similarity.matrix import suffix_cost_sums
from repro.schema.model import Schema

__all__ = [
    "SchemaSearch",
    "count_assignments",
    "flat_search_disabled",
    "flat_search_enabled",
    "set_flat_search_enabled",
    "threshold_unreachable",
]

_EPSILON = 1e-9
# Extra slack on the static pruning bound so float non-associativity can
# only ever keep a candidate the dynamic bound would also have kept.
_TRIM_SLACK = 1e-12

_FLAT_ENABLED = True


def flat_search_enabled() -> bool:
    """Whether :meth:`SchemaSearch.exhaustive` runs the flattened loop."""
    return _FLAT_ENABLED


def set_flat_search_enabled(enabled: bool) -> bool:
    """Set the process-wide flat-search switch; returns the previous value."""
    global _FLAT_ENABLED
    previous = _FLAT_ENABLED
    _FLAT_ENABLED = bool(enabled)
    return previous


@contextmanager
def flat_search_disabled() -> Iterator[None]:
    """Run a block on the recursive reference search (the PR-4 engine).

    For A/B benchmarks and the property suite: the flattened
    explicit-stack loop and :meth:`SchemaSearch.exhaustive_reference`
    must emit the identical mapping sequence — same assignments, same
    scores, same order.
    """
    previous = set_flat_search_enabled(False)
    try:
        yield
    finally:
        set_flat_search_enabled(previous)


def count_assignments(query_size: int, schema_size: int) -> int:
    """Number of injective assignments: the falling factorial m!/(m−k)!.

    The size of the per-schema search space; the paper's "exhaustive
    search of schema mappings needs exponential time" in concrete form.
    """
    if query_size < 0 or schema_size < 0:
        raise MatchingError("sizes must be non-negative")
    total = 1
    for i in range(query_size):
        total *= max(0, schema_size - i)
    return total


def threshold_unreachable(
    total_min_cost: float,
    query_size: int,
    structure_weight: float,
    delta_max: float,
) -> bool:
    """True when the static admissible bound proves the search empty.

    ``total_min_cost`` is the sum of per-query-element minimum costs over
    *all* targets of the schema, accumulated through
    :func:`~repro.matching.similarity.matrix.suffix_cost_sums` — the one
    definition of the float order that :class:`ScoreMatrix`, the search
    context and every caller of this test share, so
    ``matrix.min_rest[0]`` can be passed straight in.  The test
    reproduces the branch-and-bound's very
    first expansion check bit-for-bit: at depth 0 the cheapest candidate's
    bound is ``(1−sw)/k · (row_min[0] + min_rest[1]) = (1−sw)/k ·
    min_rest[0]`` (float addition is commutative), candidates are
    cost-sorted, and structure violations only add — so when this
    returns ``True``, *every* engine strategy (exhaustive, beam, and any
    candidate-restricted variant, whose per-row minima can only be
    larger) provably emits nothing at ``delta_max``.  Incremental
    re-matching uses it to skip whole searches against delta-added
    schemas without risking byte-identity.
    """
    if query_size < 1:
        raise MatchingError(f"query_size must be >= 1, got {query_size!r}")
    share = (1.0 - structure_weight) / query_size
    return share * total_min_cost > delta_max + _EPSILON


@dataclass
class _SearchContext:
    """Precomputed per-(query, schema) state shared by both strategies."""

    query: Schema
    schema: Schema
    costs: Sequence[Sequence[float]]  # element cost matrix, query x target
    candidates: list[Sequence[int]]  # per query element, target ids sorted by cost
    min_rest: list[float]  # min_rest[i] = sum of per-element min costs for i..k-1
    parents: list[int | None]
    num_edges: int
    element_share: float  # (1 - sw) / k
    structure_share: float  # sw / p  (0 when p == 0)
    #: the substrate ScoreMatrix when ``candidates`` aliases its
    #: candidate orders row for row (the unrestricted fast path) — lets
    #: the static trim run batched over the matrix's cached ndarrays
    aligned_matrix: object | None = None


class SchemaSearch:
    """Mapping search over one repository schema for one query."""

    def __init__(
        self,
        query: Schema,
        schema: Schema,
        objective: ObjectiveFunction,
        allowed: Sequence[Sequence[int]] | None = None,
        substrate: object | None = None,
        prune: bool | None = None,
    ):
        """``allowed[i]``, when given, restricts query element i's targets.

        ``None`` (or a ``None`` entry) means all elements of the schema
        are candidates.  ``substrate`` supplies the precomputed
        :class:`~repro.matching.similarity.matrix.ScoreMatrix` for the
        pair; ``prune`` toggles exact threshold-driven candidate
        trimming (default: on exactly when a substrate is given, so the
        substrate-less path is byte-for-byte the historical one).
        """
        self.query = query
        self.schema = schema
        self.objective = objective
        self._prune = (substrate is not None) if prune is None else prune
        self._context = self._prepare(allowed, substrate)

    def _prepare(
        self,
        allowed: Sequence[Sequence[int]] | None,
        substrate: object | None,
    ) -> _SearchContext | None:
        query, schema = self.query, self.schema
        k, m = len(query), len(schema)
        if m < k:
            return None  # injectivity impossible; no mappings exist
        matrix = substrate.matrix(query, schema) if substrate is not None else None
        if matrix is not None:
            costs = matrix.costs
        else:
            costs = self.objective.cost_matrix(query, schema)
        aligned_matrix = None
        use_vectors = vectors.numpy_enabled()
        if allowed is None and matrix is not None:
            # Unrestricted search over a precomputed matrix: the context
            # aliases the matrix's candidate orders and suffix sums
            # outright — ``min_rest`` *is* suffix_cost_sums(row_min), the
            # shared accumulation, so no per-search float work runs here.
            candidates: list[Sequence[int]] = list(matrix.candidate_order)
            min_rest: Sequence[float] = matrix.min_rest
            aligned_matrix = matrix
        else:
            candidates = []
            row_best: list[float] = []
            for i in range(k):
                if allowed is not None and allowed[i] is not None:
                    valid = [j for j in allowed[i] if 0 <= j < m]
                    if not valid:
                        return None  # some element has no candidate at all
                    if use_vectors and len(valid) >= vectors.VECTOR_MIN:
                        # lexsort on (cost, id) keys — the spec sort's
                        # exact tie-break, batched; ``float()`` keeps
                        # np.float64 out of the downstream accumulation
                        np = vectors._np
                        ids = np.asarray(valid, dtype=np.intp)
                        row_np = (
                            matrix.np_costs()[i]
                            if matrix is not None
                            else np.asarray(costs[i], dtype=np.float64)
                        )
                        picked = row_np[ids]
                        ranked = ids[np.lexsort((ids, picked))]
                        candidates.append(ranked.tolist())
                        row_best.append(float(row_np[ranked[0]]))
                    else:
                        pairs = sorted((costs[i][j], j) for j in valid)
                        candidates.append([j for _, j in pairs])
                        row_best.append(pairs[0][0])  # cost-sorted: first is min
                elif matrix is not None:
                    candidates.append(matrix.candidate_order[i])
                    row_best.append(matrix.row_min[i])
                else:
                    if use_vectors and m >= vectors.VECTOR_MIN:
                        # stable argsort ties keep ascending target id —
                        # identical to the (cost, id) pair sort; the
                        # minimum is read back out of the spec row, so it
                        # stays the same python float object chain
                        order = vectors.stable_order(costs[i])
                        candidates.append(order.tolist())
                        row_best.append(costs[i][order[0]])
                    else:
                        pairs = sorted(zip(costs[i], range(m)))
                        candidates.append([j for _, j in pairs])
                        row_best.append(pairs[0][0])
            min_rest = suffix_cost_sums(row_best)
        parents = query.parent_ids()
        num_edges = sum(1 for p in parents if p is not None)
        sw = self.objective.weights.structure
        return _SearchContext(
            query=query,
            schema=schema,
            costs=costs,
            candidates=candidates,
            min_rest=min_rest,
            parents=parents,
            num_edges=num_edges,
            element_share=(1.0 - sw) / k,
            structure_share=(sw / num_edges) if num_edges else 0.0,
            aligned_matrix=aligned_matrix,
        )

    # -- exact candidate pruning --------------------------------------------

    def _trimmed_candidates(
        self, ctx: _SearchContext, cutoff: float
    ) -> list[Sequence[int]] | None:
        """Candidate lists cut to the targets that can still fit ``cutoff``.

        Drops target ``j`` from element ``i``'s (cost-sorted) list when
        the static bound ``element_share · (cost[i][j] + Σ other
        elements' minima)`` provably exceeds the cutoff — every such
        candidate would be refused by the dynamic bound at each of its
        expansions, so the emitted set is unchanged (module docstring).
        Returns ``None`` when some element keeps no candidate at all,
        which means the whole search is provably empty.
        """
        if not self._prune:
            return ctx.candidates
        if ctx.aligned_matrix is not None and vectors.numpy_enabled():
            vectorised = self._trimmed_candidates_vector(ctx, cutoff)
            if vectorised is not NotImplemented:
                return vectorised
        total_min = ctx.min_rest[0]
        limit = cutoff + _TRIM_SLACK
        share = ctx.element_share
        trimmed: list[Sequence[int]] = []
        for i, ids in enumerate(ctx.candidates):
            rest = total_min - (ctx.min_rest[i] - ctx.min_rest[i + 1])
            row = ctx.costs[i]
            keep = len(ids)
            for position, j in enumerate(ids):  # ids are cost-sorted
                if share * (row[j] + rest) > limit:
                    keep = position
                    break
            if keep == 0:
                return None
            trimmed.append(ids if keep == len(ids) else ids[:keep])
        return trimmed

    def _trimmed_candidates_vector(
        self, ctx: _SearchContext, cutoff: float
    ) -> list[Sequence[int]] | None:
        """The batched form of the static trim (unrestricted matrix path).

        One broadcast evaluates ``share · (sorted_cost + rest)`` over the
        whole cost-sorted matrix — the same two-operation float chain
        (add, then multiply) the spec loop runs per candidate, so the
        per-candidate booleans are identical and so is each row's first
        exceeding position (``argmax`` of the boolean row ≡ the spec's
        first-hit break).  Returns ``NotImplemented`` — run the spec loop
        instead — for matrices below the 2-D dispatch floor
        (:data:`~repro.matching.similarity.vectors.VECTOR_MIN_AREA`,
        checked *before* any ndarray view is built, so small matrices
        pay nothing here) and when the views are unavailable (numpy
        raced off between checks).
        """
        matrix = ctx.aligned_matrix
        if matrix.query_size * matrix.schema_size < vectors.VECTOR_MIN_AREA:
            return NotImplemented
        sorted_costs = matrix.np_sorted_costs()
        if sorted_costs is None:
            return NotImplemented
        np = vectors._np
        min_rest = ctx.min_rest
        total_min = min_rest[0]
        rests = np.asarray(
            [
                total_min - (min_rest[i] - min_rest[i + 1])
                for i in range(len(ctx.candidates))
            ],
            dtype=np.float64,
        ).reshape(-1, 1)
        exceeded = ctx.element_share * (sorted_costs + rests) > (
            cutoff + _TRIM_SLACK
        )
        first_hit = np.argmax(exceeded, axis=1)
        has_hit = np.any(exceeded, axis=1)
        trimmed: list[Sequence[int]] = []
        for i, ids in enumerate(ctx.candidates):
            if not has_hit[i]:
                trimmed.append(ids)
                continue
            keep = int(first_hit[i])
            if keep == 0:
                return None
            trimmed.append(ids[:keep])
        return trimmed

    # -- exact enumeration --------------------------------------------------

    def exhaustive(self, delta_max: float) -> Iterator[tuple[tuple[int, ...], float]]:
        """All injective assignments with Δ ≤ δmax, via branch-and-bound.

        Runs the flattened explicit-stack loop — an iterative DFS over
        preallocated arrays with ``used`` as an integer bitmask and
        ancestry read from the schema's precomputed
        :meth:`~repro.schema.model.Schema.ancestor_masks` — with bound
        arithmetic identical, expression for expression, to
        :meth:`exhaustive_reference` (the recursive generator this loop
        replaced, kept as the executable specification).  The emitted
        mapping sequence is candidate-for-candidate identical to the
        reference — same assignments, same floats, same order —
        property-tested in ``tests/properties/test_prop_kernel.py``.
        Honours :func:`flat_search_enabled` so A/B runs can time the
        reference path.
        """
        if not flat_search_enabled():
            yield from self.exhaustive_reference(delta_max)
            return
        ctx = self._context
        if ctx is None:
            return
        cutoff = delta_max + _EPSILON
        candidates = self._trimmed_candidates(ctx, cutoff)
        if candidates is None:
            return
        k = len(ctx.query)
        # Flat per-depth frames, filled on descent and read on resume:
        # candidate rows as flat sequences with resume cursors, prefix
        # cost sums / violation counts (index d = state *before*
        # assigning depth d), the resolved parent target and the
        # already-multiplied structure term, the running assignment, and
        # `used` as a target-id bitmask.  Ancestry is one shift-and-test
        # against the schema's precomputed per-target ancestor bitsets.
        costs = ctx.costs
        min_rest = ctx.min_rest
        parents = ctx.parents
        element_share = ctx.element_share
        structure_share = ctx.structure_share
        num_edges = ctx.num_edges
        ancestor_masks = ctx.schema.ancestor_masks()
        combine = self.objective.combine
        assignment = [0] * k
        positions = [0] * k
        cost_sums = [0.0] * (k + 1)
        violations = [0] * (k + 1)
        parent_targets = [-1] * k  # parents[0] is the root's None
        structure_terms = [0.0] * k  # structure_share * violations[depth]
        used = 0
        depth = 0
        while depth >= 0:
            row = candidates[depth]
            cost_row = costs[depth]
            index = positions[depth]
            length = len(row)
            prefix_cost = cost_sums[depth]
            prefix_violations = violations[depth]
            structure_so_far = structure_terms[depth]
            tail_min = min_rest[depth + 1]
            parent_target = parent_targets[depth]
            chosen = -1
            while index < length:
                target = row[index]
                index += 1
                if (used >> target) & 1:
                    continue
                cost = cost_row[target]
                base_bound = (
                    element_share * (prefix_cost + cost + tail_min)
                    + structure_so_far
                )
                if base_bound > cutoff:
                    index = length  # candidates are cost-sorted; rest only worse
                    break
                new_violations = prefix_violations
                if parent_target >= 0 and not (
                    (ancestor_masks[target] >> parent_target) & 1
                ):
                    new_violations += 1
                    if base_bound + structure_share > cutoff:
                        continue  # violation pushed this one out; others may fit
                chosen = target
                chosen_cost = cost
                chosen_violations = new_violations
                break
            positions[depth] = index
            if chosen < 0:  # depth exhausted: backtrack, resume the parent
                depth -= 1
                if depth >= 0:
                    used ^= 1 << assignment[depth]
                continue
            assignment[depth] = chosen
            next_depth = depth + 1
            if next_depth == k:  # complete assignment: score and emit
                score = combine(
                    prefix_cost + chosen_cost,
                    k,
                    (chosen_violations / num_edges) if num_edges else 0.0,
                )
                if score <= cutoff:
                    yield tuple(assignment), score
                continue  # same depth; cursor already points at the next candidate
            used |= 1 << chosen
            cost_sums[next_depth] = prefix_cost + chosen_cost
            violations[next_depth] = chosen_violations
            structure_terms[next_depth] = structure_share * chosen_violations
            parent = parents[next_depth]
            parent_targets[next_depth] = (
                assignment[parent] if parent is not None else -1
            )
            positions[next_depth] = 0
            depth = next_depth

    def exhaustive_reference(
        self, delta_max: float
    ) -> Iterator[tuple[tuple[int, ...], float]]:
        """The recursive branch-and-bound: :meth:`exhaustive`'s spec.

        This is the PR-4 engine, kept verbatim as the executable
        specification the flattened loop is property-tested against and
        as the baseline half of ``benchmarks/bench_kernel.py``.  Both
        searches evaluate the same bound expressions on the same floats
        in the same order; only the control flow differs.
        """
        ctx = self._context
        if ctx is None:
            return
        cutoff = delta_max + _EPSILON
        candidates = self._trimmed_candidates(ctx, cutoff)
        if candidates is None:
            return
        k = len(ctx.query)
        assignment: list[int | None] = [None] * k
        used: set[int] = set()

        def recurse(
            depth: int, cost_sum: float, violations: int
        ) -> Iterator[tuple[tuple[int, ...], float]]:
            if depth == k:
                score = self.objective.combine(
                    cost_sum,
                    k,
                    (violations / ctx.num_edges) if ctx.num_edges else 0.0,
                )
                if score <= delta_max + _EPSILON:
                    yield tuple(assignment), score  # type: ignore[arg-type]
                return
            parent = ctx.parents[depth]
            parent_target = assignment[parent] if parent is not None else None
            structure_so_far = ctx.structure_share * violations
            for target in candidates[depth]:
                if target in used:
                    continue
                cost = ctx.costs[depth][target]
                base_bound = (
                    ctx.element_share
                    * (cost_sum + cost + ctx.min_rest[depth + 1])
                    + structure_so_far
                )
                if base_bound > cutoff:
                    break  # candidates are cost-sorted; the rest only worse
                new_violations = violations
                if parent_target is not None and not ctx.schema.is_ancestor(
                    parent_target, target
                ):
                    new_violations += 1
                    if base_bound + ctx.structure_share > cutoff:
                        continue  # violation pushed this one out; others may fit
                assignment[depth] = target
                used.add(target)
                yield from recurse(depth + 1, cost_sum + cost, new_violations)
                used.discard(target)
                assignment[depth] = None

        yield from recurse(0, 0.0, 0)

    # -- beam search ---------------------------------------------------------

    def beam(
        self, delta_max: float, beam_width: int
    ) -> Iterator[tuple[tuple[int, ...], float]]:
        """iMAP-style beam search: keep the ``beam_width`` most promising
        partial assignments per query element.

        Returned mappings score with the shared objective, so the result
        is always a subset of :meth:`exhaustive` at the same threshold.
        """
        if beam_width < 1:
            raise MatchingError(f"beam width must be >= 1, got {beam_width}")
        ctx = self._context
        if ctx is None:
            return
        cutoff = delta_max + _EPSILON
        candidates = self._trimmed_candidates(ctx, cutoff)
        if candidates is None:
            return
        k = len(ctx.query)
        ancestor_masks = ctx.schema.ancestor_masks()
        # state: (bound, assignment tuple, used bitmask, cost_sum, violations)
        # — the bitmask is internal bookkeeping; selection sorts on the
        # bound alone, so the emitted beam is unchanged
        states: list[tuple[float, tuple[int, ...], int, float, int]] = [
            (ctx.element_share * ctx.min_rest[0], (), 0, 0.0, 0)
        ]
        for depth in range(k):
            expansions: list[
                tuple[float, tuple[int, ...], int, float, int]
            ] = []
            parent = ctx.parents[depth]
            for bound, assignment, used, cost_sum, violations in states:
                parent_target = assignment[parent] if parent is not None else None
                structure_so_far = ctx.structure_share * violations
                for target in candidates[depth]:
                    if (used >> target) & 1:
                        continue
                    cost = ctx.costs[depth][target]
                    base_bound = (
                        ctx.element_share
                        * (cost_sum + cost + ctx.min_rest[depth + 1])
                        + structure_so_far
                    )
                    if base_bound > cutoff:
                        break
                    new_violations = violations
                    new_bound = base_bound
                    if parent_target is not None and not (
                        (ancestor_masks[target] >> parent_target) & 1
                    ):
                        new_violations += 1
                        new_bound += ctx.structure_share
                        if new_bound > cutoff:
                            continue
                    expansions.append(
                        (
                            new_bound,
                            assignment + (target,),
                            used | (1 << target),
                            cost_sum + cost,
                            new_violations,
                        )
                    )
            if not expansions:
                return
            states = heapq.nsmallest(beam_width, expansions, key=lambda s: s[0])
        for _bound, assignment, _used, cost_sum, violations in states:
            score = self.objective.combine(
                cost_sum, k, (violations / ctx.num_edges) if ctx.num_edges else 0.0
            )
            if score <= delta_max + _EPSILON:
                yield assignment, score

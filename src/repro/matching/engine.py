"""Per-schema mapping search: exact branch-and-bound and beam search.

All matchers funnel through this engine so that every system scores a
given mapping identically — the paper's single assumption.  The engine
enumerates injective assignments of query elements (in pre-order, so a
parent is always assigned before its children) to elements of one
repository schema.

Branch-and-bound is **exact with respect to the threshold**: the lower
bound is admissible (see below), so every mapping with Δ ≤ δmax is
emitted.  The exhaustive system S1 is this engine with no candidate
restriction; the non-exhaustive improvements restrict candidates
(clustering, top-k) or the frontier (beam) and thereby become subsets.

Admissible bound: with structure weight ``sw``, query size ``k`` and
``p`` query edges,

    Δ = (1−sw)·(Σ element costs)/k + sw·(violations)/p

For a partial assignment, replacing unassigned elements' costs by their
per-element minimum over the still-allowed candidates and counting only
already-decided edge violations can never overestimate the final score.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.errors import MatchingError
from repro.matching.objective import ObjectiveFunction
from repro.schema.model import Schema

__all__ = ["SchemaSearch", "count_assignments"]

_EPSILON = 1e-9


def count_assignments(query_size: int, schema_size: int) -> int:
    """Number of injective assignments: the falling factorial m!/(m−k)!.

    The size of the per-schema search space; the paper's "exhaustive
    search of schema mappings needs exponential time" in concrete form.
    """
    if query_size < 0 or schema_size < 0:
        raise MatchingError("sizes must be non-negative")
    total = 1
    for i in range(query_size):
        total *= max(0, schema_size - i)
    return total


@dataclass
class _SearchContext:
    """Precomputed per-(query, schema) state shared by both strategies."""

    query: Schema
    schema: Schema
    costs: list[list[float]]  # element cost matrix, query x target
    candidates: list[list[int]]  # per query element, target ids sorted by cost
    min_rest: list[float]  # min_rest[i] = sum of per-element min costs for i..k-1
    parents: list[int | None]
    num_edges: int
    element_share: float  # (1 - sw) / k
    structure_share: float  # sw / p  (0 when p == 0)


class SchemaSearch:
    """Mapping search over one repository schema for one query."""

    def __init__(
        self,
        query: Schema,
        schema: Schema,
        objective: ObjectiveFunction,
        allowed: Sequence[Sequence[int]] | None = None,
    ):
        """``allowed[i]``, when given, restricts query element i's targets.

        ``None`` (or a ``None`` entry) means all elements of the schema
        are candidates.
        """
        self.query = query
        self.schema = schema
        self.objective = objective
        self._context = self._prepare(allowed)

    def _prepare(
        self, allowed: Sequence[Sequence[int]] | None
    ) -> _SearchContext | None:
        query, schema = self.query, self.schema
        k, m = len(query), len(schema)
        if m < k:
            return None  # injectivity impossible; no mappings exist
        costs = self.objective.cost_matrix(query, schema)
        candidates: list[list[int]] = []
        for i in range(k):
            if allowed is not None and allowed[i] is not None:
                ids = [j for j in allowed[i] if 0 <= j < m]
            else:
                ids = list(range(m))
            if not ids:
                return None  # some element has no candidate at all
            ids.sort(key=lambda j: (costs[i][j], j))
            candidates.append(ids)
        min_rest = [0.0] * (k + 1)
        for i in range(k - 1, -1, -1):
            best = min(costs[i][j] for j in candidates[i])
            min_rest[i] = min_rest[i + 1] + best
        parents = [query.parent_id(i) for i in range(k)]
        num_edges = sum(1 for p in parents if p is not None)
        sw = self.objective.weights.structure
        return _SearchContext(
            query=query,
            schema=schema,
            costs=costs,
            candidates=candidates,
            min_rest=min_rest,
            parents=parents,
            num_edges=num_edges,
            element_share=(1.0 - sw) / k,
            structure_share=(sw / num_edges) if num_edges else 0.0,
        )

    # -- exact enumeration --------------------------------------------------

    def exhaustive(self, delta_max: float) -> Iterator[tuple[tuple[int, ...], float]]:
        """All injective assignments with Δ ≤ δmax, via branch-and-bound."""
        ctx = self._context
        if ctx is None:
            return
        cutoff = delta_max + _EPSILON
        k = len(ctx.query)
        assignment: list[int | None] = [None] * k
        used: set[int] = set()

        def recurse(
            depth: int, cost_sum: float, violations: int
        ) -> Iterator[tuple[tuple[int, ...], float]]:
            if depth == k:
                score = self.objective.combine(
                    cost_sum,
                    k,
                    (violations / ctx.num_edges) if ctx.num_edges else 0.0,
                )
                if score <= delta_max + _EPSILON:
                    yield tuple(assignment), score  # type: ignore[arg-type]
                return
            parent = ctx.parents[depth]
            parent_target = assignment[parent] if parent is not None else None
            structure_so_far = ctx.structure_share * violations
            for target in ctx.candidates[depth]:
                if target in used:
                    continue
                cost = ctx.costs[depth][target]
                base_bound = (
                    ctx.element_share
                    * (cost_sum + cost + ctx.min_rest[depth + 1])
                    + structure_so_far
                )
                if base_bound > cutoff:
                    break  # candidates are cost-sorted; the rest only worse
                new_violations = violations
                if parent_target is not None and not ctx.schema.is_ancestor(
                    parent_target, target
                ):
                    new_violations += 1
                    if base_bound + ctx.structure_share > cutoff:
                        continue  # violation pushed this one out; others may fit
                assignment[depth] = target
                used.add(target)
                yield from recurse(depth + 1, cost_sum + cost, new_violations)
                used.discard(target)
                assignment[depth] = None

        yield from recurse(0, 0.0, 0)

    # -- beam search ---------------------------------------------------------

    def beam(
        self, delta_max: float, beam_width: int
    ) -> Iterator[tuple[tuple[int, ...], float]]:
        """iMAP-style beam search: keep the ``beam_width`` most promising
        partial assignments per query element.

        Returned mappings score with the shared objective, so the result
        is always a subset of :meth:`exhaustive` at the same threshold.
        """
        if beam_width < 1:
            raise MatchingError(f"beam width must be >= 1, got {beam_width}")
        ctx = self._context
        if ctx is None:
            return
        cutoff = delta_max + _EPSILON
        k = len(ctx.query)
        # state: (bound, assignment tuple, used frozenset, cost_sum, violations)
        states: list[tuple[float, tuple[int, ...], frozenset[int], float, int]] = [
            (ctx.element_share * ctx.min_rest[0], (), frozenset(), 0.0, 0)
        ]
        for depth in range(k):
            expansions: list[
                tuple[float, tuple[int, ...], frozenset[int], float, int]
            ] = []
            parent = ctx.parents[depth]
            for bound, assignment, used, cost_sum, violations in states:
                parent_target = assignment[parent] if parent is not None else None
                structure_so_far = ctx.structure_share * violations
                for target in ctx.candidates[depth]:
                    if target in used:
                        continue
                    cost = ctx.costs[depth][target]
                    base_bound = (
                        ctx.element_share
                        * (cost_sum + cost + ctx.min_rest[depth + 1])
                        + structure_so_far
                    )
                    if base_bound > cutoff:
                        break
                    new_violations = violations
                    new_bound = base_bound
                    if parent_target is not None and not ctx.schema.is_ancestor(
                        parent_target, target
                    ):
                        new_violations += 1
                        new_bound += ctx.structure_share
                        if new_bound > cutoff:
                            continue
                    expansions.append(
                        (
                            new_bound,
                            assignment + (target,),
                            used | {target},
                            cost_sum + cost,
                            new_violations,
                        )
                    )
            if not expansions:
                return
            states = heapq.nsmallest(beam_width, expansions, key=lambda s: s[0])
        for _bound, assignment, _used, cost_sum, violations in states:
            score = self.objective.combine(
                cost_sum, k, (violations / ctx.num_edges) if ctx.num_edges else 0.0
            )
            if score <= delta_max + _EPSILON:
                yield assignment, score

"""Clustering-based improvement (the authors' own WIRI'06 technique).

"By employing clustering techniques, we attempt to quickly locate parts
of schemas in a large repository that are likely to contain a match for a
given small personal schema and then focus our search on these parts.
The approach is non-exhaustive, because mappings located (partially)
outside a cluster or spanning clusters are not considered anymore."

Reproduction: repository elements are clustered by name similarity
(deterministic greedy leader clustering).  For a query, each query
element nominates the ``clusters_per_element`` clusters whose leaders it
resembles most; the search is then restricted to the union of the
nominated clusters' members.  Mappings using any element outside that
union are lost — aggressively so for small nomination counts, which is
what produces the "rigorous" ratio curves of the paper's S2-two while the
best-scoring answers (whose names resemble the query, hence fall in
nominated clusters) are mostly retained.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import MatchingError
from repro.matching.base import Matcher
from repro.matching.engine import SchemaSearch
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.name import NameSimilarity
from repro.schema.model import Schema
from repro.schema.repository import SchemaRepository

__all__ = ["ElementCluster", "ElementClusterer", "ClusteringMatcher"]


@dataclass
class ElementCluster:
    """One cluster of repository elements, led by its first member's name."""

    leader_name: str
    members: set[tuple[str, int]] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.members)


class ElementClusterer:
    """Deterministic greedy leader clustering by element-name similarity.

    Elements are visited in repository order; each joins the best
    existing cluster whose leader's name is at least ``join_threshold``
    similar, otherwise it founds a new cluster.  No randomness — the same
    repository always clusters identically.
    """

    def __init__(self, name_similarity: NameSimilarity, join_threshold: float = 0.55):
        if not 0.0 < join_threshold <= 1.0:
            raise MatchingError(
                f"join_threshold must be in (0, 1], got {join_threshold!r}"
            )
        self.name_similarity = name_similarity
        self.join_threshold = join_threshold

    def cluster(self, repository: SchemaRepository) -> list[ElementCluster]:
        clusters: list[ElementCluster] = []
        for handle in repository.all_elements():
            best_cluster: ElementCluster | None = None
            best_score = self.join_threshold
            for cluster in clusters:
                score = self.name_similarity.similarity(
                    cluster.leader_name, handle.name
                )
                if score >= best_score:
                    best_cluster, best_score = cluster, score
            if best_cluster is None:
                best_cluster = ElementCluster(leader_name=handle.name)
                clusters.append(best_cluster)
            best_cluster.members.add(handle.key)
        return clusters


class ClusteringMatcher(Matcher):
    """Non-exhaustive improvement: search restricted to nominated clusters."""

    name = "clustering"

    # Per-pair results depend on clusters built over the *whole*
    # repository: any delta can move cluster boundaries (and hence
    # nominations) for schemas the delta never touched, so incremental
    # re-matching must not reuse stored pair results.
    pair_local = False

    def __init__(
        self,
        objective: ObjectiveFunction,
        clusters_per_element: int = 2,
        join_threshold: float = 0.55,
        max_answers: int = 500_000,
    ):
        super().__init__(objective, max_answers)
        if clusters_per_element < 1:
            raise MatchingError(
                f"clusters_per_element must be >= 1, got {clusters_per_element!r}"
            )
        self.clusters_per_element = clusters_per_element
        self.clusterer = ElementClusterer(
            objective.name_similarity, join_threshold=join_threshold
        )
        self._clusters: list[ElementCluster] | None = None
        self._repository_digest: str | None = None
        self._current_allowed: set[tuple[str, int]] | None = None

    def prepare(self, repository: SchemaRepository) -> None:
        """Cluster the repository once (cached per repository *content*).

        Keyed on the content digest, not ``repository_id`` — synthetic
        workloads reuse the same id for different contents, and stale
        clusters would silently change (and, via the candidate cache,
        poison) every subsequent match.  Also builds the similarity
        substrate's token index (the ``super()`` default).
        """
        super().prepare(repository)
        digest = repository.content_digest()
        if self._repository_digest == digest and self._clusters:
            return
        self._clusters = self.clusterer.cluster(repository)
        self._repository_digest = digest

    def allowed_element_keys(self, query: Schema) -> set[tuple[str, int]]:
        """Union of the clusters nominated by the query's elements."""
        if self._clusters is None:
            raise MatchingError("prepare() must run before cluster nomination")
        allowed: set[tuple[str, int]] = set()
        for element in query:
            ranked = sorted(
                self._clusters,
                key=lambda c: -self.objective.name_similarity.similarity(
                    element.name, c.leader_name
                ),
            )
            for cluster in ranked[: self.clusters_per_element]:
                allowed |= cluster.members
        return allowed

    def begin_query(self, query: Schema) -> None:
        """Nominate clusters once per query; searches then filter on them.

        Runs after :meth:`prepare`, so the nomination always works on the
        *full* repository's clusters — also under the sharded pipeline,
        which prepares on the whole repository before fanning shards out.
        """
        self._current_allowed = self.allowed_element_keys(query)

    def _match_schema(
        self, query: Schema, schema: Schema, delta_max: float
    ) -> Iterable[tuple[tuple[int, ...], float]]:
        allowed_keys = self._current_allowed
        if allowed_keys is None:
            raise MatchingError("internal error: cluster nomination missing")
        in_schema = [
            element_id
            for element_id in range(len(schema))
            if (schema.schema_id, element_id) in allowed_keys
        ]
        if len(in_schema) < len(query):
            return  # cannot host an injective mapping within the clusters
        allowed = [in_schema] * len(query)
        search = SchemaSearch(
            query, schema, self.objective, allowed=allowed,
            substrate=self._substrate(),
        )
        yield from search.exhaustive(delta_max)

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["clusters_per_element"] = self.clusters_per_element
        description["join_threshold"] = self.clusterer.join_threshold
        return description

"""Clustering-based improvement (the authors' own WIRI'06 technique).

"By employing clustering techniques, we attempt to quickly locate parts
of schemas in a large repository that are likely to contain a match for a
given small personal schema and then focus our search on these parts.
The approach is non-exhaustive, because mappings located (partially)
outside a cluster or spanning clusters are not considered anymore."

Reproduction: repository elements are clustered by name similarity
(deterministic greedy leader clustering).  For a query, each query
element nominates the ``clusters_per_element`` clusters whose leaders it
resembles most; the search is then restricted to the union of the
nominated clusters' members.  Mappings using any element outside that
union are lost — aggressively so for small nomination counts, which is
what produces the "rigorous" ratio curves of the paper's S2-two while the
best-scoring answers (whose names resemble the query, hence fall in
nominated clusters) are mostly retained.
"""

from __future__ import annotations

import weakref
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import MatchingError
from repro.matching.base import Matcher
from repro.matching.engine import SchemaSearch
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.kernel import kernel_enabled
from repro.matching.similarity.name import NameSimilarity
from repro.schema.model import Schema
from repro.schema.repository import SchemaRepository
from repro.util.caching import fifo_put
from repro.util.text import normalise_label

__all__ = ["ElementCluster", "ElementClusterer", "ClusteringMatcher"]


#: clusters shared across matcher instances per NameSimilarity (the
#: dependency clustering output is a pure function of, together with the
#: join threshold and repository content) — keyed weakly so a retired
#: objective's universe is collectable.  Only consulted with the scoring
#: kernel on; kernel-off preserves the per-matcher PR-4 scans.
_SHARED_CLUSTERS: "weakref.WeakKeyDictionary[NameSimilarity, dict]" = (
    weakref.WeakKeyDictionary()
)
_SHARED_CLUSTERS_PER_SIMILARITY = 8


@dataclass
class ElementCluster:
    """One cluster of repository elements, led by its first member's name."""

    leader_name: str
    members: set[tuple[str, int]] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.members)


class ElementClusterer:
    """Deterministic greedy leader clustering by element-name similarity.

    Elements are visited in repository order; each joins the best
    existing cluster whose leader's name is at least ``join_threshold``
    similar, otherwise it founds a new cluster.  No randomness — the same
    repository always clusters identically.
    """

    def __init__(self, name_similarity: NameSimilarity, join_threshold: float = 0.55):
        if not 0.0 < join_threshold <= 1.0:
            raise MatchingError(
                f"join_threshold must be in (0, 1], got {join_threshold!r}"
            )
        self.name_similarity = name_similarity
        self.join_threshold = join_threshold

    def cluster(self, repository: SchemaRepository) -> list[ElementCluster]:
        """Greedy leader clustering of every repository element.

        Dispatches on the scoring-kernel switch: with the kernel on, the
        interned distinct-label path below runs (the repository's
        repeated labels scan clusters once per *distinct* normalised
        label, not once per element) and the result is shared across
        every matcher built on the same name similarity — clustering is
        a pure function of (similarity configuration, join threshold,
        repository content), so the clustering and hybrid matchers of
        one universe cluster a repository once between them.  Off, the
        original per-matcher full scan runs.  All paths produce
        identical clusters — the kernel-on/off property suite covers
        the clustering matchers.  Every call returns its own cluster
        objects (cache hits copy leader and members), so a caller
        mutating its result cannot corrupt other matchers.
        """
        if not kernel_enabled():
            return self._cluster_scan(repository)
        cache = _SHARED_CLUSTERS.setdefault(self.name_similarity, {})
        key = (self.join_threshold, repository.content_digest())
        clusters = cache.get(key)
        if clusters is None:
            clusters = self._cluster_interned(repository)
            fifo_put(cache, key, clusters, _SHARED_CLUSTERS_PER_SIMILARITY)
        return [
            ElementCluster(cluster.leader_name, set(cluster.members))
            for cluster in clusters
        ]

    def _cluster_scan(self, repository: SchemaRepository) -> list[ElementCluster]:
        """The reference greedy scan: every element against every cluster."""
        clusters: list[ElementCluster] = []
        for handle in repository.all_elements():
            best_cluster: ElementCluster | None = None
            best_score = self.join_threshold
            for cluster in clusters:
                score = self.name_similarity.similarity(
                    cluster.leader_name, handle.name
                )
                if score >= best_score:
                    best_cluster, best_score = cluster, score
            if best_cluster is None:
                best_cluster = ElementCluster(leader_name=handle.name)
                clusters.append(best_cluster)
            best_cluster.members.add(handle.key)
        return clusters

    def _cluster_interned(
        self, repository: SchemaRepository
    ) -> list[ElementCluster]:
        """Distinct-label compaction of :meth:`_cluster_scan`, exactly.

        Name similarity is a pure function of the *normalised* labels,
        so two elements with the same normalised label score identically
        against every cluster.  Per distinct label the scan keeps
        ``(best cluster index, best score, clusters seen)``; a repeat
        label resumes scanning at the first unseen cluster, replacing
        the cached best on ``score >= best`` — the same
        last-maximum-wins comparison the full scan applies, replayed
        only over the suffix, so the chosen cluster (and the founded
        cluster set) is identical element for element.  A label that
        founded a cluster is cached as that cluster at similarity 1.0 —
        the exact value the scan would compute against its own leader,
        and unbeatable because duplicate-normalised leaders cannot arise
        (the second occurrence always joins the first at 1.0 ≥ the join
        threshold).
        """
        clusters: list[ElementCluster] = []
        similarity = self.name_similarity.similarity
        threshold = self.join_threshold
        #: normalised label -> (best cluster index or -1, best score, seen)
        best_by_label: dict[str, tuple[int, float, int]] = {}
        for handle in repository.all_elements():
            name = handle.name
            label = normalise_label(name)
            if not label:
                # Empty normalisations score 0.0 against *everything* —
                # even an identically-normalised leader — so they never
                # join and cannot be compacted; replay the full scan.
                best_index, best_score, seen = -1, threshold, 0
            else:
                entry = best_by_label.get(label)
                if entry is None:
                    best_index, best_score, seen = -1, threshold, 0
                else:
                    best_index, best_score, seen = entry
            for index in range(seen, len(clusters)):
                score = similarity(clusters[index].leader_name, name)
                if score >= best_score:
                    best_index, best_score = index, score
            if best_index < 0:
                best_index = len(clusters)
                clusters.append(ElementCluster(leader_name=name))
                best_score = 1.0  # what the scan scores a leader vs itself
            if label:
                best_by_label[label] = (best_index, best_score, len(clusters))
            clusters[best_index].members.add(handle.key)
        return clusters


class ClusteringMatcher(Matcher):
    """Non-exhaustive improvement: search restricted to nominated clusters."""

    name = "clustering"

    # Per-pair results depend on clusters built over the *whole*
    # repository: any delta can move cluster boundaries (and hence
    # nominations) for schemas the delta never touched, so incremental
    # re-matching must not reuse stored pair results.
    pair_local = False

    def __init__(
        self,
        objective: ObjectiveFunction,
        clusters_per_element: int = 2,
        join_threshold: float = 0.55,
        max_answers: int = 500_000,
    ):
        super().__init__(objective, max_answers)
        if clusters_per_element < 1:
            raise MatchingError(
                f"clusters_per_element must be >= 1, got {clusters_per_element!r}"
            )
        self.clusters_per_element = clusters_per_element
        self.clusterer = ElementClusterer(
            objective.name_similarity, join_threshold=join_threshold
        )
        self._clusters: list[ElementCluster] | None = None
        self._repository_digest: str | None = None
        self._current_allowed: set[tuple[str, int]] | None = None
        # query content digest -> nominated keys; nomination is a
        # deterministic function of (clusters, query content,
        # clusters_per_element), so re-ranking every cluster on every
        # begin_query (once per threshold per query in a sweep) is pure
        # rework.  Invalidated with the clusters, bounded FIFO.
        self._nominations: dict[str, set[tuple[str, int]]] = {}

    def prepare(self, repository: SchemaRepository) -> None:
        """Cluster the repository once (cached per repository *content*).

        Keyed on the content digest, not ``repository_id`` — synthetic
        workloads reuse the same id for different contents, and stale
        clusters would silently change (and, via the candidate cache,
        poison) every subsequent match.  Also builds the similarity
        substrate's token index (the ``super()`` default).
        """
        super().prepare(repository)
        digest = repository.content_digest()
        if self._repository_digest == digest and self._clusters:
            return
        self._clusters = self.clusterer.cluster(repository)
        self._repository_digest = digest
        self._nominations.clear()

    def allowed_element_keys(self, query: Schema) -> set[tuple[str, int]]:
        """Union of the clusters nominated by the query's elements."""
        if self._clusters is None:
            raise MatchingError("prepare() must run before cluster nomination")
        allowed: set[tuple[str, int]] = set()
        for element in query:
            ranked = sorted(
                self._clusters,
                key=lambda c: -self.objective.name_similarity.similarity(
                    element.name, c.leader_name
                ),
            )
            for cluster in ranked[: self.clusters_per_element]:
                allowed |= cluster.members
        return allowed

    def begin_query(self, query: Schema) -> None:
        """Nominate clusters once per query; searches then filter on them.

        Runs after :meth:`prepare`, so the nomination always works on the
        *full* repository's clusters — also under the sharded pipeline,
        which prepares on the whole repository before fanning shards out.
        Nominations are memoised per query *content* against the current
        clusters (kernel on — the same switch that gates the shared
        cluster build), so a threshold sweep re-ranks nothing; kernel
        off replays the PR-4 per-call ranking.
        """
        if not kernel_enabled():
            self._current_allowed = self.allowed_element_keys(query)
            return
        digest = query.content_digest()
        allowed = self._nominations.get(digest)
        if allowed is None:
            allowed = self.allowed_element_keys(query)
            fifo_put(self._nominations, digest, allowed, 4096)
        self._current_allowed = allowed

    def _match_schema(
        self, query: Schema, schema: Schema, delta_max: float
    ) -> Iterable[tuple[tuple[int, ...], float]]:
        allowed_keys = self._current_allowed
        if allowed_keys is None:
            raise MatchingError("internal error: cluster nomination missing")
        in_schema = [
            element_id
            for element_id in range(len(schema))
            if (schema.schema_id, element_id) in allowed_keys
        ]
        if len(in_schema) < len(query):
            return  # cannot host an injective mapping within the clusters
        allowed = [in_schema] * len(query)
        search = SchemaSearch(
            query, schema, self.objective, allowed=allowed,
            substrate=self._substrate(),
        )
        yield from search.exhaustive(delta_max)

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["clusters_per_element"] = self.clusters_per_element
        description["join_threshold"] = self.clusterer.join_threshold
        return description

"""Unit tests for name/structure mutation operators."""

import pytest

from repro.errors import SchemaError
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.model import SchemaElement
from repro.schema.mutations import (
    MutationConfig,
    NameStyler,
    abbreviate_tokens,
    apply_typo,
    extract_personal_schema,
    mutate_name,
    mutate_subtree,
)
from repro.schema.vocabulary import get_domain
from repro.util import rng


class TestNameStyler:
    def test_camel(self):
        assert NameStyler("camel").render("last name") == "lastName"

    def test_snake(self):
        assert NameStyler("snake").render("last name") == "last_name"

    def test_kebab(self):
        assert NameStyler("kebab").render("last-name") == "last-name"

    def test_upper(self):
        assert NameStyler("upper").render("last name") == "LAST_NAME"

    def test_plain(self):
        assert NameStyler("plain").render("last name") == "lastname"

    def test_unknown_style_rejected(self):
        with pytest.raises(SchemaError):
            NameStyler("spongebob")

    def test_random_styler_deterministic(self):
        assert (
            NameStyler.random(rng.make(3)).style
            == NameStyler.random(rng.make(3)).style
        )

    def test_empty_label_unchanged(self):
        assert NameStyler("camel").render("--") == "--"


class TestTypos:
    def test_short_names_untouched(self):
        assert apply_typo(rng.make(1), "abc") == "abc"

    def test_typo_changes_string(self):
        generator = rng.make(5)
        original = "publisher"
        mutated = apply_typo(generator, original)
        assert mutated != original

    def test_typo_length_within_one(self):
        generator = rng.make(9)
        for _ in range(20):
            out = apply_typo(generator, "quantity")
            assert abs(len(out) - len("quantity")) <= 1

    def test_first_letter_preserved(self):
        generator = rng.make(11)
        for _ in range(20):
            assert apply_typo(generator, "tracking")[0] == "t"


class TestAbbreviate:
    def test_short_tokens_kept(self):
        assert abbreviate_tokens("name") == "name"

    def test_long_token_shortened(self):
        out = abbreviate_tokens("quantity")
        assert len(out) <= 4 and out[0] == "q"

    def test_multi_token(self):
        out = abbreviate_tokens("tracking number")
        assert " " in out


class TestMutationConfig:
    def test_invalid_probability_rejected(self):
        with pytest.raises(SchemaError):
            MutationConfig(typo_probability=1.5)


class TestMutateName:
    def test_synonym_replacement_uses_vocabulary(self):
        vocabulary = get_domain("bibliography")
        config = MutationConfig(
            synonym_probability=1.0,
            abbreviation_probability=0.0,
            typo_probability=0.0,
            restyle_probability=0.0,
        )
        seen = set()
        for seed in range(10):
            seen.add(
                mutate_name(
                    rng.make(seed), "author", "bib:author", vocabulary, config
                )
            )
        assert seen <= set(vocabulary.synonyms_of("bib:author"))
        assert len(seen) > 1

    def test_no_vocabulary_no_synonym(self):
        config = MutationConfig(
            synonym_probability=1.0,
            abbreviation_probability=0.0,
            typo_probability=0.0,
            restyle_probability=0.0,
        )
        assert mutate_name(rng.make(1), "author", None, None, config) == "author"


class TestMutateSubtree:
    def _source(self) -> SchemaElement:
        root = SchemaElement("author")
        for name in ("first-name", "last-name", "email", "affiliation"):
            root.add_child(SchemaElement(name))
        return root

    def test_pure_copy_with_zero_probabilities(self):
        config = MutationConfig(0.0, 0.0, 0.0, 0.0)
        out = mutate_subtree(
            rng.make(1), self._source(), None, config, drop_probability=0.0
        )
        assert [e.name for e in out.walk()] == [
            e.name for e in self._source().walk()
        ]

    def test_concepts_preserved(self):
        source = self._source()
        for i, element in enumerate(source.walk()):
            element.concept = f"c{i}"
        out = mutate_subtree(
            rng.make(2),
            source,
            get_domain("bibliography"),
            drop_probability=0.0,
        )
        assert [e.concept for e in out.walk()] == [
            e.concept for e in source.walk()
        ]

    def test_drop_keeps_minimum_children(self):
        out = mutate_subtree(
            rng.make(3),
            self._source(),
            None,
            MutationConfig(0, 0, 0, 0),
            drop_probability=1.0,
            min_children_kept=1,
        )
        assert len(out.children) == 1

    def test_input_not_mutated(self):
        source = self._source()
        before = [e.name for e in source.walk()]
        mutate_subtree(rng.make(4), source, get_domain("bibliography"))
        assert [e.name for e in source.walk()] == before


class TestExtractPersonalSchema:
    @pytest.fixture(scope="class")
    def repository(self):
        return generate_repository(GeneratorConfig(num_schemas=6, seed=13))

    def test_size_near_target(self, repository):
        source = repository.schemas()[0]
        query = extract_personal_schema(
            rng.make_tagged(5), source, get_domain("bibliography"), target_size=4
        )
        assert 1 <= len(query) <= 8

    def test_concepts_subset_of_source(self, repository):
        source = repository.schemas()[1]
        query = extract_personal_schema(
            rng.make_tagged(6), source, get_domain("commerce"), target_size=4
        )
        assert query.concepts() <= source.concepts()

    def test_schema_id_override(self, repository):
        query = extract_personal_schema(
            rng.make_tagged(7),
            repository.schemas()[2],
            None,
            target_size=3,
            schema_id="my-query",
        )
        assert query.schema_id == "my-query"

    def test_invalid_target_size(self, repository):
        with pytest.raises(SchemaError):
            extract_personal_schema(
                rng.make_tagged(8), repository.schemas()[0], None, target_size=0
            )

    def test_deterministic_for_same_generator_seed(self, repository):
        source = repository.schemas()[3]
        a = extract_personal_schema(
            rng.make_tagged(9), source, None, target_size=4
        )
        b = extract_personal_schema(
            rng.make_tagged(9), source, None, target_size=4
        )
        from repro.schema.parser import serialize_schema

        assert serialize_schema(a) == serialize_schema(b)

"""Unit tests for the textual schema format."""

import pytest

from repro.errors import SchemaParseError
from repro.schema.model import Datatype
from repro.schema.parser import parse_schema, serialize_schema

SAMPLE = """\
book
  title : string
  author : complex @ bib:author
    first-name
    last-name
  year : integer
"""


class TestParse:
    def test_tree_shape(self):
        schema = parse_schema(SAMPLE, "s")
        assert len(schema) == 6
        assert schema.path_string(4) == "book/author/last-name"

    def test_datatypes(self):
        schema = parse_schema(SAMPLE, "s")
        assert schema.element(5).datatype is Datatype.INTEGER

    def test_container_defaults_to_complex(self):
        schema = parse_schema("a\n  b\n", "s")
        assert schema.element(0).datatype is Datatype.COMPLEX

    def test_leaf_defaults_to_string(self):
        schema = parse_schema("a\n  b\n", "s")
        assert schema.element(1).datatype is Datatype.STRING

    def test_concept_annotation(self):
        schema = parse_schema(SAMPLE, "s")
        assert schema.element(2).concept == "bib:author"

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\nroot\n  # inner comment\n  child\n"
        schema = parse_schema(text, "s")
        assert len(schema) == 2

    def test_empty_input_rejected(self):
        with pytest.raises(SchemaParseError, match="no elements"):
            parse_schema("   \n  \n")

    def test_multiple_roots_rejected(self):
        with pytest.raises(SchemaParseError, match="multiple root"):
            parse_schema("a\nb\n")

    def test_indented_first_line_rejected(self):
        with pytest.raises(SchemaParseError, match="must not be indented"):
            parse_schema("  a\n")

    def test_tab_indentation_rejected(self):
        with pytest.raises(SchemaParseError, match="tabs"):
            parse_schema("a\n\tb\n")

    def test_odd_indentation_rejected(self):
        with pytest.raises(SchemaParseError, match="multiple of 2"):
            parse_schema("a\n   b\n")

    def test_indent_jump_rejected(self):
        with pytest.raises(SchemaParseError, match="jumped"):
            parse_schema("a\n    b\n")

    def test_bad_datatype_reports_line(self):
        with pytest.raises(SchemaParseError, match="line 2"):
            parse_schema("a\n  b : varchar\n")

    def test_empty_concept_rejected(self):
        with pytest.raises(SchemaParseError, match="'@'"):
            parse_schema("a @ \n")

    def test_empty_datatype_rejected(self):
        with pytest.raises(SchemaParseError, match="':'"):
            parse_schema("a : \n")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaParseError, match="name is empty"):
            parse_schema("a\n  : string\n")


class TestRoundTrip:
    def test_serialize_parse_round_trip(self):
        schema = parse_schema(SAMPLE, "s")
        assert serialize_schema(parse_schema(serialize_schema(schema), "s")) == (
            serialize_schema(schema)
        )

    def test_non_default_datatype_serialized(self):
        schema = parse_schema("a\n  b : decimal\n", "s")
        assert "b : decimal" in serialize_schema(schema)

    def test_default_datatype_omitted(self):
        schema = parse_schema("a\n  b\n", "s")
        out = serialize_schema(schema)
        assert "b : string" not in out

    def test_generated_schema_round_trips(self):
        from repro.schema.generator import GeneratorConfig, generate_repository

        repo = generate_repository(GeneratorConfig(num_schemas=3, seed=5))
        for schema in repo:
            text = serialize_schema(schema)
            again = parse_schema(text, schema.schema_id)
            assert serialize_schema(again) == text
            assert [e.concept for e in again] == [e.concept for e in schema]

"""Unit tests for domain vocabularies."""

import pytest

from repro.errors import SchemaError
from repro.schema.model import Datatype
from repro.schema.vocabulary import (
    Concept,
    Vocabulary,
    builtin_domains,
    get_domain,
)


class TestConcept:
    def test_requires_surface_form(self):
        with pytest.raises(SchemaError):
            Concept(name="x", surface_forms=())

    def test_container_flag(self):
        concept = Concept("c", ("c",), children=("k",))
        assert concept.is_container

    def test_all_forms_include_abbreviations(self):
        concept = Concept("q", ("quantity",), abbreviations=("qty",))
        assert "qty" in concept.all_forms()


class TestVocabulary:
    def test_duplicate_concept_rejected(self):
        c = Concept("dup", ("dup",))
        with pytest.raises(SchemaError, match="duplicate"):
            Vocabulary("d", [c, Concept("dup", ("other",))], roots=["dup"])

    def test_unknown_child_rejected(self):
        c = Concept("parent", ("parent",), children=("ghost",))
        with pytest.raises(SchemaError, match="unknown child"):
            Vocabulary("d", [c], roots=["parent"])

    def test_unknown_root_rejected(self):
        with pytest.raises(SchemaError, match="unknown root"):
            Vocabulary("d", [Concept("a", ("a",))], roots=["b"])

    def test_empty_roots_rejected(self):
        with pytest.raises(SchemaError, match="root"):
            Vocabulary("d", [Concept("a", ("a",))], roots=[])

    def test_lookup_missing_concept(self):
        vocabulary = get_domain("bibliography")
        with pytest.raises(SchemaError, match="has no concept"):
            vocabulary.concept("bib:nonexistent")

    def test_synonyms_of(self):
        vocabulary = get_domain("bibliography")
        forms = vocabulary.synonyms_of("bib:author")
        assert "author" in forms and "writer" in forms


class TestBuiltinDomains:
    def test_four_domains(self):
        assert set(builtin_domains()) == {
            "bibliography",
            "commerce",
            "medical",
            "university",
        }

    def test_unknown_domain_error_lists_known(self):
        with pytest.raises(SchemaError, match="available:"):
            get_domain("astrology")

    @pytest.mark.parametrize("name", sorted(builtin_domains()))
    def test_domain_is_well_formed(self, name):
        vocabulary = builtin_domains()[name]
        assert len(vocabulary) >= 20
        assert vocabulary.containers(), "every domain needs containers"
        assert vocabulary.leaves(), "every domain needs leaves"
        for concept in vocabulary.concepts():
            assert concept.name.startswith(name[:3])
            if concept.is_container:
                assert concept.datatype is Datatype.COMPLEX

    @pytest.mark.parametrize("name", sorted(builtin_domains()))
    def test_roots_are_containers(self, name):
        vocabulary = builtin_domains()[name]
        for root in vocabulary.roots:
            assert vocabulary.concept(root).is_container

    def test_builtin_domains_returns_copy(self):
        domains = builtin_domains()
        domains.clear()
        assert builtin_domains()  # internal registry untouched

    def test_synonym_overlap_across_domains_exists(self):
        # cross-domain homonyms (e.g. 'email') are what makes noise leaves
        # plausible; assert at least one shared surface form exists
        bib = {
            form
            for c in get_domain("bibliography").concepts()
            for form in c.all_forms()
        }
        com = {
            form
            for c in get_domain("commerce").concepts()
            for form in c.all_forms()
        }
        assert bib & com

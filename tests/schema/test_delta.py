"""Unit tests for repository deltas (RepositoryDelta / apply / churn)."""

import pytest

from repro.errors import SchemaError
from repro.schema import (
    Datatype,
    RepositoryDelta,
    Schema,
    SchemaElement,
    SchemaRepository,
    churn_delta,
)
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.mutations import rename_schema
from repro.util import rng as rng_util


def _schema(schema_id: str, *names: str) -> Schema:
    root = SchemaElement(name=f"{schema_id}-root", datatype=Datatype.COMPLEX)
    for name in names:
        root.add_child(SchemaElement(name=name))
    return Schema(schema_id, root)


@pytest.fixture
def repo() -> SchemaRepository:
    return SchemaRepository(
        "base",
        [
            _schema("s0", "alpha", "beta"),
            _schema("s1", "gamma"),
            _schema("s2", "delta", "epsilon", "zeta"),
        ],
    )


class TestRepositoryDelta:
    def test_empty_delta_is_noop(self, repo):
        new_repo, report = repo.apply(RepositoryDelta())
        assert report.is_noop
        assert new_repo.content_digest() == repo.content_digest()
        assert report.old_digest == report.new_digest

    def test_duplicate_edit_rejected(self):
        with pytest.raises(SchemaError, match="more than once"):
            RepositoryDelta(
                adds=(_schema("x", "a"),), removes=("x",)
            )

    def test_len_and_describe(self):
        delta = RepositoryDelta(
            adds=(_schema("x", "a"),),
            removes=("y",),
            replaces=(_schema("z", "b"),),
        )
        assert len(delta) == 3
        assert not delta.is_empty
        assert delta.describe() == {
            "adds": ("x",),
            "removes": ("y",),
            "replaces": ("z",),
        }


class TestApply:
    def test_add(self, repo):
        added = _schema("s3", "eta")
        new_repo, report = repo.apply(RepositoryDelta(adds=(added,)))
        assert "s3" in new_repo
        assert len(new_repo) == 4
        assert report.added == ("s3",)
        assert report.changed == ("s3",)
        assert set(report.unchanged) == {"s0", "s1", "s2"}
        # additions append: repository order is stable for old schemas
        assert [s.schema_id for s in new_repo] == ["s0", "s1", "s2", "s3"]

    def test_remove(self, repo):
        new_repo, report = repo.apply(RepositoryDelta(removes=("s1",)))
        assert "s1" not in new_repo
        assert report.removed == ("s1",)
        assert report.changed == ()
        assert [s.schema_id for s in report.removed_schemas] == ["s1"]

    def test_replace_in_place_with_content_change(self, repo):
        replacement = _schema("s1", "gamma", "new-leaf")
        new_repo, report = repo.apply(RepositoryDelta(replaces=(replacement,)))
        assert [s.schema_id for s in new_repo] == ["s0", "s1", "s2"]
        assert report.changed == ("s1",)
        assert len(new_repo.schema("s1")) == 3
        assert report.replaced_old[0].content_digest() != (
            replacement.content_digest()
        )

    def test_content_identical_replace_reports_unchanged(self, repo):
        clone = repo.schema("s1").copy()
        new_repo, report = repo.apply(RepositoryDelta(replaces=(clone,)))
        assert report.changed == ()
        assert report.is_noop
        assert new_repo.content_digest() == repo.content_digest()

    def test_untouched_schema_objects_are_shared(self, repo):
        new_repo, _ = repo.apply(RepositoryDelta(removes=("s1",)))
        assert new_repo.schema("s0") is repo.schema("s0")

    def test_add_collision_rejected(self, repo):
        with pytest.raises(SchemaError, match="already in repository"):
            repo.apply(RepositoryDelta(adds=(_schema("s0", "a"),)))

    def test_remove_unknown_rejected(self, repo):
        with pytest.raises(SchemaError, match="cannot remove"):
            repo.apply(RepositoryDelta(removes=("nope",)))

    def test_replace_unknown_rejected(self, repo):
        with pytest.raises(SchemaError, match="cannot replace"):
            repo.apply(RepositoryDelta(replaces=(_schema("nope", "a"),)))

    def test_emptying_delta_rejected(self, repo):
        with pytest.raises(SchemaError, match="empty repository"):
            repo.apply(RepositoryDelta(removes=("s0", "s1", "s2")))

    def test_receiver_is_never_mutated(self, repo):
        before = repo.content_digest()
        repo.apply(
            RepositoryDelta(
                adds=(_schema("s9", "x"),),
                removes=("s0",),
                replaces=(_schema("s1", "changed"),),
            )
        )
        assert repo.content_digest() == before
        assert [s.schema_id for s in repo] == ["s0", "s1", "s2"]

    def test_inverse_restores_content(self, repo):
        delta = RepositoryDelta(
            adds=(_schema("s9", "x"),),
            removes=("s0",),
            replaces=(_schema("s1", "changed"),),
        )
        new_repo, report = repo.apply(delta)
        restored, _ = new_repo.apply(report.inverse())
        assert {s.schema_id: s.content_digest() for s in restored} == {
            s.schema_id: s.content_digest() for s in repo
        }

    def test_inverse_without_removes_restores_digest(self, repo):
        delta = RepositoryDelta(
            adds=(_schema("s9", "x"),), replaces=(_schema("s1", "changed"),)
        )
        new_repo, report = repo.apply(delta)
        restored, _ = new_repo.apply(report.inverse())
        assert restored.content_digest() == repo.content_digest()


class TestChurnDelta:
    def test_deterministic(self):
        repo = generate_repository(GeneratorConfig(num_schemas=8, seed=11))
        first = churn_delta(repo, churn=0.4, seed=3)
        second = churn_delta(repo, churn=0.4, seed=3)
        assert first.describe() == second.describe()
        assert repo.apply(first)[1].new_digest == repo.apply(second)[1].new_digest

    def test_seed_changes_the_delta(self):
        repo = generate_repository(GeneratorConfig(num_schemas=8, seed=11))
        a = churn_delta(repo, churn=0.5, seed=1)
        b = churn_delta(repo, churn=0.5, seed=2)
        assert a.describe() != b.describe()

    def test_zero_churn_is_empty(self):
        repo = generate_repository(GeneratorConfig(num_schemas=4, seed=1))
        assert churn_delta(repo, churn=0.0, seed=0).is_empty

    def test_churn_rate_bounds_touched_schemas(self):
        repo = generate_repository(GeneratorConfig(num_schemas=10, seed=5))
        delta = churn_delta(repo, churn=0.3, seed=7)
        assert len(delta) == 3

    def test_invalid_churn_rejected(self):
        repo = generate_repository(GeneratorConfig(num_schemas=3, seed=5))
        with pytest.raises(SchemaError, match="churn"):
            churn_delta(repo, churn=1.5)
        with pytest.raises(SchemaError, match="weights"):
            churn_delta(repo, churn=0.5, replace_weight=-1.0)

    def test_never_empties_the_repository(self):
        repo = generate_repository(GeneratorConfig(num_schemas=2, seed=5))
        for seed in range(10):
            delta = churn_delta(
                repo, churn=1.0, seed=seed,
                replace_weight=0.0, add_weight=0.0, remove_weight=1.0,
            )
            new_repo, _ = repo.apply(delta)
            assert len(new_repo) >= 1


class TestRenameSchema:
    def test_shape_preserving(self):
        repo = generate_repository(GeneratorConfig(num_schemas=3, seed=9))
        source = repo.schemas()[0]
        renamed = rename_schema(rng_util.make_tagged(4), source, None)
        assert renamed.schema_id == source.schema_id
        assert len(renamed) == len(source)
        for element_id in range(len(source)):
            old = source.element(element_id)
            new = renamed.element(element_id)
            assert new.datatype == old.datatype
            assert new.concept == old.concept
            assert renamed.parent_id(element_id) == source.parent_id(element_id)

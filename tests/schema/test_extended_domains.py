"""Unit tests for the opt-in extended vocabulary domains."""

import pytest

from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.model import Datatype
from repro.schema.vocabulary import (
    all_domains,
    builtin_domains,
    extended_domains,
    get_domain,
)

_PREFIX = {"finance": "fin", "travel": "trv"}


class TestExtendedDomains:
    def test_two_extended_domains(self):
        assert set(extended_domains()) == {"finance", "travel"}

    def test_extended_not_in_builtin(self):
        assert not set(extended_domains()) & set(builtin_domains())

    def test_all_domains_is_union(self):
        assert set(all_domains()) == set(builtin_domains()) | set(
            extended_domains()
        )

    def test_get_domain_resolves_extended(self):
        assert get_domain("finance").domain == "finance"
        assert get_domain("travel").domain == "travel"

    @pytest.mark.parametrize("name", ["finance", "travel"])
    def test_extended_domain_well_formed(self, name):
        vocabulary = extended_domains()[name]
        assert len(vocabulary) >= 18
        assert vocabulary.containers()
        assert vocabulary.leaves()
        prefix = _PREFIX[name]
        for concept in vocabulary.concepts():
            assert concept.name.startswith(prefix + ":")
            if concept.is_container:
                assert concept.datatype is Datatype.COMPLEX

    @pytest.mark.parametrize("name", ["finance", "travel"])
    def test_roots_are_containers(self, name):
        vocabulary = extended_domains()[name]
        for root in vocabulary.roots:
            assert vocabulary.concept(root).is_container


class TestGenerationWithExtendedDomains:
    def test_repository_over_extended_domains(self):
        repo = generate_repository(
            GeneratorConfig(num_schemas=4, domains=("finance", "travel"), seed=2)
        )
        prefixes = {s.schema_id.rsplit("-", 1)[0] for s in repo}
        assert prefixes == {"finance", "travel"}
        assert repo.element_count() > 20

    def test_end_to_end_matching_on_extended_domains(self):
        from repro.evaluation.scenario import build_scenarios
        from repro.matching import ExhaustiveMatcher
        from repro.matching.objective import ObjectiveFunction
        from repro.matching.similarity.name import NameSimilarity, Thesaurus

        repo = generate_repository(
            GeneratorConfig(
                num_schemas=6, domains=("finance", "travel"), seed=9
            )
        )
        suite = build_scenarios(repo, num_queries=2, query_size=3, seed=5)
        thesaurus = Thesaurus.from_vocabularies(
            extended_domains().values(), coverage=0.8, seed=3
        )
        matcher = ExhaustiveMatcher(ObjectiveFunction(NameSimilarity(thesaurus)))
        answers = suite.run(matcher, 0.3)
        correct = sum(
            1 for a in answers if a.item in suite.ground_truth.mappings
        )
        assert len(answers) > 0
        assert correct > 0  # the oracle and the matcher connect end to end

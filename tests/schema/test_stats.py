"""Unit tests for repository statistics."""

from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.model import Schema, SchemaElement
from repro.schema.repository import SchemaRepository
from repro.schema.stats import (
    depth_histogram,
    describe_repository,
    lexical_stats,
)


def handmade_repository() -> SchemaRepository:
    a = SchemaElement("root", concept="c:root")
    a.add_child(SchemaElement("price", concept="c:price"))
    a.add_child(SchemaElement("cost", concept="c:price"))  # 2 forms, 1 concept
    b = SchemaElement("root2", concept="c:root")
    b.add_child(SchemaElement("price", concept="c:weight"))  # homonym 'price'
    b.add_child(SchemaElement("noise"))  # unlabelled
    return SchemaRepository("hand", [Schema("a", a), Schema("b", b)])


class TestLexicalStats:
    def test_counts(self):
        stats = lexical_stats(handmade_repository())
        assert stats.distinct_concepts == 3
        assert stats.unlabelled_elements == 1
        assert stats.max_surface_forms_per_concept == 2
        assert stats.homonym_labels == 1  # 'price' denotes two concepts

    def test_generated_repository_is_lexically_diverse(self):
        repo = generate_repository(GeneratorConfig(num_schemas=12, seed=4))
        stats = lexical_stats(repo)
        assert stats.mean_surface_forms_per_concept > 1.0
        assert stats.homonym_labels >= 1

    def test_empty_concepts(self):
        root = SchemaElement("only")
        repo = SchemaRepository("r", [Schema("s", root)])
        stats = lexical_stats(repo)
        assert stats.distinct_concepts == 0
        assert stats.unlabelled_elements == 1


class TestDepthHistogram:
    def test_handmade(self):
        histogram = depth_histogram(handmade_repository())
        assert histogram[0] == 2  # two roots
        assert histogram[1] == 4  # four children

    def test_total_matches_element_count(self):
        repo = generate_repository(GeneratorConfig(num_schemas=5, seed=6))
        histogram = depth_histogram(repo)
        assert sum(histogram.values()) == repo.element_count()


class TestDescribe:
    def test_report_fields(self):
        text = describe_repository(handmade_repository())
        assert "schemas             : 2" in text
        assert "homonym labels" in text
        assert "noise elements" in text

"""Unit tests for the synthetic repository generator."""

import pytest

from repro.errors import SchemaError
from repro.schema.generator import (
    GeneratorConfig,
    SchemaGenerator,
    generate_repository,
)
from repro.schema.parser import serialize_schema
from repro.schema.vocabulary import get_domain


class TestGeneratorConfig:
    def test_defaults_valid(self):
        GeneratorConfig()

    def test_num_schemas_positive(self):
        with pytest.raises(SchemaError):
            GeneratorConfig(num_schemas=0)

    def test_size_ordering(self):
        with pytest.raises(SchemaError):
            GeneratorConfig(min_size=10, max_size=5)

    def test_unknown_domain_rejected(self):
        with pytest.raises(SchemaError):
            GeneratorConfig(domains=("narnia",))

    def test_empty_domains_rejected(self):
        with pytest.raises(SchemaError):
            GeneratorConfig(domains=())


class TestSchemaGeneration:
    @pytest.fixture(scope="class")
    def repository(self):
        return generate_repository(GeneratorConfig(num_schemas=12, seed=21))

    def test_schema_count(self, repository):
        assert len(repository) == 12

    def test_deterministic(self):
        config = GeneratorConfig(num_schemas=4, seed=33)
        first = generate_repository(config)
        second = generate_repository(config)
        for a, b in zip(first, second):
            assert serialize_schema(a) == serialize_schema(b)

    def test_different_seeds_differ(self):
        a = generate_repository(GeneratorConfig(num_schemas=4, seed=1))
        b = generate_repository(GeneratorConfig(num_schemas=4, seed=2))
        assert any(
            serialize_schema(x) != serialize_schema(y) for x, y in zip(a, b)
        )

    def test_domains_round_robin(self, repository):
        prefixes = {schema.schema_id.rsplit("-", 1)[0] for schema in repository}
        assert prefixes == {"bibliography", "commerce", "medical", "university"}

    def test_sizes_within_soft_bounds(self, repository):
        for schema in repository:
            assert len(schema) <= GeneratorConfig().max_size + 6  # noise slack

    def test_concept_provenance_present(self, repository):
        for schema in repository:
            with_concept = sum(1 for e in schema if e.concept is not None)
            assert with_concept / len(schema) > 0.8

    def test_concepts_match_declared_domain(self, repository):
        schema = next(s for s in repository if s.schema_id.startswith("medical"))
        prefixes = {c.split(":")[0] for c in schema.concepts()}
        assert "med" in prefixes

    def test_root_is_domain_root_concept(self, repository):
        vocabulary = get_domain("bibliography")
        schema = next(
            s for s in repository if s.schema_id.startswith("bibliography")
        )
        assert schema.root.concept in vocabulary.roots

    def test_single_schema_generation(self):
        generator = SchemaGenerator(GeneratorConfig())
        schema = generator.generate_schema("one", "commerce", seed=99)
        assert schema.schema_id == "one"
        assert len(schema) >= 2

    def test_noise_leaves_have_no_concept(self):
        config = GeneratorConfig(
            num_schemas=6, noise_probability=1.0, seed=3, domains=("medical",)
        )
        repository = generate_repository(config)
        noiseless = [
            e for s in repository for e in s if e.concept is None
        ]
        assert noiseless, "with noise probability 1 some noise leaves must exist"

    def test_repository_id(self):
        repo = generate_repository(
            GeneratorConfig(num_schemas=2, seed=1), repository_id="custom"
        )
        assert repo.repository_id == "custom"

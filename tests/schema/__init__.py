"""Test subpackage."""

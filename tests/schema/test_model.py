"""Unit tests for the schema tree model."""

import pytest

from repro.errors import SchemaError
from repro.schema.model import Datatype, Schema, SchemaElement


def build_sample() -> Schema:
    root = SchemaElement("book", Datatype.COMPLEX, concept="bib:book")
    title = root.add_child(SchemaElement("title", concept="bib:title"))
    author = root.add_child(
        SchemaElement("author", Datatype.COMPLEX, concept="bib:author")
    )
    author.add_child(SchemaElement("first", concept="bib:first-name"))
    author.add_child(SchemaElement("last", concept="bib:last-name"))
    root.add_child(SchemaElement("year", Datatype.INTEGER, concept="bib:year"))
    assert title.is_leaf
    return Schema("sample", root)


class TestDatatype:
    def test_parse_case_insensitive(self):
        assert Datatype.parse(" Integer ") is Datatype.INTEGER

    def test_parse_unknown_lists_valid(self):
        with pytest.raises(SchemaError, match="expected one of"):
            Datatype.parse("varchar")


class TestSchemaElement:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            SchemaElement("   ")

    def test_walk_is_preorder(self):
        schema = build_sample()
        names = [e.name for e in schema.root.walk()]
        assert names == ["book", "title", "author", "first", "last", "year"]

    def test_subtree_size(self):
        schema = build_sample()
        assert schema.root.subtree_size() == 6
        assert schema.element(2).subtree_size() == 3  # author + 2 children

    def test_copy_is_deep(self):
        schema = build_sample()
        clone = schema.root.copy()
        clone.children[0].name = "changed"
        assert schema.root.children[0].name == "title"

    def test_copy_preserves_concepts(self):
        clone = build_sample().root.copy()
        assert clone.concept == "bib:book"


class TestSchema:
    def test_len_counts_all_elements(self):
        assert len(build_sample()) == 6

    def test_element_ids_are_preorder(self):
        schema = build_sample()
        assert schema.element(0).name == "book"
        assert schema.element(3).name == "first"

    def test_element_out_of_range(self):
        with pytest.raises(SchemaError, match="has no element"):
            build_sample().element(99)

    def test_element_id_round_trip(self):
        schema = build_sample()
        for element_id in range(len(schema)):
            assert schema.element_id(schema.element(element_id)) == element_id

    def test_element_id_foreign_element_rejected(self):
        schema = build_sample()
        with pytest.raises(SchemaError, match="does not belong"):
            schema.element_id(SchemaElement("stranger"))

    def test_parent_of_root_is_none(self):
        assert build_sample().parent_id(0) is None

    def test_parent_ids(self):
        schema = build_sample()
        assert schema.parent_id(3) == 2  # first -> author
        assert schema.parent_id(2) == 0  # author -> book

    def test_depths(self):
        schema = build_sample()
        assert schema.depth(0) == 0
        assert schema.depth(2) == 1
        assert schema.depth(4) == 2

    def test_path(self):
        schema = build_sample()
        assert schema.path(4) == ("book", "author", "last")
        assert schema.path_string(4) == "book/author/last"

    def test_ancestors(self):
        schema = build_sample()
        assert schema.ancestors(4) == [2, 0]
        assert schema.ancestors(0) == []

    def test_is_ancestor(self):
        schema = build_sample()
        assert schema.is_ancestor(0, 4)
        assert schema.is_ancestor(2, 3)
        assert not schema.is_ancestor(3, 2)
        assert not schema.is_ancestor(1, 4)
        assert not schema.is_ancestor(4, 4)  # strict

    def test_leaves(self):
        schema = build_sample()
        assert schema.leaves() == [1, 3, 4, 5]

    def test_concepts(self):
        assert "bib:last-name" in build_sample().concepts()

    def test_copy_renames(self):
        clone = build_sample().copy("other")
        assert clone.schema_id == "other"
        assert len(clone) == 6

    def test_empty_schema_id_rejected(self):
        with pytest.raises(SchemaError):
            Schema("", SchemaElement("x"))

    def test_shared_subtree_rejected(self):
        shared = SchemaElement("shared")
        root = SchemaElement("root", Datatype.COMPLEX)
        root.add_child(shared)
        root.add_child(shared)  # same object twice -> DAG, not a tree
        with pytest.raises(SchemaError, match="shared/cyclic"):
            Schema("bad", root)

    def test_iteration_matches_elements(self):
        schema = build_sample()
        assert list(schema) == schema.elements()

"""Unit tests for the schema repository and element handles."""

import pytest

from repro.errors import SchemaError
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.model import Schema, SchemaElement
from repro.schema.repository import ElementHandle, SchemaRepository


def tiny_schema(schema_id: str) -> Schema:
    root = SchemaElement("root")
    root.add_child(SchemaElement("leaf", concept="c:leaf"))
    return Schema(schema_id, root)


class TestSchemaRepository:
    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            SchemaRepository("r", [])

    def test_empty_id_rejected(self):
        with pytest.raises(SchemaError):
            SchemaRepository("", [tiny_schema("a")])

    def test_duplicate_schema_ids_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            SchemaRepository("r", [tiny_schema("a"), tiny_schema("a")])

    def test_lookup(self):
        repo = SchemaRepository("r", [tiny_schema("a"), tiny_schema("b")])
        assert repo.schema("b").schema_id == "b"
        assert "a" in repo
        assert "z" not in repo

    def test_unknown_schema_raises(self):
        repo = SchemaRepository("r", [tiny_schema("a")])
        with pytest.raises(SchemaError, match="has no schema"):
            repo.schema("zzz")

    def test_element_count(self):
        repo = SchemaRepository("r", [tiny_schema("a"), tiny_schema("b")])
        assert repo.element_count() == 4

    def test_all_elements_yields_every_element(self):
        repo = SchemaRepository("r", [tiny_schema("a"), tiny_schema("b")])
        handles = list(repo.all_elements())
        assert len(handles) == 4
        assert len(set(handles)) == 4

    def test_concept_index(self):
        repo = SchemaRepository("r", [tiny_schema("a"), tiny_schema("b")])
        index = repo.concept_index()
        assert len(index["c:leaf"]) == 2

    def test_stats_fields(self):
        repo = generate_repository(GeneratorConfig(num_schemas=5, seed=2))
        stats = repo.stats()
        assert stats["schemas"] == 5.0
        assert 0 < stats["leaf_fraction"] < 1
        assert stats["min_size"] <= stats["mean_size"] <= stats["max_size"]


class TestElementHandle:
    @pytest.fixture()
    def repo(self):
        return SchemaRepository("r", [tiny_schema("a"), tiny_schema("b")])

    def test_bounds_checked(self, repo):
        with pytest.raises(SchemaError):
            ElementHandle(repo.schema("a"), 99)

    def test_accessors(self, repo):
        handle = repo.handle("a", 1)
        assert handle.name == "leaf"
        assert handle.concept == "c:leaf"
        assert handle.key == ("a", 1)

    def test_equality_by_key(self, repo):
        assert repo.handle("a", 1) == repo.handle("a", 1)
        assert repo.handle("a", 1) != repo.handle("b", 1)

    def test_hashable(self, repo):
        assert len({repo.handle("a", 0), repo.handle("a", 0)}) == 1

    def test_path_string_includes_schema(self, repo):
        assert repo.handle("a", 1).path_string() == "a:root/leaf"

    def test_not_equal_to_other_types(self, repo):
        assert repo.handle("a", 0) != ("a", 0)

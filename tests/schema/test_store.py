"""The snapshot store: round trips and loud corruption failures.

The store's contract is asymmetric by design: writing is best-effort
atomic (payloads first, manifest last), while reading is paranoid —
every payload byte-verified against the manifest, every schema payload
re-hashed against its digest address, every format drift rejected.
Nothing here may ever fall back to partially loaded state.
"""

import json

import pytest

from repro.errors import SnapshotError
from repro.schema import SchemaRepository, SnapshotStore, parse_schema
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.store import SNAPSHOT_FORMAT, payload_digest


@pytest.fixture(scope="module")
def repository():
    return generate_repository(
        GeneratorConfig(num_schemas=5, min_size=4, max_size=8, seed=13)
    )


@pytest.fixture()
def saved(tmp_path, repository):
    """A written snapshot of the repository plus two of its schemas as queries."""
    store = SnapshotStore(tmp_path / "snap")
    queries = [
        schema.copy(f"query-{i}") for i, schema in
        enumerate(repository.schemas()[:2])
    ]
    meta = {
        "repository": SnapshotStore.repository_meta(repository),
        "queries": SnapshotStore.query_meta(queries),
    }
    store.save(meta, SnapshotStore.schema_sections(repository.schemas() + queries))
    return store, queries


class TestRoundTrip:
    def test_repository_round_trips_in_order(self, saved, repository):
        store, _ = saved
        loaded = store.load_repository()
        assert loaded.repository_id == repository.repository_id
        assert [s.schema_id for s in loaded] == [
            s.schema_id for s in repository
        ]
        assert loaded.content_digest() == repository.content_digest()

    def test_queries_round_trip_in_order(self, saved):
        store, queries = saved
        loaded = store.load_queries()
        assert [q.schema_id for q in loaded] == [q.schema_id for q in queries]
        assert [q.content_digest() for q in loaded] == [
            q.content_digest() for q in queries
        ]

    def test_exists(self, tmp_path, saved):
        store, _ = saved
        assert store.exists()
        assert not SnapshotStore(tmp_path / "nowhere").exists()

    def test_sections_are_digest_addressed_and_deduped(self, saved, repository):
        store, _ = saved
        manifest = store.manifest()
        # every schema payload lives under its content digest
        for schema in repository:
            name = f"schemas/{schema.content_digest()}.schema"
            assert name in manifest["sections"]
            data = (store.root / name).read_bytes()
            assert payload_digest(data) == manifest["sections"][name]

    def test_save_refuses_to_claim_foreign_directory(self, tmp_path):
        """Saving prunes unreferenced files, so a non-empty directory
        without a manifest must be refused — never silently emptied."""
        target = tmp_path / "mydata"
        target.mkdir()
        (target / "notes.txt").write_text("precious", encoding="utf-8")
        store = SnapshotStore(target)
        with pytest.raises(SnapshotError, match="non-empty"):
            store.save({}, {})
        assert (target / "notes.txt").read_text(encoding="utf-8") == "precious"

    def test_save_refuses_directory_with_foreign_manifest(self, tmp_path):
        """A file merely *named* manifest.json (e.g. a web app's) does
        not make the directory ours — saving must still refuse."""
        target = tmp_path / "webapp"
        target.mkdir()
        (target / "manifest.json").write_text(
            json.dumps({"name": "my pwa", "icons": []}), encoding="utf-8"
        )
        (target / "user-data.txt").write_text("precious", encoding="utf-8")
        with pytest.raises(SnapshotError, match="not a snapshot manifest"):
            SnapshotStore(target).save({}, {})
        assert (target / "user-data.txt").exists()
        assert json.loads(
            (target / "manifest.json").read_text(encoding="utf-8")
        )["name"] == "my pwa"

    def test_crashed_first_save_is_recoverable(self, tmp_path, repository):
        """A first save that died before the manifest landed left the
        ownership marker, so re-snapshotting recovers the directory."""
        target = tmp_path / "crashed"
        target.mkdir()
        (target / ".snapshot-store").touch()  # marker written pre-crash
        (target / "schemas").mkdir()
        (target / "schemas" / f"{'ab' * 16}.schema").write_text(
            "half-written\n", encoding="utf-8"
        )
        store = SnapshotStore(target)
        assert not store.exists()
        store.save(
            {"repository": SnapshotStore.repository_meta(repository)},
            SnapshotStore.schema_sections(repository.schemas()),
        )
        assert store.load_repository().content_digest() == (
            repository.content_digest()
        )

    def test_save_over_stale_format_snapshot_allowed(self, saved, repository):
        """A *snapshot* manifest of any format version stays ours — the
        re-snapshot playbook for format drift must keep working."""
        store, _ = saved
        manifest = store.manifest()
        manifest["format"] = SNAPSHOT_FORMAT + 1
        (store.root / "manifest.json").write_text(
            json.dumps(manifest), encoding="utf-8"
        )
        store.save(
            {"repository": SnapshotStore.repository_meta(repository)},
            SnapshotStore.schema_sections(repository.schemas()),
        )
        assert store.load_repository().content_digest() == (
            repository.content_digest()
        )

    def test_resave_prunes_only_payload_shaped_files(self, saved):
        """A re-save drops *payload-shaped* files the new manifest no
        longer references — superseded sections and temp leftovers —
        but never foreign files dropped into the directory later."""
        store, _ = saved
        superseded = store.root / f"results-{'0f' * 8}.json"
        superseded.write_text("{}", encoding="utf-8")
        leftover = store.root / "schemas" / "broken.schema.tmp"
        leftover.write_text("x", encoding="utf-8")
        foreign = store.root / "notes.md"
        foreign.write_text("operator scribbles", encoding="utf-8")
        manifest = store.manifest()
        store.save(
            {"repository": manifest["repository"]},
            {
                name: store.read_section(name, manifest)
                for name in manifest["sections"]
            },
        )
        assert not superseded.exists()
        assert not leftover.exists()
        assert foreign.read_text(encoding="utf-8") == "operator scribbles"

    def test_concurrent_writer_is_refused(self, saved):
        """A live writer's lock makes a second save fail loudly; a dead
        writer's (stale pid) is stolen so crashes need no cleanup."""
        store, _ = saved
        lock = store.root / ".snapshot-lock"
        manifest = store.manifest()
        sections = {
            name: store.read_section(name, manifest)
            for name in manifest["sections"]
        }
        lock.write_text("1", encoding="utf-8")  # pid 1: alive, never us
        with pytest.raises(SnapshotError, match="one writer"):
            store.save({"repository": manifest["repository"]}, sections)
        import os

        lock.write_text(str(os.getpid()), encoding="utf-8")
        with pytest.raises(SnapshotError, match="one writer"):
            # our own pid = another thread of this process: just as live
            store.save({"repository": manifest["repository"]}, sections)
        lock.write_text("not-a-pid", encoding="utf-8")
        with pytest.raises(SnapshotError, match="one writer"):
            # unreadable holder: refuse, never steal what we can't judge
            store.save({"repository": manifest["repository"]}, sections)
        lock.write_text("999999999", encoding="utf-8")  # dead writer: stolen
        store.save({"repository": manifest["repository"]}, sections)
        assert not lock.exists()

    def test_save_rejects_reserved_meta_keys(self, tmp_path):
        store = SnapshotStore(tmp_path / "s")
        with pytest.raises(SnapshotError, match="reserved"):
            store.save({"format": 2}, {})
        with pytest.raises(SnapshotError, match="reserved"):
            store.save({"sections": {}}, {})


class TestLoudFailures:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot"):
            SnapshotStore(tmp_path).manifest()

    def test_malformed_manifest(self, saved):
        store, _ = saved
        (store.root / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(SnapshotError, match="unreadable"):
            store.manifest()

    def test_manifest_without_sections_table(self, saved):
        store, _ = saved
        (store.root / "manifest.json").write_text(
            json.dumps({"format": SNAPSHOT_FORMAT}), encoding="utf-8"
        )
        with pytest.raises(SnapshotError, match="malformed"):
            store.manifest()

    def test_version_mismatch(self, saved):
        store, _ = saved
        manifest = store.manifest()
        manifest["format"] = SNAPSHOT_FORMAT + 1
        (store.root / "manifest.json").write_text(
            json.dumps(manifest), encoding="utf-8"
        )
        with pytest.raises(SnapshotError, match="format"):
            store.manifest()

    def test_truncated_payload(self, saved, repository):
        store, _ = saved
        schema = repository.schemas()[0]
        path = store.root / f"schemas/{schema.content_digest()}.schema"
        path.write_bytes(path.read_bytes()[:10])  # truncate
        with pytest.raises(SnapshotError, match="corrupt"):
            store.load_repository()

    def test_tampered_payload(self, saved, repository):
        store, _ = saved
        schema = repository.schemas()[1]
        path = store.root / f"schemas/{schema.content_digest()}.schema"
        path.write_text(
            path.read_text(encoding="utf-8").replace(
                schema.root.name, "tampered"
            ),
            encoding="utf-8",
        )
        with pytest.raises(SnapshotError, match="corrupt"):
            store.load_repository()

    def test_missing_payload_file(self, saved, repository):
        store, _ = saved
        schema = repository.schemas()[2]
        (store.root / f"schemas/{schema.content_digest()}.schema").unlink()
        with pytest.raises(SnapshotError, match="missing"):
            store.load_repository()

    def test_unrecorded_section(self, saved):
        store, _ = saved
        with pytest.raises(SnapshotError, match="records no section"):
            store.read_section("nonexistent.json")

    def test_foreign_digest(self, tmp_path, repository):
        """A payload whose content hashes away from its address is refused.

        The manifest's byte digest matches (the file was *saved* under
        the wrong address), so only the schema-level re-hash catches it.
        """
        store = SnapshotStore(tmp_path / "forged")
        schema = repository.schemas()[0]
        wrong = "00" * 16
        from repro.schema.parser import serialize_schema

        store.save(
            {"repository": {
                "repository_id": "r",
                "repository_digest": "irrelevant",
                "schemas": [[schema.schema_id, wrong]],
            }},
            {f"schemas/{wrong}.schema": serialize_schema(schema)},
        )
        with pytest.raises(SnapshotError, match="foreign"):
            store.read_schema(schema.schema_id, wrong)

    def test_repositoryless_manifest(self, tmp_path):
        store = SnapshotStore(tmp_path / "bare")
        store.save({}, {})
        with pytest.raises(SnapshotError, match="no repository"):
            store.load_repository()

    def test_inconsistent_repository_digest(self, saved):
        store, _ = saved
        manifest = store.manifest()
        manifest["repository"]["repository_digest"] = "11" * 16
        (store.root / "manifest.json").write_text(
            json.dumps(manifest), encoding="utf-8"
        )
        with pytest.raises(SnapshotError, match="internally inconsistent"):
            store.load_repository()


class TestOverwrite:
    def test_resave_replaces_snapshot(self, saved, repository):
        """Checkpointing over an old snapshot serves the new state."""
        store, _ = saved
        evolved = SchemaRepository(
            repository.repository_id, repository.schemas()[:3]
        )
        store.save(
            {"repository": SnapshotStore.repository_meta(evolved)},
            SnapshotStore.schema_sections(evolved.schemas()),
        )
        loaded = store.load_repository()
        assert loaded.content_digest() == evolved.content_digest()
        assert store.load_queries() == []  # new manifest records none

    def test_schema_payload_text_is_canonical(self, saved, repository):
        """Payloads are the textual format — diffable, hand-editable."""
        store, _ = saved
        schema = repository.schemas()[0]
        text = store.read_section(
            f"schemas/{schema.content_digest()}.schema"
        )
        reparsed = parse_schema(text, schema.schema_id)
        assert reparsed.content_digest() == schema.content_digest()

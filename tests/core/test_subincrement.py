"""Unit tests for sub-increment bounds (paper section 4.2, Figure 13)."""

from fractions import Fraction

import pytest

from repro.core.measures import Counts
from repro.core.subincrement import SubIncrementAnalyzer
from repro.errors import BoundsError
from repro.experiments.paper_data import (
    FIGURE13_EXPECTED,
    figure13_high,
    figure13_low,
)


def analyzer() -> SubIncrementAnalyzer:
    return SubIncrementAnalyzer(figure13_low(), figure13_high())


class TestConstruction:
    def test_requires_relevant(self):
        with pytest.raises(BoundsError, match="\\|H\\|"):
            SubIncrementAnalyzer(Counts(50, 30), Counts(70, 36))

    def test_relevant_must_agree(self):
        with pytest.raises(BoundsError, match="agree"):
            SubIncrementAnalyzer(Counts(50, 30, 100), Counts(70, 36, 200))

    def test_ordering_required(self):
        with pytest.raises(BoundsError, match="ordered"):
            SubIncrementAnalyzer(Counts(70, 36, 100), Counts(50, 30, 100))

    def test_increment_composition(self):
        a = analyzer()
        assert a.increment_correct == 6
        assert a.increment_incorrect == 14


class TestFigure13Exact:
    def test_paper_segment(self):
        segment = analyzer().segment(FIGURE13_EXPECTED["intermediate_answers"])
        assert segment.worst.recall == FIGURE13_EXPECTED["worst_recall"]
        assert segment.worst.precision == FIGURE13_EXPECTED["worst_precision"]
        assert segment.best.recall == FIGURE13_EXPECTED["best_recall"]
        assert segment.best.precision == FIGURE13_EXPECTED["best_precision"]

    def test_endpoints_degenerate_to_measured_points(self):
        a = analyzer()
        low_segment = a.segment(50)
        assert low_segment.worst.recall == low_segment.best.recall == Fraction(30, 100)
        high_segment = a.segment(70)
        assert high_segment.worst.recall == high_segment.best.recall == (
            Fraction(36, 100)
        )
        assert high_segment.worst.precision == Fraction(36, 70)


class TestCorrectRange:
    def test_worst_kicks_in_beyond_incorrect_budget(self):
        a = analyzer()  # 14 incorrect available in the increment
        worst, best = a.correct_range(66)  # 16 extra answers
        assert worst == 30 + 2  # 16 - 14 must be correct
        assert best == 36

    def test_best_capped_by_increment_correct(self):
        worst, best = analyzer().correct_range(60)  # 10 extra
        assert best == 36  # 6 correct available, 30 + min(10, 6)
        assert worst == 30

    def test_out_of_range_rejected(self):
        with pytest.raises(BoundsError, match="outside"):
            analyzer().correct_range(49)
        with pytest.raises(BoundsError, match="outside"):
            analyzer().correct_range(71)


class TestBoundary:
    def test_covers_all_sizes(self):
        segments = analyzer().boundary(step=1)
        assert [s.answers for s in segments] == list(range(50, 71))

    def test_step_includes_last(self):
        segments = analyzer().boundary(step=4)
        assert segments[-1].answers == 70

    def test_invalid_step(self):
        with pytest.raises(BoundsError):
            analyzer().boundary(step=0)

    def test_midpoints_between_ends(self):
        for segment in analyzer().boundary():
            mid = segment.midpoint()
            assert segment.worst.recall <= mid.recall <= segment.best.recall
            lo = min(segment.worst.precision, segment.best.precision)
            hi = max(segment.worst.precision, segment.best.precision)
            assert lo <= mid.precision <= hi

    def test_midpoint_locus_is_not_linear_interpolation(self):
        # paper: "taking the point halfway ... is not the same as linear
        # interpolation between d1 and d2"
        a = analyzer()
        locus = a.midpoint_locus()
        low, high = locus[0], locus[-1]

        def linear(recall: Fraction) -> Fraction:
            t = (recall - low.recall) / (high.recall - low.recall)
            return low.precision + t * (high.precision - low.precision)

        deviations = [
            abs(point.precision - linear(point.recall))
            for point in locus[1:-1]
            if high.recall != low.recall
        ]
        assert max(deviations) > 0

    def test_segment_contains_check(self):
        segment = analyzer().segment(54)
        assert segment.contains(correct=32, relevant=100)
        assert not segment.contains(correct=36, relevant=100)

    def test_contains_validates_relevant(self):
        with pytest.raises(BoundsError):
            analyzer().segment(54).contains(1, 0)


class TestTruthInsideSegments:
    def test_any_feasible_split_lies_on_its_segment(self):
        # enumerate every way the 6 correct / 14 incorrect increment can
        # be ordered; for each intermediate size the true count must fall
        # within [worst, best]
        a = analyzer()
        for extra_correct in range(0, 7):
            for n in range(50, 71):
                extra = n - 50
                true_correct = 30 + min(extra_correct, extra)
                # only feasible if the remaining extras fit among incorrect
                if extra - min(extra_correct, extra) > 14:
                    continue
                worst, best = a.correct_range(n)
                assert worst <= true_correct <= best

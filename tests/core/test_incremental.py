"""Unit tests for the incremental bound algorithm (paper section 3.2).

The paper's Figure 8 example is asserted to the exact fraction, and the
structural invariants (incremental tighter than naive, ratio-1 collapse)
are exercised on concrete profiles.
"""

from fractions import Fraction

import pytest

from repro.core.answers import AnswerSet
from repro.core.incremental import (
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
    compute_naive_bounds,
)
from repro.core.measures import Counts
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError
from repro.experiments.paper_data import (
    figure8_improved_sizes,
    figure8_original_profile,
)


class TestSystemProfile:
    def test_monotone_answers_required(self):
        schedule = ThresholdSchedule([0.1, 0.2])
        with pytest.raises(BoundsError, match="non-decreasing"):
            SystemProfile(schedule, (Counts(10, 2), Counts(5, 2)))

    def test_monotone_correct_required(self):
        schedule = ThresholdSchedule([0.1, 0.2])
        with pytest.raises(BoundsError, match="correct counts"):
            SystemProfile(schedule, (Counts(10, 5), Counts(20, 2)))

    def test_relevant_consistency_required(self):
        schedule = ThresholdSchedule([0.1, 0.2])
        with pytest.raises(BoundsError, match="agree on"):
            SystemProfile(schedule, (Counts(1, 0, 10), Counts(2, 0, 20)))

    def test_alignment_required(self):
        schedule = ThresholdSchedule([0.1, 0.2])
        with pytest.raises(Exception):
            SystemProfile(schedule, (Counts(1, 0),))

    def test_from_answer_set(self):
        schedule = ThresholdSchedule([0.15, 0.35])
        answers = AnswerSet.from_pairs([("a", 0.1), ("b", 0.2), ("c", 0.3)])
        profile = SystemProfile.from_answer_set(schedule, answers, {"a", "c"})
        assert profile.answer_sizes() == [1, 3]
        assert profile.correct_counts() == [1, 2]
        assert profile.relevant == 2

    def test_increments(self):
        profile = figure8_original_profile()
        increments = profile.increments()
        assert increments[0] == Counts(40, 15)
        assert increments[1] == Counts(32, 12)

    def test_pr_curve_round_trip(self):
        schedule = ThresholdSchedule([0.1, 0.2])
        profile = SystemProfile(schedule, (Counts(10, 5, 20), Counts(20, 8, 20)))
        assert SystemProfile.from_pr_curve(profile.pr_curve()).counts == (
            profile.counts
        )

    def test_final_counts(self):
        assert figure8_original_profile().final_counts() == Counts(72, 27)


class TestSizeProfile:
    def test_monotone_required(self):
        schedule = ThresholdSchedule([0.1, 0.2])
        with pytest.raises(BoundsError, match="non-decreasing"):
            SizeProfile(schedule, (5, 4))

    def test_negative_rejected(self):
        schedule = ThresholdSchedule([0.1])
        with pytest.raises(BoundsError, match="negative"):
            SizeProfile(schedule, (-1,))

    def test_from_answer_set(self):
        schedule = ThresholdSchedule([0.15, 0.35])
        answers = AnswerSet.from_pairs([("a", 0.1), ("b", 0.3)])
        assert SizeProfile.from_answer_set(schedule, answers).sizes == (1, 2)

    def test_increment_sizes(self):
        assert figure8_improved_sizes().increment_sizes() == [32, 16]


class TestFigure8:
    """The paper's worked example, exact to the fraction."""

    def test_naive_worst_case(self):
        bounds = compute_naive_bounds(
            figure8_original_profile(), figure8_improved_sizes()
        )
        assert bounds[0].worst.precision == Fraction(7, 32)
        assert bounds[1].worst.precision == Fraction(1, 16)

    def test_incremental_worst_case(self):
        bounds = compute_incremental_bounds(
            figure8_original_profile(), figure8_improved_sizes()
        )
        assert bounds[0].worst.precision == Fraction(7, 32)
        assert bounds[1].worst.precision == Fraction(7, 48)

    def test_incremental_worst_counts(self):
        bounds = compute_incremental_bounds(
            figure8_original_profile(), figure8_improved_sizes()
        )
        # second increment: 16 of 32 answers kept, 20 incorrect available
        # -> worst case keeps 0 correct; cumulative stays at 7
        assert bounds[1].worst.correct == 7

    def test_best_case(self):
        bounds = compute_incremental_bounds(
            figure8_original_profile(), figure8_improved_sizes()
        )
        # best: all 15 correct kept at d1 (32 >= 15); increment 2 keeps
        # min(12, 16) = 12 more
        assert bounds[0].best.correct == 15
        assert bounds[1].best.correct == 27

    def test_size_ratios(self):
        bounds = compute_incremental_bounds(
            figure8_original_profile(), figure8_improved_sizes()
        )
        assert bounds[0].size_ratio == Fraction(4, 5)
        assert bounds[1].size_ratio == Fraction(2, 3)

    def test_random_expectation(self):
        bounds = compute_incremental_bounds(
            figure8_original_profile(), figure8_improved_sizes()
        )
        # E[T] = 15*32/40 + 12*16/32 = 12 + 6 = 18
        assert bounds[1].random_correct == Fraction(18)

    def test_at_delta_lookup(self):
        bounds = compute_incremental_bounds(
            figure8_original_profile(), figure8_improved_sizes()
        )
        assert bounds.at_delta(2.0).improved_answers == 48
        with pytest.raises(BoundsError):
            bounds.at_delta(9.9)


class TestInvariants:
    def profile(self) -> SystemProfile:
        schedule = ThresholdSchedule([0.1, 0.2, 0.3, 0.4])
        counts = (
            Counts(20, 15, 60),
            Counts(50, 30, 60),
            Counts(90, 40, 60),
            Counts(150, 45, 60),
        )
        return SystemProfile(schedule, counts)

    def test_incremental_never_looser_than_naive(self):
        original = self.profile()
        improved = SizeProfile(original.schedule, (15, 35, 60, 100))
        naive = compute_naive_bounds(original, improved)
        incremental = compute_incremental_bounds(original, improved)
        for n, i in zip(naive, incremental):
            assert i.worst.correct >= n.worst.correct
            assert i.best.correct <= n.best.correct

    def test_ratio_one_collapses_to_original(self):
        original = self.profile()
        improved = SizeProfile(
            original.schedule, tuple(original.answer_sizes())
        )
        bounds = compute_incremental_bounds(original, improved)
        for entry, counts in zip(bounds, original.counts):
            assert entry.best.correct == counts.correct
            assert entry.worst.correct == counts.correct
            assert entry.random_correct == counts.correct

    def test_worst_leq_random_leq_best(self):
        original = self.profile()
        improved = SizeProfile(original.schedule, (10, 25, 50, 80))
        bounds = compute_incremental_bounds(original, improved)
        for entry in bounds:
            assert entry.worst.correct <= entry.random_correct <= entry.best.correct

    def test_empty_improvement(self):
        original = self.profile()
        improved = SizeProfile(original.schedule, (0, 0, 0, 0))
        bounds = compute_incremental_bounds(original, improved)
        final = bounds[3]
        assert final.best.correct == 0
        assert final.worst.correct == 0

    def test_schedule_mismatch_rejected(self):
        original = self.profile()
        other = SizeProfile(ThresholdSchedule([0.1, 0.2]), (5, 10))
        with pytest.raises(BoundsError, match="same"):
            compute_incremental_bounds(original, other)

    def test_threshold_subset_violation_rejected(self):
        original = self.profile()
        improved = SizeProfile(original.schedule, (25, 35, 60, 100))
        with pytest.raises(BoundsError, match="subset"):
            compute_incremental_bounds(original, improved)

    def test_increment_subset_violation_rejected(self):
        original = self.profile()  # increments: 20, 30, 40, 60
        # threshold sizes fine (<= A1) but second increment keeps 35 > 30
        improved = SizeProfile(original.schedule, (5, 40, 60, 100))
        with pytest.raises(BoundsError, match="per-increment"):
            compute_incremental_bounds(original, improved)


class TestCurveOutputs:
    def test_curves_require_relevant(self):
        bounds = compute_incremental_bounds(
            figure8_original_profile(), figure8_improved_sizes()
        )
        with pytest.raises(BoundsError, match="\\|H\\|"):
            bounds.best_curve()

    def test_curves_with_relevant(self):
        schedule = ThresholdSchedule([0.1, 0.2])
        original = SystemProfile(
            schedule, (Counts(40, 15, 100), Counts(72, 27, 100))
        )
        improved = SizeProfile(schedule, (32, 48))
        bounds = compute_incremental_bounds(original, improved)
        best = bounds.best_curve()
        worst = bounds.worst_curve()
        random_curve = bounds.random_curve()
        assert best[1].recall == Fraction(27, 100)
        assert worst[1].recall == Fraction(7, 100)
        assert random_curve[1].recall == Fraction(18, 100)
        assert bounds.original_curve()[1].precision == Fraction(3, 8)

    def test_rows_shape(self):
        bounds = compute_incremental_bounds(
            figure8_original_profile(), figure8_improved_sizes()
        )
        rows = bounds.rows()
        assert len(rows) == 2
        assert rows[0][1] == 40  # |A1|

"""Unit tests for random-curve concentration bounds."""

from fractions import Fraction

import pytest

from repro.core.confidence import _increment_variance, random_curve_deviation
from repro.core.incremental import (
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
)
from repro.core.measures import Counts
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError


def bounds():
    schedule = ThresholdSchedule([0.1, 0.2])
    original = SystemProfile(
        schedule, (Counts(40, 15, 100), Counts(72, 27, 100))
    )
    improved = SizeProfile(schedule, (32, 48))
    return compute_incremental_bounds(original, improved)


class TestIncrementVariance:
    def test_hypergeometric_formula(self):
        # a1=40, t1=15, a2=32: 32 * 3/8 * 5/8 * 8/39
        assert _increment_variance(40, 15, 32) == Fraction(32 * 3 * 5 * 8, 8 * 8 * 39)

    def test_degenerate_cases_zero(self):
        assert _increment_variance(1, 1, 1) == 0  # a1 <= 1
        assert _increment_variance(10, 0, 5) == 0  # no correct
        assert _increment_variance(10, 10, 5) == 0  # all correct
        assert _increment_variance(10, 4, 0) == 0  # nothing kept

    def test_keep_all_has_zero_variance(self):
        assert _increment_variance(10, 4, 10) == 0


class TestRandomCurveDeviation:
    def test_expected_matches_bounds_random(self):
        b = bounds()
        deviations = random_curve_deviation(b)
        for entry, deviation in zip(b, deviations):
            assert deviation.expected == entry.random_correct

    def test_variance_accumulates(self):
        deviations = random_curve_deviation(bounds())
        assert deviations[1].variance >= deviations[0].variance

    def test_interval_ordering(self):
        for deviation in random_curve_deviation(bounds()):
            assert deviation.lower <= float(deviation.expected) <= deviation.upper

    def test_lower_clamped_at_zero(self):
        schedule = ThresholdSchedule([0.1])
        original = SystemProfile(schedule, (Counts(4, 1, 10),))
        improved = SizeProfile(schedule, (2,))
        deviations = random_curve_deviation(
            compute_incremental_bounds(original, improved), k=100.0
        )
        assert deviations[0].lower == 0.0

    def test_confidence_level(self):
        deviations = random_curve_deviation(bounds(), k=3.0)
        assert deviations[0].confidence == pytest.approx(8 / 9)

    def test_k_must_be_positive(self):
        with pytest.raises(BoundsError):
            random_curve_deviation(bounds(), k=0)

    def test_contains(self):
        deviation = random_curve_deviation(bounds(), k=3.0)[1]
        assert deviation.contains(float(deviation.expected))
        assert not deviation.contains(deviation.upper + 1.0)

    def test_wider_k_wider_interval(self):
        narrow = random_curve_deviation(bounds(), k=1.0)[1]
        wide = random_curve_deviation(bounds(), k=4.0)[1]
        assert wide.radius >= narrow.radius

    def test_empirical_coverage_exceeds_guarantee(self):
        """Simulate many random subsets; Chebyshev must hold comfortably."""
        from repro.core.answers import AnswerSet
        from repro.matching.random_matcher import random_subset_like

        pairs = []
        truth = set()
        for i in range(120):
            item = f"i{i:03d}"
            pairs.append((item, i / 120))
            if i % 3 == 0:
                truth.add(item)
        answers = AnswerSet.from_pairs(pairs)
        schedule = ThresholdSchedule([0.4, 0.99])
        original = SystemProfile.from_answer_set(schedule, answers, truth)
        sizes = SizeProfile(schedule, (20, 60))
        b = compute_incremental_bounds(original, sizes)
        deviations = random_curve_deviation(b, k=3.0)
        trials = 40
        hits = 0
        for seed in range(trials):
            subset = random_subset_like(answers, schedule, [20, 60], seed)
            final = SystemProfile.from_answer_set(
                schedule, subset, truth
            ).final_counts()
            if deviations[-1].contains(final.correct):
                hits += 1
        assert hits / trials >= 8 / 9

"""Unit tests for exact precision/recall counts (paper Figure 2)."""

from fractions import Fraction

import pytest

from repro.core.answers import AnswerSet
from repro.core.measures import Counts, f_score, measure
from repro.errors import BoundsError


class TestCountsValidation:
    def test_negative_answers_rejected(self):
        with pytest.raises(BoundsError):
            Counts(-1, 0)

    def test_correct_beyond_answers_rejected(self):
        with pytest.raises(BoundsError):
            Counts(2, 3)

    def test_correct_beyond_relevant_rejected(self):
        with pytest.raises(BoundsError):
            Counts(10, 5, relevant=4)

    def test_negative_relevant_rejected(self):
        with pytest.raises(BoundsError):
            Counts(0, 0, relevant=-1)


class TestMeasures:
    def test_precision_exact_fraction(self):
        assert Counts(8, 3).precision == Fraction(3, 8)

    def test_precision_empty_is_none(self):
        assert Counts(0, 0).precision is None

    def test_precision_or_convention(self):
        assert Counts(0, 0).precision_or(Fraction(1)) == Fraction(1)

    def test_recall_exact_fraction(self):
        assert Counts(8, 3, relevant=12).recall == Fraction(1, 4)

    def test_recall_unknown_h(self):
        assert Counts(8, 3).recall is None

    def test_recall_empty_ground_truth_is_one(self):
        assert Counts(5, 0, relevant=0).recall == Fraction(1)

    def test_incorrect(self):
        assert Counts(8, 3).incorrect == 5

    def test_with_relevant(self):
        assert Counts(8, 3).with_relevant(12).recall == Fraction(1, 4)


class TestIncrementArithmetic:
    def test_subtract(self):
        increment = Counts(72, 27, 100).subtract(Counts(40, 15, 100))
        assert increment == Counts(32, 12, 100)

    def test_subtract_requires_monotone(self):
        with pytest.raises(BoundsError, match="monotone"):
            Counts(40, 15, 100).subtract(Counts(72, 27, 100))

    def test_subtract_requires_same_relevant(self):
        with pytest.raises(BoundsError, match="|H|"):
            Counts(40, 15, 100).subtract(Counts(10, 5, 99))

    def test_add(self):
        total = Counts(40, 15, 100).add(Counts(32, 12, 100))
        assert total == Counts(72, 27, 100)

    def test_add_requires_same_relevant(self):
        with pytest.raises(BoundsError):
            Counts(1, 0, 10).add(Counts(1, 0, 20))

    def test_add_subtract_round_trip(self):
        low = Counts(40, 15, 200)
        high = Counts(72, 27, 200)
        assert low.add(high.subtract(low)) == high


class TestMeasureFunction:
    def test_counts_against_ground_truth(self):
        answers = AnswerSet.from_pairs([("a", 0.1), ("b", 0.2), ("c", 0.3)])
        counts = measure(answers, {"b", "c", "z"})
        assert counts == Counts(3, 2, 3)

    def test_empty_answers(self):
        counts = measure(AnswerSet.empty(), {"x"})
        assert counts.answers == 0 and counts.relevant == 1


class TestFScore:
    def test_balanced(self):
        counts = Counts(10, 5, relevant=10)  # P=1/2, R=1/2
        assert f_score(counts) == Fraction(1, 2)

    def test_zero_when_nothing_correct(self):
        assert f_score(Counts(10, 0, relevant=10)) == Fraction(0)

    def test_none_without_relevant(self):
        assert f_score(Counts(10, 5)) is None

    def test_none_on_empty_answers(self):
        assert f_score(Counts(0, 0, relevant=10)) is None

    def test_beta_weights_recall(self):
        counts = Counts(4, 2, relevant=20)  # P=1/2, R=1/10
        f1 = f_score(counts, beta=1.0)
        f2 = f_score(counts, beta=2.0)
        assert f2 < f1  # recall-heavy beta punishes the low recall

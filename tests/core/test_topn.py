"""Unit tests for top-N bounds (the paper's conclusion claim)."""

from fractions import Fraction

import pytest

from repro.core.answers import AnswerSet
from repro.core.topn import cutoffs_to_schedule, default_cutoffs, topn_bounds
from repro.errors import BoundsError


def ranked_answers(n: int = 100) -> AnswerSet:
    return AnswerSet.from_pairs((f"item-{i:03d}", i / 100) for i in range(n))


class TestDefaultCutoffs:
    def test_ladder_capped_at_total(self):
        assert default_cutoffs(60) == [10, 25, 50, 60]

    def test_small_total(self):
        assert default_cutoffs(5) == [5]

    def test_zero_total(self):
        assert default_cutoffs(0) == []


class TestCutoffsToSchedule:
    def test_thresholds_are_nth_scores(self):
        answers = ranked_answers()
        schedule = cutoffs_to_schedule(answers, [10, 50])
        assert list(schedule) == [0.09, 0.49]

    def test_cutoff_beyond_size_clamped(self):
        answers = ranked_answers(20)
        schedule = cutoffs_to_schedule(answers, [10, 500])
        assert schedule.final == pytest.approx(0.19)

    def test_duplicate_cutoffs_collapse(self):
        answers = ranked_answers(20)
        schedule = cutoffs_to_schedule(answers, [5, 5, 10])
        assert len(schedule) == 2

    def test_ties_collapse_thresholds(self):
        answers = AnswerSet.from_pairs([("a", 0.1), ("b", 0.1), ("c", 0.2)])
        schedule = cutoffs_to_schedule(answers, [1, 2, 3])
        assert list(schedule) == [0.1, 0.2]

    def test_empty_cutoffs_rejected(self):
        with pytest.raises(BoundsError):
            cutoffs_to_schedule(ranked_answers(), [])

    def test_empty_answers_rejected(self):
        with pytest.raises(BoundsError):
            cutoffs_to_schedule(AnswerSet.empty(), [10])

    def test_invalid_cutoff_rejected(self):
        with pytest.raises(BoundsError):
            cutoffs_to_schedule(ranked_answers(), [0])


class TestTopNBounds:
    def test_effective_sizes_cover_cutoffs(self):
        original = ranked_answers()
        improved = AnswerSet.from_pairs(
            (f"item-{i:03d}", i / 100) for i in range(0, 100, 2)
        )
        truth = {f"item-{i:03d}" for i in range(30)}
        bounds = topn_bounds(original, improved, truth, cutoffs=[10, 50, 100])
        assert [e.original.answers for e in bounds] == [10, 50, 100]

    def test_bounds_bracket_truth_at_each_cutoff(self):
        original = ranked_answers()
        improved = AnswerSet.from_pairs(
            (f"item-{i:03d}", i / 100) for i in range(0, 100, 3)
        )
        truth = frozenset(f"item-{i:03d}" for i in range(0, 100, 7))
        bounds = topn_bounds(original, improved, truth, cutoffs=[10, 40, 100])
        for entry in bounds:
            actual = sum(
                1
                for a in improved.at_threshold(entry.delta)
                if a.item in truth
            )
            assert entry.worst.correct <= actual <= entry.best.correct

    def test_subset_violation_rejected(self):
        original = ranked_answers(10)
        rogue = AnswerSet.from_pairs([("foreign", 0.05)])
        with pytest.raises(Exception):
            topn_bounds(original, rogue, set(), cutoffs=[5])

    def test_default_cutoffs_used(self):
        original = ranked_answers(60)
        improved = original.top_n(30)
        bounds = topn_bounds(original, improved, {"item-000"})
        assert len(bounds) == len(cutoffs_to_schedule(original, default_cutoffs(60)))

    def test_band_narrow_at_top_when_improvement_keeps_top(self):
        """The paper's claim in miniature: full retention at the top
        collapses the band there while deep cutoffs stay loose."""
        original = ranked_answers()
        improved = original.top_n(40)  # keeps the whole top-25, half overall
        truth = frozenset(f"item-{i:03d}" for i in range(0, 100, 4))
        bounds = topn_bounds(original, improved, truth, cutoffs=[25, 100])
        top = bounds[0]
        deep = bounds[1]
        top_width = top.best.precision_or(Fraction(1)) - top.worst.precision_or(
            Fraction(0)
        )
        deep_width = deep.best.precision_or(Fraction(1)) - deep.worst.precision_or(
            Fraction(0)
        )
        assert top_width == 0
        assert deep_width > 0

"""Unit tests for |H|-free relative bounds."""

from fractions import Fraction

from repro.core.incremental import (
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
)
from repro.core.measures import Counts
from repro.core.relative import relative_bounds
from repro.core.thresholds import ThresholdSchedule
from repro.experiments.paper_data import (
    figure8_improved_sizes,
    figure8_original_profile,
)


def figure8_bounds():
    return compute_incremental_bounds(
        figure8_original_profile(), figure8_improved_sizes()
    )


class TestRelativeBounds:
    def test_no_relevant_needed(self):
        # Figure 8 has no |H|; relative bounds still work
        entries = relative_bounds(figure8_bounds())
        assert len(entries) == 2

    def test_figure8_values(self):
        entries = relative_bounds(figure8_bounds())
        # at d2: worst 7 of 27 kept; best 27 of 27
        assert entries[1].worst_relative_recall == Fraction(7, 27)
        assert entries[1].best_relative_recall == Fraction(1)

    def test_max_recall_loss(self):
        entries = relative_bounds(figure8_bounds())
        assert entries[1].max_recall_loss == Fraction(20, 27)

    def test_precision_bounds_passthrough(self):
        entries = relative_bounds(figure8_bounds())
        assert entries[0].worst_precision == Fraction(7, 32)
        assert entries[1].worst_precision == Fraction(7, 48)

    def test_no_truth_yet_yields_none(self):
        schedule = ThresholdSchedule([0.1, 0.2])
        original = SystemProfile(schedule, (Counts(5, 0), Counts(10, 4)))
        improved = SizeProfile(schedule, (3, 7))
        entries = relative_bounds(compute_incremental_bounds(original, improved))
        assert entries[0].worst_relative_recall is None
        assert entries[0].max_recall_loss is None
        assert entries[1].worst_relative_recall is not None

    def test_equals_absolute_recall_ratio_when_h_known(self):
        # relative recall must equal R2/R1 whenever |H| is known
        schedule = ThresholdSchedule([0.1, 0.2])
        original = SystemProfile(
            schedule, (Counts(40, 15, 100), Counts(72, 27, 100))
        )
        improved = SizeProfile(schedule, (32, 48))
        bounds = compute_incremental_bounds(original, improved)
        entries = relative_bounds(bounds)
        for entry, bound in zip(entries, bounds):
            r1 = bound.original.recall
            worst_r2 = Fraction(bound.worst.correct, 100)
            assert entry.worst_relative_recall == worst_r2 / r1

"""Unit tests for band-based comparison of improvements."""

import pytest

from repro.core.comparison import (
    ThresholdComparison,
    Verdict,
    compare_bounds,
    dominates,
)
from repro.core.incremental import (
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
)
from repro.core.measures import Counts
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError


def original() -> SystemProfile:
    schedule = ThresholdSchedule([0.1, 0.2])
    return SystemProfile(schedule, (Counts(20, 18, 50), Counts(60, 40, 50)))


def bounds_for(sizes: tuple[int, int]):
    return compute_incremental_bounds(
        original(), SizeProfile(original().schedule, sizes)
    )


class TestCompareBounds:
    def test_full_retention_beats_heavy_pruning(self):
        full = bounds_for((20, 60))  # ratio 1: band collapses onto truth
        tiny = bounds_for((1, 2))
        comparisons = compare_bounds(full, tiny)
        assert all(
            c.correct_verdict is Verdict.FIRST_BETTER for c in comparisons
        )

    def test_symmetric_verdict(self):
        full = bounds_for((20, 60))
        tiny = bounds_for((1, 2))
        comparisons = compare_bounds(tiny, full)
        assert all(
            c.correct_verdict is Verdict.SECOND_BETTER for c in comparisons
        )

    def test_overlapping_bands_undecided(self):
        a = bounds_for((10, 30))
        b = bounds_for((12, 28))
        comparisons = compare_bounds(a, b)
        assert any(
            c.correct_verdict is Verdict.UNDECIDED for c in comparisons
        )

    def test_schedule_mismatch_rejected(self):
        other_schedule = ThresholdSchedule([0.5])
        other = compute_incremental_bounds(
            SystemProfile(other_schedule, (Counts(60, 40, 50),)),
            SizeProfile(other_schedule, (30,)),
        )
        with pytest.raises(BoundsError, match="shared"):
            compare_bounds(bounds_for((10, 30)), other)

    def test_original_mismatch_rejected(self):
        schedule = original().schedule
        other_original = SystemProfile(
            schedule, (Counts(20, 10, 50), Counts(60, 30, 50))
        )
        other = compute_incremental_bounds(
            other_original, SizeProfile(schedule, (10, 30))
        )
        with pytest.raises(BoundsError, match="same original"):
            compare_bounds(bounds_for((10, 30)), other)

    def test_result_shape(self):
        comparisons = compare_bounds(bounds_for((10, 30)), bounds_for((5, 15)))
        assert len(comparisons) == 2
        assert isinstance(comparisons[0], ThresholdComparison)
        assert comparisons[0].delta == 0.1


class TestDominates:
    def test_dominance_detected(self):
        assert dominates(bounds_for((20, 60)), bounds_for((1, 2)))

    def test_no_dominance_on_overlap(self):
        assert not dominates(bounds_for((10, 30)), bounds_for((12, 28)))

    def test_self_dominance_needs_zero_margin(self):
        full = bounds_for((20, 60))
        assert not dominates(full, full)  # margin 1: strict
        assert dominates(full, full, margin=0)

    def test_negative_margin_rejected(self):
        with pytest.raises(BoundsError):
            dominates(bounds_for((20, 60)), bounds_for((1, 2)), margin=-1)


class TestVerdictSoundness:
    def test_verdict_never_contradicted_by_feasible_truth(self):
        """If A is declared better, no feasible world has B find more."""
        a = bounds_for((15, 45))
        b = bounds_for((2, 4))
        for comparison, a_entry, b_entry in zip(compare_bounds(a, b), a, b):
            if comparison.correct_verdict is Verdict.FIRST_BETTER:
                # every feasible truth for A >= every feasible truth for B
                assert a_entry.worst.correct >= b_entry.best.correct

"""Unit tests for P/R curves and 11-point interpolation (paper section 2.4)."""

from fractions import Fraction

import pytest

from repro.core.measures import Counts
from repro.core.pr_curve import STANDARD_RECALL_LEVELS, PRCurve, PRPoint
from repro.core.thresholds import ThresholdSchedule
from repro.errors import CurveError


def measured_curve() -> PRCurve:
    schedule = ThresholdSchedule([0.1, 0.2, 0.3])
    counts = [Counts(10, 9, 30), Counts(40, 18, 30), Counts(100, 24, 30)]
    return PRCurve.from_profile(schedule, counts)


class TestPRPoint:
    def test_range_validation(self):
        with pytest.raises(CurveError):
            PRPoint(recall=Fraction(2), precision=Fraction(1, 2))
        with pytest.raises(CurveError):
            PRPoint(recall=Fraction(1, 2), precision=Fraction(-1))

    def test_as_tuple(self):
        point = PRPoint(recall=Fraction(1, 4), precision=Fraction(1, 2))
        assert point.as_tuple() == (0.25, 0.5)


class TestCurveConstruction:
    def test_needs_points(self):
        with pytest.raises(CurveError):
            PRCurve([])

    def test_recall_must_not_decrease(self):
        with pytest.raises(CurveError, match="non-decreasing"):
            PRCurve.from_values([(0.5, 0.5), (0.4, 0.6)])

    def test_thresholds_must_increase(self):
        points = [
            PRPoint(Fraction(1, 10), Fraction(1), threshold=0.2),
            PRPoint(Fraction(2, 10), Fraction(1), threshold=0.2),
        ]
        with pytest.raises(CurveError, match="strictly increasing"):
            PRCurve(points)

    def test_from_profile_carries_counts(self):
        curve = measured_curve()
        assert curve[1].counts == Counts(40, 18, 30)
        assert curve[1].threshold == 0.2

    def test_from_profile_needs_relevant(self):
        schedule = ThresholdSchedule([0.1])
        with pytest.raises(CurveError, match="known \\|H\\|"):
            PRCurve.from_profile(schedule, [Counts(5, 2)])

    def test_from_profile_empty_answer_precision_one(self):
        schedule = ThresholdSchedule([0.1])
        curve = PRCurve.from_profile(schedule, [Counts(0, 0, 10)])
        assert curve[0].precision == Fraction(1)

    def test_from_values_snaps_floats(self):
        curve = PRCurve.from_values([(0.1, 0.9)])
        assert curve[0].recall == Fraction(1, 10)
        assert curve[0].precision == Fraction(9, 10)


class TestAccessors:
    def test_is_measured(self):
        assert measured_curve().is_measured()
        assert not PRCurve.from_values([(0.1, 0.9)]).is_measured()

    def test_schedule_round_trip(self):
        assert list(measured_curve().schedule()) == [0.1, 0.2, 0.3]

    def test_schedule_of_interpolated_rejected(self):
        with pytest.raises(CurveError):
            PRCurve.from_values([(0.1, 0.9)]).schedule()

    def test_counts_profile(self):
        assert measured_curve().counts_profile()[0] == Counts(10, 9, 30)

    def test_counts_profile_missing_counts_rejected(self):
        with pytest.raises(CurveError):
            PRCurve.from_values([(0.1, 0.9)]).counts_profile()

    def test_recalls_precisions(self):
        curve = measured_curve()
        assert curve.recalls() == pytest.approx([0.3, 0.6, 0.8])
        assert curve.precisions() == pytest.approx([0.9, 0.45, 0.24])

    def test_as_rows(self):
        rows = measured_curve().as_rows()
        assert rows[0] == (0.1, 0.3, 0.9)


class TestInterpolation:
    def test_standard_levels(self):
        assert len(STANDARD_RECALL_LEVELS) == 11
        assert STANDARD_RECALL_LEVELS[0] == 0
        assert STANDARD_RECALL_LEVELS[-1] == 1

    def test_precision_at_recall_is_max_at_or_above(self):
        curve = measured_curve()  # points (0.3,0.9) (0.6,0.45) (0.8,0.24)
        assert curve.precision_at_recall(Fraction(1, 2)) == Fraction(45, 100)
        assert curve.precision_at_recall(Fraction(0)) == Fraction(9, 10)

    def test_precision_beyond_max_recall_is_zero(self):
        assert measured_curve().precision_at_recall(Fraction(9, 10)) == 0

    def test_interpolated_curve_monotone_non_increasing(self):
        interpolated = measured_curve().interpolate()
        precisions = interpolated.precisions()
        assert all(a >= b for a, b in zip(precisions, precisions[1:]))

    def test_interpolated_has_no_thresholds(self):
        interpolated = measured_curve().interpolate()
        assert not interpolated.is_measured()

    def test_interpolation_handles_rising_precision(self):
        # precision may rise along a measured curve (paper section 4.2);
        # interpolation must take the max over the tail
        curve = PRCurve.from_values([(0.2, 0.4), (0.4, 0.6), (0.6, 0.3)])
        assert curve.precision_at_recall(Fraction(1, 10)) == Fraction(3, 5)

    def test_custom_levels(self):
        out = measured_curve().interpolate([Fraction(1, 4), Fraction(3, 4)])
        assert len(out) == 2

"""Unit tests for effectiveness bands, guarantees and containment."""

from fractions import Fraction

import pytest

from repro.core.bands import EffectivenessBand
from repro.core.incremental import (
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
)
from repro.core.measures import Counts
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError


def make_band(relevant: int | None = 60) -> EffectivenessBand:
    schedule = ThresholdSchedule([0.1, 0.2, 0.3])
    original = SystemProfile(
        schedule,
        (
            Counts(20, 16, relevant),
            Counts(50, 30, relevant),
            Counts(120, 40, relevant),
        ),
    )
    improved = SizeProfile(schedule, (18, 35, 60))
    return EffectivenessBand(compute_incremental_bounds(original, improved))


class TestWidths:
    def test_precision_width_nonnegative(self):
        for width in make_band().precision_widths():
            assert width >= 0

    def test_mean_precision_width(self):
        band = make_band()
        widths = band.precision_widths()
        assert band.mean_precision_width() == sum(widths, Fraction(0)) / len(widths)

    def test_recall_widths_require_relevant(self):
        with pytest.raises(BoundsError):
            make_band(relevant=None).recall_widths()

    def test_recall_widths_values(self):
        band = make_band()
        for width, entry in zip(band.recall_widths(), band.bounds):
            assert width == Fraction(entry.best.correct - entry.worst.correct, 60)


class TestGuarantees:
    def test_guaranteed_recall_at_precision(self):
        band = make_band()
        recall = band.guaranteed_recall_at_precision(Fraction(1, 2))
        # thresholds with worst precision >= 1/2 contribute their worst recall
        candidates = [
            Fraction(e.worst.correct, 60)
            for e in band.bounds
            if e.worst.precision_or(Fraction(0)) >= Fraction(1, 2)
        ]
        assert recall == max(candidates)

    def test_guaranteed_recall_impossible_precision(self):
        assert make_band().guaranteed_recall_at_precision(Fraction(999, 1000)) >= 0

    def test_guaranteed_precision_at_recall(self):
        band = make_band()
        precision = band.guaranteed_precision_at_recall(Fraction(1, 10))
        assert precision is not None and precision > 0

    def test_guaranteed_precision_unreachable_recall(self):
        assert make_band().guaranteed_precision_at_recall(Fraction(99, 100)) is None

    def test_float_levels_accepted(self):
        band = make_band()
        assert band.guaranteed_recall_at_precision(0.5) == (
            band.guaranteed_recall_at_precision(Fraction(1, 2))
        )

    def test_max_effectiveness_loss(self):
        band = make_band()
        final = band.bounds[len(band.bounds) - 1]
        expected = 1 - Fraction(final.worst.correct, final.original.correct)
        assert band.max_effectiveness_loss() == expected

    def test_max_loss_zero_when_no_truth(self):
        schedule = ThresholdSchedule([0.1])
        original = SystemProfile(schedule, (Counts(5, 0, 10),))
        improved = SizeProfile(schedule, (3,))
        band = EffectivenessBand(compute_incremental_bounds(original, improved))
        assert band.max_effectiveness_loss() == 0


class TestContainment:
    def test_contained_profile_passes(self):
        band = make_band()
        schedule = band.bounds.original.schedule
        actual = SystemProfile(
            schedule,
            (Counts(18, 15, 60), Counts(35, 24, 60), Counts(60, 30, 60)),
        )
        report = band.check_containment(actual)
        assert report.all_contained
        assert report.violations() == []

    def test_violating_profile_detected(self):
        band = make_band()
        schedule = band.bounds.original.schedule
        actual = SystemProfile(
            schedule,
            (Counts(18, 0, 60), Counts(35, 0, 60), Counts(60, 0, 60)),
        )
        report = band.check_containment(actual)
        assert not report.all_contained
        assert "VIOLATED" in str(report)

    def test_size_mismatch_rejected(self):
        band = make_band()
        schedule = band.bounds.original.schedule
        actual = SystemProfile(
            schedule,
            (Counts(17, 15, 60), Counts(35, 24, 60), Counts(60, 30, 60)),
        )
        with pytest.raises(BoundsError, match="differs from the size profile"):
            band.check_containment(actual)

    def test_schedule_mismatch_rejected(self):
        band = make_band()
        actual = SystemProfile(
            ThresholdSchedule([0.5]), (Counts(60, 30, 60),)
        )
        with pytest.raises(BoundsError, match="schedule"):
            band.check_containment(actual)


class TestCurves:
    def test_four_curves_render(self):
        band = make_band()
        for curve in (
            band.original_curve(),
            band.best_curve(),
            band.worst_curve(),
            band.random_curve(),
        ):
            assert len(curve) == 3

    def test_worst_below_best_everywhere(self):
        band = make_band()
        for worst, best in zip(band.worst_curve(), band.best_curve()):
            assert worst.precision <= best.precision
            assert worst.recall <= best.recall

    def test_random_between_bounds(self):
        band = make_band()
        for worst, rand, best in zip(
            band.worst_curve(), band.random_curve(), band.best_curve()
        ):
            assert worst.recall <= rand.recall <= best.recall

"""Unit tests for the random-system baseline (Equations 9-10)."""

from fractions import Fraction

import pytest

from repro.core.random_baseline import (
    expected_correct,
    random_increment_precision,
    random_increment_recall,
)
from repro.errors import BoundsError


class TestEq9:
    def test_precision_unchanged(self):
        assert random_increment_precision(Fraction(3, 8)) == Fraction(3, 8)

    def test_range_validated(self):
        with pytest.raises(BoundsError):
            random_increment_precision(Fraction(9, 8))


class TestEq10:
    def test_recall_scales_with_ratio(self):
        value = random_increment_recall(Fraction(1, 5), Fraction(1, 2))
        assert value == Fraction(1, 10)

    def test_full_ratio_keeps_recall(self):
        assert random_increment_recall(Fraction(1, 5), 1) == Fraction(1, 5)

    def test_zero_ratio_zero_recall(self):
        assert random_increment_recall(Fraction(1, 5), 0) == 0

    def test_ranges_validated(self):
        with pytest.raises(BoundsError):
            random_increment_recall(Fraction(6, 5), Fraction(1, 2))
        with pytest.raises(BoundsError):
            random_increment_recall(Fraction(1, 5), Fraction(3, 2))


class TestExpectedCorrect:
    def test_hypergeometric_mean(self):
        assert expected_correct(40, 15, 32) == Fraction(12)

    def test_fractional_result_kept_exact(self):
        assert expected_correct(3, 2, 1) == Fraction(2, 3)

    def test_empty_increment(self):
        assert expected_correct(0, 0, 0) == Fraction(0)

    def test_keep_all(self):
        assert expected_correct(10, 4, 10) == Fraction(4)

    def test_keep_more_than_available_rejected(self):
        with pytest.raises(BoundsError):
            expected_correct(5, 2, 6)

    def test_correct_beyond_answers_rejected(self):
        with pytest.raises(BoundsError):
            expected_correct(5, 6, 2)

    def test_negative_rejected(self):
        with pytest.raises(BoundsError):
            expected_correct(5, -1, 2)

    def test_monotone_in_kept(self):
        values = [expected_correct(40, 15, k) for k in range(41)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_bounded_by_best_and_worst(self):
        from repro.core.bounds import best_case_correct, worst_case_correct

        for a1, t1, a2 in [(40, 15, 32), (10, 3, 4), (8, 8, 5), (6, 0, 4)]:
            expected = expected_correct(a1, t1, a2)
            assert worst_case_correct(a1, t1, a2) <= expected
            assert expected <= best_case_correct(t1, a2)

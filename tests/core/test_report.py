"""Unit tests for the text/ASCII report renderers."""

from repro.core.bands import EffectivenessBand
from repro.core.incremental import (
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
)
from repro.core.measures import Counts
from repro.core.report import (
    render_band_plot,
    render_bounds_table,
    render_containment,
    render_pr_curve,
    render_ratio_curve,
    render_relative_bounds,
    summarize_guarantees,
)
from repro.core.size_ratio import SizeRatioCurve
from repro.core.thresholds import ThresholdSchedule


def fixtures():
    schedule = ThresholdSchedule([0.1, 0.2])
    original = SystemProfile(
        schedule, (Counts(20, 15, 50), Counts(60, 30, 50))
    )
    improved = SizeProfile(schedule, (15, 40))
    bounds = compute_incremental_bounds(original, improved)
    return original, improved, bounds


class TestRenderers:
    def test_pr_curve_table(self):
        original, _improved, _bounds = fixtures()
        out = render_pr_curve(original.pr_curve(), title="curve")
        assert "curve" in out and "recall" in out

    def test_bounds_table_mentions_method(self):
        _o, _i, bounds = fixtures()
        out = render_bounds_table(bounds)
        assert "(incremental)" in out
        assert "P worst" in out

    def test_band_plot_has_legend(self):
        _o, _i, bounds = fixtures()
        out = render_band_plot(EffectivenessBand(bounds))
        assert "[o] S1 measured" in out
        assert "[~] S2 random" in out

    def test_band_plot_without_random(self):
        _o, _i, bounds = fixtures()
        out = render_band_plot(EffectivenessBand(bounds), include_random=False)
        assert "random" not in out

    def test_ratio_curve_table(self):
        original, improved, _bounds = fixtures()
        ratio = SizeRatioCurve.from_profiles(original, improved)
        out = render_ratio_curve(ratio)
        assert "increment ratio" in out

    def test_relative_bounds_table(self):
        _o, _i, bounds = fixtures()
        out = render_relative_bounds(bounds)
        assert "max loss" in out

    def test_containment_table_ok(self):
        original, improved, bounds = fixtures()
        band = EffectivenessBand(bounds)
        actual = SystemProfile(
            original.schedule, (Counts(15, 12, 50), Counts(40, 22, 50))
        )
        out = render_containment(band.check_containment(actual))
        assert "ALL CONTAINED" in out

    def test_containment_table_violation(self):
        original, improved, bounds = fixtures()
        band = EffectivenessBand(bounds)
        actual = SystemProfile(
            original.schedule, (Counts(15, 0, 50), Counts(40, 5, 50))
        )
        out = render_containment(band.check_containment(actual))
        assert "VIOLATION" in out

    def test_summarize_guarantees_mentions_loss(self):
        _o, _i, bounds = fixtures()
        out = summarize_guarantees(EffectivenessBand(bounds))
        assert "true positives" in out
        assert "precision >=" in out

    def test_render_comparison_names_systems(self):
        from repro.core.comparison import compare_bounds
        from repro.core.report import render_comparison

        original, _improved, bounds = fixtures()
        other = compute_incremental_bounds(
            original, SizeProfile(original.schedule, (2, 5))
        )
        out = render_comparison(
            compare_bounds(bounds, other), "wide", "narrow"
        )
        assert "Band comparison: wide vs narrow" in out
        assert "provably better" in out or "undecided" in out

"""Unit tests for answer-size-ratio curves (paper Figure 10)."""

from fractions import Fraction

import pytest

from repro.core.incremental import SizeProfile, SystemProfile
from repro.core.measures import Counts
from repro.core.size_ratio import SizeRatioCurve
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError


def schedule3():
    return ThresholdSchedule([0.1, 0.2, 0.3])


def curve() -> SizeRatioCurve:
    return SizeRatioCurve(schedule3(), (10, 40, 100), (10, 30, 50))


class TestConstruction:
    def test_subset_violation_rejected(self):
        with pytest.raises(BoundsError, match="subset"):
            SizeRatioCurve(schedule3(), (10, 40, 100), (11, 30, 50))

    def test_alignment_enforced(self):
        with pytest.raises(Exception):
            SizeRatioCurve(schedule3(), (10, 40), (10, 30, 50))

    def test_from_profiles_system(self):
        original = SystemProfile(
            schedule3(), (Counts(10, 5, 9), Counts(40, 8, 9), Counts(100, 9, 9))
        )
        improved = SizeProfile(schedule3(), (10, 30, 50))
        ratio = SizeRatioCurve.from_profiles(original, improved)
        assert ratio.original_sizes == (10, 40, 100)

    def test_from_profiles_sizes(self):
        original = SizeProfile(schedule3(), (10, 40, 100))
        improved = SizeProfile(schedule3(), (5, 30, 50))
        assert SizeRatioCurve.from_profiles(original, improved).ratio_at(0) == (
            Fraction(1, 2)
        )

    def test_from_profiles_schedule_mismatch(self):
        original = SizeProfile(schedule3(), (10, 40, 100))
        improved = SizeProfile(ThresholdSchedule([0.1]), (5,))
        with pytest.raises(BoundsError, match="shared"):
            SizeRatioCurve.from_profiles(original, improved)


class TestRatios:
    def test_per_threshold(self):
        assert curve().ratios() == [Fraction(1), Fraction(3, 4), Fraction(1, 2)]

    def test_zero_original_gives_zero(self):
        ratio = SizeRatioCurve(schedule3(), (0, 4, 8), (0, 2, 4))
        assert ratio.ratio_at(0) == Fraction(0)

    def test_increment_ratios(self):
        # increments: original 10,30,60; improved 10,20,20
        assert curve().increment_ratios() == [
            Fraction(1),
            Fraction(2, 3),
            Fraction(1, 3),
        ]

    def test_mean_ratio(self):
        assert curve().mean_ratio() == Fraction(3, 4)

    def test_as_xy_axes(self):
        xy = curve().as_xy()
        assert xy[0] == (0.1, 1.0)
        assert xy[2] == (0.3, 0.5)

    def test_rows_contain_increment_column(self):
        rows = curve().rows()
        assert rows[1][4] == pytest.approx(2 / 3)

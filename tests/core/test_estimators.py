"""Unit tests for guaranteed-error point estimators."""

from fractions import Fraction

import pytest

from repro.core.estimators import estimate_correct, estimate_curve
from repro.core.incremental import (
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
)
from repro.core.measures import Counts
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError


def bounds():
    schedule = ThresholdSchedule([0.1, 0.2])
    original = SystemProfile(
        schedule, (Counts(40, 15, 100), Counts(72, 27, 100))
    )
    improved = SizeProfile(schedule, (32, 48))
    return compute_incremental_bounds(original, improved)


class TestEstimateCorrect:
    def test_midpoint_value_and_error(self):
        entry = bounds()[0]  # worst 7, best 15
        estimate = estimate_correct(entry, "midpoint")
        assert estimate.correct == Fraction(11)
        assert estimate.max_error == Fraction(4)

    def test_random_strategy_uses_expectation(self):
        entry = bounds()[0]  # E = 15*32/40 = 12
        estimate = estimate_correct(entry, "random")
        assert estimate.correct == Fraction(12)
        assert estimate.max_error == Fraction(5)  # distance to worst end (7)

    def test_pessimistic_and_optimistic(self):
        entry = bounds()[0]
        assert estimate_correct(entry, "pessimistic").correct == Fraction(7)
        assert estimate_correct(entry, "optimistic").correct == Fraction(15)
        assert estimate_correct(entry, "pessimistic").max_error == Fraction(8)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(BoundsError, match="unknown estimation"):
            estimate_correct(bounds()[0], "psychic")

    def test_precision_and_error(self):
        estimate = estimate_correct(bounds()[0], "midpoint")
        assert estimate.precision == Fraction(11, 32)
        assert estimate.precision_error() == Fraction(4, 32)

    def test_precision_none_for_empty(self):
        schedule = ThresholdSchedule([0.1])
        original = SystemProfile(schedule, (Counts(5, 2, 10),))
        improved = SizeProfile(schedule, (0,))
        entry = compute_incremental_bounds(original, improved)[0]
        estimate = estimate_correct(entry, "midpoint")
        assert estimate.precision is None
        assert estimate.precision_error() is None

    def test_recall_estimate(self):
        estimate = estimate_correct(bounds()[0], "midpoint")
        assert estimate.recall(100) == Fraction(11, 100)

    def test_recall_requires_positive_relevant(self):
        with pytest.raises(BoundsError):
            estimate_correct(bounds()[0], "midpoint").recall(0)


class TestEstimateCurve:
    def test_one_estimate_per_threshold(self):
        estimates = estimate_curve(bounds(), "midpoint")
        assert [e.delta for e in estimates] == [0.1, 0.2]

    def test_every_feasible_truth_within_guarantee(self):
        """Exhaustively check the guarantee over all feasible worlds."""
        b = bounds()
        for strategy in ("midpoint", "random", "pessimistic", "optimistic"):
            estimates = estimate_curve(b, strategy)
            for entry, estimate in zip(b, estimates):
                for truth in range(entry.worst.correct, entry.best.correct + 1):
                    assert abs(Fraction(truth) - estimate.correct) <= (
                        estimate.max_error
                    )

    def test_midpoint_has_smallest_guaranteed_error(self):
        b = bounds()
        midpoint = estimate_curve(b, "midpoint")
        for strategy in ("random", "pessimistic", "optimistic"):
            other = estimate_curve(b, strategy)
            for m, o in zip(midpoint, other):
                assert m.max_error <= o.max_error

"""Unit tests for answer sets (paper section 2.1 semantics)."""

import pytest

from repro.core.answers import Answer, AnswerSet
from repro.errors import AnswerSetError, NotASubsetError


def make(pairs):
    return AnswerSet.from_pairs(pairs)


class TestConstruction:
    def test_sorted_by_score(self):
        answers = make([("b", 0.3), ("a", 0.1), ("c", 0.2)])
        assert [a.item for a in answers] == ["a", "c", "b"]

    def test_duplicate_items_rejected(self):
        with pytest.raises(AnswerSetError, match="duplicate"):
            make([("a", 0.1), ("a", 0.2)])

    def test_nan_score_rejected(self):
        with pytest.raises(AnswerSetError, match="NaN"):
            Answer("a", float("nan"))

    def test_empty(self):
        assert len(AnswerSet.empty()) == 0

    def test_ties_allowed(self):
        answers = make([("a", 0.5), ("b", 0.5)])
        assert len(answers) == 2

    def test_contains(self):
        answers = make([("a", 0.1)])
        assert "a" in answers
        assert "b" not in answers

    def test_score_of(self):
        assert make([("a", 0.25)]).score_of("a") == 0.25

    def test_score_of_missing(self):
        with pytest.raises(AnswerSetError):
            make([("a", 0.25)]).score_of("b")


class TestThresholding:
    @pytest.fixture()
    def answers(self):
        return make([(f"a{i}", i / 10) for i in range(10)])  # scores 0.0..0.9

    def test_size_at(self, answers):
        assert answers.size_at(0.45) == 5
        assert answers.size_at(-0.1) == 0
        assert answers.size_at(2.0) == 10

    def test_size_at_inclusive(self, answers):
        # A^delta includes scores == delta (paper: Delta(a) <= delta)
        assert answers.size_at(0.4) == 5

    def test_at_threshold_monotone(self, answers):
        # delta1 <= delta2 => A^d1 subset of A^d2 (Figure 1)
        low = answers.at_threshold(0.3)
        high = answers.at_threshold(0.7)
        assert low.is_subset_of(high)

    def test_increment_partition(self, answers):
        first = answers.increment(None, 0.4)
        second = answers.increment(0.4, 0.9)
        assert len(first) + len(second) == len(answers)
        assert not (first.items() & second.items())

    def test_increment_bounds_exclusive_inclusive(self, answers):
        increment = answers.increment(0.2, 0.5)
        scores = increment.scores()
        assert min(scores) > 0.2
        assert max(scores) <= 0.5

    def test_increment_reversed_rejected(self, answers):
        with pytest.raises(AnswerSetError, match="reversed"):
            answers.increment(0.5, 0.2)

    def test_top_n(self, answers):
        top = answers.top_n(3)
        assert top.scores() == [0.0, 0.1, 0.2]

    def test_top_n_negative(self, answers):
        with pytest.raises(AnswerSetError):
            answers.top_n(-1)

    def test_min_max_score(self, answers):
        assert answers.min_score() == 0.0
        assert answers.max_score() == pytest.approx(0.9)

    def test_min_score_empty(self):
        with pytest.raises(AnswerSetError):
            AnswerSet.empty().min_score()


class TestSetRelations:
    def test_subset_check_passes(self):
        big = make([("a", 1.0), ("b", 2.0)])
        small = make([("a", 1.0)])
        small.check_subset_of(big)

    def test_subset_check_fails_with_message(self):
        big = make([("a", 1.0)])
        rogue = make([("z", 1.0)])
        with pytest.raises(NotASubsetError, match="objective function"):
            rogue.check_subset_of(big)

    def test_score_mismatch_detected(self):
        one = make([("a", 1.0)])
        other = make([("a", 2.0)])
        with pytest.raises(NotASubsetError, match="objective functions differ"):
            one.check_scores_match(other)

    def test_score_match_ignores_disjoint_items(self):
        one = make([("a", 1.0)])
        other = make([("b", 2.0)])
        one.check_scores_match(other)  # nothing shared, nothing to conflict

    def test_restrict_to(self):
        answers = make([("a", 0.1), ("b", 0.2), ("c", 0.3)])
        restricted = answers.restrict_to({"a", "c"})
        assert restricted.items() == frozenset({"a", "c"})
        assert restricted.score_of("c") == 0.3

    def test_union_disjoint(self):
        left = make([("a", 0.1)])
        right = make([("b", 0.2)])
        union = left.union(right)
        assert len(union) == 2

    def test_union_overlap_same_scores(self):
        left = make([("a", 0.1), ("b", 0.2)])
        right = make([("b", 0.2), ("c", 0.3)])
        assert len(left.union(right)) == 3

    def test_union_conflicting_scores_rejected(self):
        left = make([("a", 0.1)])
        right = make([("a", 0.9)])
        with pytest.raises(NotASubsetError):
            left.union(right)
